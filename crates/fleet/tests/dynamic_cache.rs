//! Cache semantics of the *dynamic* runner: warm reruns execute zero
//! trials and reproduce every byte, partially-stored trials re-execute
//! whole, and static + dynamic records share one store directory
//! without key collisions — across GC compaction too.

use sleepy_fleet::cache::{dynamic_phase_key, DYNAMIC_NS, STATIC_NS};
use sleepy_fleet::sink::PhaseJsonlSink;
use sleepy_fleet::{
    run_dynamic_plan_cached, run_plan_cached, AlgoKind, DynamicPlan, Execution, FleetConfig,
    TrialPlan, ALL_STRATEGIES,
};
use sleepy_graph::{ChurnModel, ChurnSpec, GraphFamily};
use sleepy_store::Store;
use std::path::PathBuf;

mod util;

fn tmp_dir(tag: &str) -> PathBuf {
    util::tmp_dir("fleet-dyncache-test", tag)
}

fn dynamic_plan() -> DynamicPlan {
    DynamicPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[64],
        &[AlgoKind::SleepingMis],
        &ALL_STRATEGIES,
        3,
        ChurnSpec {
            edge_delete_frac: 0.08,
            edge_insert_frac: 0.08,
            node_delete_frac: 0.04,
            node_insert_frac: 0.04,
            arrival_degree: 2,
            model: ChurnModel::Adversarial,
        },
        4,
        0xD1CE,
        Execution::Auto,
    )
}

fn static_plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[48],
        &[AlgoKind::SleepingMis],
        4,
        0xCAFE,
        Execution::Auto,
    )
}

/// Runs the dynamic plan, returning (output, phase-jsonl, aggregate-json).
fn run_dyn(
    store: Option<&mut Store>,
    threads: usize,
) -> (sleepy_fleet::DynamicFleetOutput, String, String) {
    let plan = dynamic_plan();
    let cfg = FleetConfig::with_threads(threads);
    let mut sink = PhaseJsonlSink::new(Vec::new());
    let out = run_dynamic_plan_cached(&plan, &cfg, &mut [&mut sink], store, true).unwrap();
    let json = serde_json::to_string_pretty(&out.report(&plan)).unwrap();
    (out, String::from_utf8(sink.into_inner()).unwrap(), json)
}

#[test]
fn warm_dynamic_rerun_executes_zero_trials_and_is_byte_identical() {
    let dir = tmp_dir("warm");
    let plan = dynamic_plan();
    let total = plan.total_trials();
    let phase_records = total * 3;

    let mut store = Store::open(&dir).unwrap();
    let (cold, cold_jsonl, cold_json) = run_dyn(Some(&mut store), 2);
    assert_eq!(cold.cache.executed, total);
    assert_eq!(cold.cache.hits, 0);
    assert_eq!(cold.cache.stored, phase_records, "one record per phase");
    drop(store);

    // Fresh process simulation: reopen from disk, rerun warm.
    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.len() as u64, phase_records);
    let (warm, warm_jsonl, warm_json) = run_dyn(Some(&mut store), 4);
    assert_eq!(warm.cache.executed, 0, "warm rerun must execute nothing");
    assert_eq!(warm.cache.hits, total);
    assert_eq!(warm.cache.stored, 0);
    assert_eq!(cold_jsonl, warm_jsonl, "phases.jsonl must be byte-identical");
    assert_eq!(cold_json, warm_json, "dynamic aggregates must be byte-identical");

    // And identical to a plain uncached run.
    let (_, plain_jsonl, plain_json) = run_dyn(None, 1);
    assert_eq!(plain_jsonl, warm_jsonl);
    assert_eq!(plain_json, warm_json);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn partially_stored_trial_is_a_miss_and_reexecutes_whole() {
    let dir = tmp_dir("partial");
    let plan = dynamic_plan();
    let total = plan.total_trials();
    let mut store = Store::open(&dir).unwrap();
    run_dynamic_plan_cached(&plan, &FleetConfig::with_threads(1), &mut [], Some(&mut store), true)
        .unwrap();
    drop(store);

    // Drop one phase record of one trial by GC-ing everything and
    // re-adding all but one key (simpler: quarantine path is covered in
    // cache_semantics; here rebuild a store missing one record).
    let store = Store::open(&dir).unwrap();
    let job_key = plan.jobs[0].key(plan.base_seed);
    let victim_prefix = format!("{DYNAMIC_NS}{job_key}/");
    let victim = store
        .entries()
        .find(|e| e.key.starts_with(&victim_prefix) && e.key.ends_with("/p1"))
        .map(|e| e.key.clone())
        .expect("a phase-1 record of job 0 exists");
    let survivors: Vec<(String, serde::Value)> = store
        .entries()
        .filter(|e| e.key != victim)
        .map(|e| (e.key.clone(), e.payload.clone()))
        .collect();
    drop(store);

    let hole_dir = tmp_dir("partial-hole");
    let mut holey = Store::open(&hole_dir).unwrap();
    holey.append(survivors).unwrap();
    let out = run_dynamic_plan_cached(
        &plan,
        &FleetConfig::with_threads(1),
        &mut [],
        Some(&mut holey),
        true,
    )
    .unwrap();
    // Exactly the victim's trial re-executes (all 3 of its phases), the
    // rest hit.
    assert_eq!(out.cache.executed, 1, "the trial with the missing phase re-executes");
    assert_eq!(out.cache.hits, total - 1);
    assert_eq!(out.cache.stored, 1, "only the missing phase record is new on disk");
    assert!(holey.contains(&victim), "the hole is healed");
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&hole_dir).unwrap();
}

#[test]
fn static_and_dynamic_records_share_one_store_without_collision() {
    let dir = tmp_dir("mixed");
    let splan = static_plan();
    let dplan = dynamic_plan();
    let static_total = splan.total_trials();
    let dynamic_records = dplan.total_trials() * 3;

    let mut store = Store::open(&dir).unwrap();
    let cfg = FleetConfig::with_threads(2);
    let s_cold = run_plan_cached(&splan, &cfg, &mut [], Some(&mut store), true).unwrap();
    let (d_cold, d_jsonl, d_json) = run_dyn(Some(&mut store), 2);
    assert_eq!(s_cold.cache.stored, static_total);
    assert_eq!(d_cold.cache.stored, dynamic_records);

    // Namespacing regression: every key carries its namespace, and the
    // two record families partition the store exactly.
    let (mut s_keys, mut d_keys) = (0u64, 0u64);
    for e in store.entries() {
        match (e.key.starts_with(STATIC_NS), e.key.starts_with(DYNAMIC_NS)) {
            (true, false) => s_keys += 1,
            (false, true) => d_keys += 1,
            _ => panic!("key in no (or both) namespaces: {}", e.key),
        }
    }
    assert_eq!(s_keys, static_total);
    assert_eq!(d_keys, dynamic_records);
    assert_eq!(store.len() as u64, static_total + dynamic_records, "no collisions");

    // GC compaction over the mixed store keeps both record families
    // fully servable: both warm reruns still execute nothing.
    let gc = store.gc(0).unwrap();
    assert_eq!(gc.kept, static_total + dynamic_records);
    assert_eq!(gc.segments_after, 1);
    drop(store);
    let mut store = Store::open(&dir).unwrap();
    let s_warm = run_plan_cached(&splan, &cfg, &mut [], Some(&mut store), true).unwrap();
    assert_eq!(s_warm.cache.executed, 0);
    assert_eq!(s_warm.cache.hits, static_total);
    let (d_warm, d_warm_jsonl, d_warm_json) = run_dyn(Some(&mut store), 4);
    assert_eq!(d_warm.cache.executed, 0);
    assert_eq!(d_jsonl, d_warm_jsonl);
    assert_eq!(d_json, d_warm_json);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// FNV-1a-64 (the store's own checksum function) over a byte string.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Regression for the DynGraph refactor: a warm rerun of an
/// *incremental*-strategy dynamic plan against a cold-populated store
/// executes nothing and reproduces every byte — and the record bytes
/// themselves are pinned by digest, so the in-place absorb path (or any
/// future change to it) cannot silently alter what lands in the store.
/// The digest was captured from the pre-refactor rebuild-per-event
/// path; a mismatch means warm stores from older builds would re-run.
#[test]
fn warm_incremental_rerun_is_byte_identical_and_format_stable() {
    use sleepy_fleet::RepairStrategy;
    let plan = DynamicPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0)],
        &[72],
        &[AlgoKind::SleepingMis],
        &[RepairStrategy::Incremental],
        3,
        ChurnSpec {
            edge_delete_frac: 0.1,
            edge_insert_frac: 0.1,
            node_delete_frac: 0.05,
            node_insert_frac: 0.05,
            arrival_degree: 2,
            model: ChurnModel::Adversarial,
        },
        3,
        0x1BC4,
        Execution::Auto,
    );
    let run = |store: Option<&mut Store>, threads: usize| {
        let mut sink = PhaseJsonlSink::new(Vec::new());
        let cfg = FleetConfig::with_threads(threads);
        let out = run_dynamic_plan_cached(&plan, &cfg, &mut [&mut sink], store, true).unwrap();
        let json = serde_json::to_string_pretty(&out.report(&plan)).unwrap();
        (out, String::from_utf8(sink.into_inner()).unwrap(), json)
    };

    let dir = tmp_dir("warm-incremental");
    let mut store = Store::open(&dir).unwrap();
    let (cold, cold_jsonl, cold_json) = run(Some(&mut store), 2);
    assert_eq!(cold.cache.executed, plan.total_trials());
    drop(store);

    let mut store = Store::open(&dir).unwrap();
    let (warm, warm_jsonl, warm_json) = run(Some(&mut store), 4);
    assert_eq!(warm.cache.executed, 0, "warm incremental rerun must execute nothing");
    assert_eq!(warm.cache.hits, plan.total_trials());
    assert_eq!(cold_jsonl, warm_jsonl);
    assert_eq!(cold_json, warm_json);

    assert_eq!(
        fnv64(cold_jsonl.as_bytes()),
        0x7471819f0f0c1696,
        "incremental phases.jsonl bytes drifted — stores written by \
         earlier builds would stop serving warm"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_cache_reexecutes_dynamic_but_still_records() {
    let dir = tmp_dir("nocache");
    let plan = dynamic_plan();
    let total = plan.total_trials();
    let cfg = FleetConfig::with_threads(2);
    let mut store = Store::open(&dir).unwrap();
    run_dynamic_plan_cached(&plan, &cfg, &mut [], Some(&mut store), true).unwrap();
    let again = run_dynamic_plan_cached(&plan, &cfg, &mut [], Some(&mut store), false).unwrap();
    assert_eq!(again.cache.hits, 0);
    assert_eq!(again.cache.executed, total);
    // Every phase key already exists: nothing new lands on disk.
    assert_eq!(again.cache.stored, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn dynamic_key_shape_is_stable() {
    // The documented format: d/<job key>/t<seed hex>/p<phase>.
    let k = dynamic_phase_key("SleepingMIS/repair@cycle:0/n=8~2ph[...]", 0xAB, 2);
    assert!(k.starts_with("d/SleepingMIS/repair@"));
    assert!(k.ends_with("/t00000000000000ab/p2"));
}
