//! The protocol flight recorder is a pure side channel: running the
//! exact same static plan with the recorder off, with the per-round
//! timeline recorded, and with the full protocol trace exported must
//! leave every measured artifact — trials.jsonl, the aggregate report,
//! and the store records — byte-for-byte identical, at every thread
//! count. And the recorder's own outputs are part of the determinism
//! contract too: `round_timeline.jsonl` must be byte-identical across
//! thread counts, and the protocol trace must be a valid Chrome trace.

use sleepy_fleet::sink::JsonlSink;
use sleepy_fleet::{
    run_plan_cached, write_protocol_trace, write_round_timeline, AlgoKind, Execution, FleetConfig,
    TrialPlan,
};
use sleepy_graph::GraphFamily;
use sleepy_store::Store;
use std::path::PathBuf;

mod util;

fn tmp_dir(tag: &str) -> PathBuf {
    util::tmp_dir("fleet-scope-test", tag)
}

fn plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[48],
        &[AlgoKind::SleepingMis, AlgoKind::Baseline(sleepy_baselines::BaselineKind::LubyA)],
        3,
        0xFEED,
        Execution::Auto,
    )
}

/// What the recorder is switched to in one cell of the matrix.
#[derive(Clone, Copy)]
enum Recorder {
    Off,
    RoundSeries,
    FullTrace,
}

/// Everything a run is judged by, plus the recorder's own outputs when
/// it was on.
#[derive(PartialEq)]
struct RunArtifacts {
    trials_jsonl: String,
    aggregates_json: String,
    store_records: Vec<(String, String)>,
    round_timeline: Option<String>,
    protocol_trace: Option<String>,
}

fn run_cell(recorder: Recorder, threads: usize, tag: &str) -> RunArtifacts {
    let dir = tmp_dir(tag);
    let cfg = FleetConfig::with_threads(threads);
    let mut store = Store::open(&dir).unwrap();

    let plan = plan();
    let mut trial_sink = JsonlSink::new(Vec::new());
    let out = run_plan_cached(&plan, &cfg, &mut [&mut trial_sink], Some(&mut store), true).unwrap();

    // The recorder runs after the measured plan, exactly as the CLI
    // sequences it.
    let (round_timeline, protocol_trace) = match recorder {
        Recorder::Off => (None, None),
        Recorder::RoundSeries => {
            let path = dir.join("round_timeline.jsonl");
            write_round_timeline(&plan, threads, &path).unwrap();
            (Some(std::fs::read_to_string(&path).unwrap()), None)
        }
        Recorder::FullTrace => {
            let timeline = dir.join("round_timeline.jsonl");
            write_round_timeline(&plan, threads, &timeline).unwrap();
            let trace = dir.join("proto.trace.json");
            write_protocol_trace(&plan, &trace).unwrap();
            (
                Some(std::fs::read_to_string(&timeline).unwrap()),
                Some(std::fs::read_to_string(&trace).unwrap()),
            )
        }
    };

    let store_records = store
        .entries()
        .map(|e| (e.key.clone(), serde::value::to_compact_string(&e.payload)))
        .collect();
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
    RunArtifacts {
        trials_jsonl: String::from_utf8(trial_sink.into_inner()).unwrap(),
        aggregates_json: serde_json::to_string_pretty(&out.report(&plan)).unwrap(),
        store_records,
        round_timeline,
        protocol_trace,
    }
}

#[test]
fn measured_artifacts_identical_across_recorder_modes_and_threads() {
    let baseline = run_cell(Recorder::Off, 1, "off-t1");
    assert!(!baseline.trials_jsonl.is_empty());
    assert!(!baseline.store_records.is_empty());

    let mut timelines = Vec::new();
    let mut traces = Vec::new();
    for (recorder, rtag) in
        [(Recorder::Off, "off"), (Recorder::RoundSeries, "series"), (Recorder::FullTrace, "full")]
    {
        for threads in [1, 2, 4] {
            if matches!(recorder, Recorder::Off) && threads == 1 {
                continue; // the baseline cell
            }
            let cell = run_cell(recorder, threads, &format!("{rtag}-t{threads}"));
            assert_eq!(
                cell.trials_jsonl, baseline.trials_jsonl,
                "trials.jsonl drifted ({rtag}, {threads} threads)"
            );
            assert_eq!(
                cell.aggregates_json, baseline.aggregates_json,
                "aggregates drifted ({rtag}, {threads} threads)"
            );
            assert_eq!(
                cell.store_records, baseline.store_records,
                "store records drifted ({rtag}, {threads} threads)"
            );
            if let Some(t) = cell.round_timeline {
                timelines.push((rtag, threads, t));
            }
            if let Some(t) = cell.protocol_trace {
                traces.push((threads, t));
            }
        }
    }

    // The recorder's own timeline is byte-identical across thread
    // counts AND across series-only vs full-trace recording.
    let (_, _, first) = &timelines[0];
    assert!(!first.is_empty());
    for (rtag, threads, t) in &timelines {
        assert_eq!(t, first, "round_timeline.jsonl drifted ({rtag}, {threads} threads)");
    }

    // The protocol trace is deterministic and a valid Chrome trace with
    // per-node tracks (n = 48 <= MAX_TRACK_NODES) and counter series.
    let (_, first_trace) = &traces[0];
    for (threads, t) in &traces {
        assert_eq!(t, first_trace, "protocol trace drifted ({threads} threads)");
    }
    let check = sleepy_telemetry::validate_trace(first_trace).unwrap();
    assert!(check.spans > 0, "expected per-node awake spans");
    assert!(check.counters > 0, "expected awake/sent counter series");
    assert_eq!(check.categories, vec!["proto"]);
}
