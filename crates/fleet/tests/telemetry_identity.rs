//! Telemetry is strictly a side channel: running the exact same
//! static + dynamic plans with telemetry off, with the metrics
//! registry on, and with full span tracing on must leave every cached
//! artifact — trials.jsonl / phases.jsonl, the aggregate reports, and
//! the store records — byte-for-byte identical, at every thread count.
//! And the trace the Trace mode produces must be a *valid* Chrome
//! trace: matched B/E pairs, non-decreasing timestamps per timeline,
//! and spans from every instrumented subsystem.

use sleepy_fleet::sink::{JsonlSink, PhaseJsonlSink};
use sleepy_fleet::{
    run_dynamic_plan_cached, run_plan_cached, AlgoKind, DynamicPlan, Execution, FleetConfig,
    RepairStrategy, TrialPlan,
};
use sleepy_graph::{ChurnModel, ChurnSpec, GraphFamily};
use sleepy_store::Store;
use sleepy_telemetry::Mode;
use std::path::PathBuf;
use std::sync::Mutex;

/// Telemetry mode is process-global; tests that flip it must not
/// interleave.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    MODE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

mod util;

fn tmp_dir(tag: &str) -> PathBuf {
    util::tmp_dir("fleet-telemetry-test", tag)
}

fn static_plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[48],
        &[AlgoKind::SleepingMis],
        3,
        0xFEED,
        Execution::Auto,
    )
}

fn dynamic_plan() -> DynamicPlan {
    DynamicPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0)],
        &[64],
        &[AlgoKind::SleepingMis],
        &[RepairStrategy::Incremental, RepairStrategy::Repair],
        2,
        ChurnSpec {
            edge_delete_frac: 0.08,
            edge_insert_frac: 0.08,
            node_delete_frac: 0.04,
            node_insert_frac: 0.04,
            arrival_degree: 2,
            model: ChurnModel::Adversarial,
        },
        2,
        0x0B5E,
        Execution::Auto,
    )
}

/// Everything a run is allowed to be judged by: the per-trial and
/// per-phase JSONL logs, both aggregate reports, and the store's
/// logical content (keys + payloads; stamps are wall-clock GC
/// metadata, deliberately outside the identity contract).
#[derive(PartialEq)]
struct RunArtifacts {
    trials_jsonl: String,
    static_json: String,
    phases_jsonl: String,
    dynamic_json: String,
    store_records: Vec<(String, String)>,
}

fn run_both(mode: Mode, threads: usize) -> RunArtifacts {
    sleepy_telemetry::set_mode(mode);
    let dir = tmp_dir(&format!("m{}t{threads}", mode as u8));
    let cfg = FleetConfig::with_threads(threads);
    let mut store = Store::open(&dir).unwrap();

    let splan = static_plan();
    let mut trial_sink = JsonlSink::new(Vec::new());
    let s_out =
        run_plan_cached(&splan, &cfg, &mut [&mut trial_sink], Some(&mut store), true).unwrap();

    let dplan = dynamic_plan();
    let mut phase_sink = PhaseJsonlSink::new(Vec::new());
    let d_out =
        run_dynamic_plan_cached(&dplan, &cfg, &mut [&mut phase_sink], Some(&mut store), true)
            .unwrap();

    let store_records = store
        .entries()
        .map(|e| (e.key.clone(), serde::value::to_compact_string(&e.payload)))
        .collect();
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
    sleepy_telemetry::set_mode(Mode::Off);
    RunArtifacts {
        trials_jsonl: String::from_utf8(trial_sink.into_inner()).unwrap(),
        static_json: serde_json::to_string_pretty(&s_out.report(&splan)).unwrap(),
        phases_jsonl: String::from_utf8(phase_sink.into_inner()).unwrap(),
        dynamic_json: serde_json::to_string_pretty(&d_out.report(&dplan)).unwrap(),
        store_records,
    }
}

#[test]
fn artifacts_are_byte_identical_across_modes_and_threads() {
    let _guard = locked();
    let _ = sleepy_telemetry::snapshot_and_reset();
    let baseline = run_both(Mode::Off, 1);
    assert!(!baseline.trials_jsonl.is_empty());
    assert!(!baseline.phases_jsonl.is_empty());
    assert!(!baseline.store_records.is_empty());
    for mode in [Mode::Off, Mode::Metrics, Mode::Trace] {
        for threads in [1usize, 2, 4] {
            if mode == Mode::Off && threads == 1 {
                continue;
            }
            let run = run_both(mode, threads);
            assert!(
                run == baseline,
                "artifacts drifted under mode {mode:?} / {threads} threads: \
                 telemetry must never touch cached outputs"
            );
        }
    }
    // Drain whatever the Trace runs buffered so later tests (or test
    // ordering) never see stale events.
    let _ = sleepy_telemetry::snapshot_and_reset();
}

#[test]
fn trace_mode_produces_a_valid_chrome_trace_covering_all_subsystems() {
    let _guard = locked();
    let _ = sleepy_telemetry::snapshot_and_reset();
    sleepy_telemetry::set_mode(Mode::Trace);
    let dir = tmp_dir("trace");
    let cfg = FleetConfig::with_threads(2);
    let mut store = Store::open(&dir).unwrap();
    let dplan = dynamic_plan();
    run_dynamic_plan_cached(&dplan, &cfg, &mut [], Some(&mut store), true).unwrap();
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
    sleepy_telemetry::set_mode(Mode::Off);

    let snap = sleepy_telemetry::snapshot_and_reset();
    let text = serde::value::to_compact_string(&snap.chrome_trace_value("fleet-test"));
    let check = sleepy_telemetry::validate_trace(&text)
        .expect("the exported trace must satisfy the Chrome trace-event contract");
    assert!(check.spans > 0);
    assert!(check.timelines >= 1);
    for cat in ["pool", "repair", "run", "store", "trial"] {
        assert!(
            check.categories.iter().any(|c| c == cat),
            "no {cat:?} spans in trace; got categories {:?}",
            check.categories
        );
    }

    // The registry side rode along: counters from the cache, the pool,
    // the store, and the repairer are all present in the same snapshot.
    for key in [
        "cache.dynamic.executed",
        "pool.shards",
        "store.records_stored",
        "repair.events",
        "graph.rebuilds",
    ] {
        assert!(snap.counters.contains_key(key), "missing counter {key}; got {:?}", {
            snap.counters.keys().collect::<Vec<_>>()
        });
    }
}
