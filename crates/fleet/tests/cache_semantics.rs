//! Cache semantics of the persistent result store: warm reruns execute
//! nothing and change nothing, corruption is quarantined rather than
//! served, duplicate jobs execute once, and sharded stores merge into
//! exactly the single-run store.

use proptest::prelude::*;
use sleepy_fleet::sink::{CountingSink, JsonlSink};
use sleepy_fleet::{
    run_plan, run_plan_cached, run_plan_shard, shard_bounds, AlgoKind, Execution, FleetConfig,
    JobSpec, TrialPlan, Workload,
};
use sleepy_graph::GraphFamily;
use sleepy_store::Store;
use std::collections::BTreeMap;
use std::path::PathBuf;

mod util;

fn tmp_dir(tag: &str) -> PathBuf {
    util::tmp_dir("fleet-cache-test", tag)
}

fn plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[48, 96],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        4,
        0xCAFE,
        Execution::Auto,
    )
}

fn report_json(plan: &TrialPlan, out: &sleepy_fleet::FleetOutput) -> String {
    serde_json::to_string_pretty(&out.report(plan)).unwrap()
}

#[test]
fn warm_rerun_executes_zero_trials_and_is_byte_identical() {
    let dir = tmp_dir("warm");
    let plan = plan();
    let total = plan.total_trials();
    let cfg = FleetConfig::with_threads(2);

    let mut cold_sink = JsonlSink::new(Vec::new());
    let mut store = Store::open(&dir).unwrap();
    let cold = run_plan_cached(&plan, &cfg, &mut [&mut cold_sink], Some(&mut store), true).unwrap();
    assert_eq!(cold.cache.executed, total);
    assert_eq!(cold.cache.hits, 0);
    assert_eq!(cold.cache.stored, total);
    drop(store);

    // Fresh process simulation: reopen the store from disk.
    let mut warm_sink = JsonlSink::new(Vec::new());
    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.len() as u64, total);
    let warm = run_plan_cached(&plan, &cfg, &mut [&mut warm_sink], Some(&mut store), true).unwrap();
    assert_eq!(warm.cache.executed, 0, "warm rerun must execute nothing");
    assert_eq!(warm.cache.hits, total);
    assert_eq!(warm.cache.stored, 0);
    assert_eq!(warm.total_trials, total);

    // Byte-identical aggregates AND per-trial logs.
    assert_eq!(report_json(&plan, &cold), report_json(&plan, &warm));
    assert_eq!(
        String::from_utf8(cold_sink.into_inner()).unwrap(),
        String::from_utf8(warm_sink.into_inner()).unwrap()
    );
    // And identical to a plain uncached run.
    let plain = run_plan(&plan, &cfg).unwrap();
    assert_eq!(report_json(&plan, &plain), report_json(&plan, &warm));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_segment_is_quarantined_and_reexecuted() {
    let dir = tmp_dir("corrupt");
    let plan = plan();
    let total = plan.total_trials();
    let cfg = FleetConfig::with_threads(1);
    let mut store = Store::open(&dir).unwrap();
    let cold = run_plan_cached(&plan, &cfg, &mut [], Some(&mut store), true).unwrap();
    drop(store);

    // Flip one byte in the (single) segment the cold run wrote.
    let seg = dir.join("seg-00000001.jsonl");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] = bytes[mid].wrapping_add(1);
    std::fs::write(&seg, &bytes).unwrap();

    let mut store = Store::open(&dir).unwrap();
    assert_eq!(store.stats().quarantined, 1, "corrupt segment must be quarantined");
    assert_eq!(store.len(), 0, "no entry of a corrupt segment may be served");
    let healed = run_plan_cached(&plan, &cfg, &mut [], Some(&mut store), true).unwrap();
    assert_eq!(healed.cache.executed, total, "everything re-executes after quarantine");
    assert_eq!(healed.cache.stored, total);
    assert_eq!(report_json(&plan, &cold), report_json(&plan, &healed));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn no_cache_reexecutes_but_still_records() {
    let dir = tmp_dir("nocache");
    let plan = plan();
    let total = plan.total_trials();
    let cfg = FleetConfig::with_threads(2);
    let mut store = Store::open(&dir).unwrap();
    run_plan_cached(&plan, &cfg, &mut [], Some(&mut store), true).unwrap();
    let again = run_plan_cached(&plan, &cfg, &mut [], Some(&mut store), false).unwrap();
    assert_eq!(again.cache.hits, 0);
    assert_eq!(again.cache.executed, total);
    // Every key already existed, so nothing new lands on disk.
    assert_eq!(again.cache.stored, 0);
    assert_eq!(store.len() as u64, total);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn duplicate_jobs_execute_once_and_fan_out() {
    let w = Workload::new(GraphFamily::GnpAvgDeg(5.0), 40);
    let plan = TrialPlan::new(7)
        .with_job(JobSpec::new(w, AlgoKind::SleepingMis, 4))
        .with_job(JobSpec::new(w, AlgoKind::FastSleepingMis, 3))
        .with_job(JobSpec::new(w, AlgoKind::SleepingMis, 4))
        .with_job(JobSpec::new(w, AlgoKind::SleepingMis, 2));
    let mut counter = CountingSink::default();
    let out =
        run_plan_cached(&plan, &FleetConfig::default(), &mut [&mut counter], None, true).unwrap();
    // 4 (job 0 and its group's max) + 3 (job 1): duplicates cost nothing.
    assert_eq!(out.cache.executed, 7);
    assert_eq!(out.total_trials, 7);
    // ...but every member job still collects its own trial count.
    assert_eq!(out.aggregates[0].trials, 4);
    assert_eq!(out.aggregates[1].trials, 3);
    assert_eq!(out.aggregates[2].trials, 4);
    assert_eq!(out.aggregates[3].trials, 2);
    // Sinks see one record per (member, trial): 4 + 3 + 4 + 2.
    assert_eq!(counter.trials, 13);
    // Fanned-out duplicates are literal copies of the representative.
    let report = out.report(&plan);
    let a = serde_json::to_string(&report.jobs[0].node_avg_awake).unwrap();
    let b = serde_json::to_string(&report.jobs[2].node_avg_awake).unwrap();
    assert_eq!(a, b);
}

fn store_contents(store: &Store) -> BTreeMap<String, String> {
    store.entries().map(|e| (e.key.clone(), serde_json::to_string(&e.payload).unwrap())).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merging the stores filled by independent per-process shards
    /// reconstructs exactly the store a single run would have written:
    /// same keys, same payloads.
    #[test]
    fn merged_shard_stores_equal_single_run_store(
        (fam_idx, n, trials, procs, seed) in
            (0usize..4, 8usize..48, 1usize..4, 1usize..5, 0u64..1 << 40)
    ) {
        let family = [
            GraphFamily::GnpAvgDeg(5.0),
            GraphFamily::Tree,
            GraphFamily::Cycle,
            GraphFamily::GeometricAvgDeg(6.0),
        ][fam_idx];
        let plan = TrialPlan::sweep(
            &[family],
            &[n],
            &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
            trials,
            seed,
            Execution::Auto,
        );
        let cfg = FleetConfig::with_threads(1);

        let single_dir = tmp_dir("prop-single");
        let mut single = Store::open(&single_dir).unwrap();
        run_plan_cached(&plan, &cfg, &mut [], Some(&mut single), true).unwrap();

        let merged_dir = tmp_dir("prop-merged");
        let mut merged = Store::open(&merged_dir).unwrap();
        let total = plan.total_trials() as usize;
        let mut covered = 0u64;
        for k in 0..procs {
            let shard_dir = tmp_dir(&format!("prop-shard{k}"));
            let mut shard_store = Store::open(&shard_dir).unwrap();
            let out =
                run_plan_shard(&plan, &cfg, &mut [], Some(&mut shard_store), k, procs).unwrap();
            let (lo, hi) = shard_bounds(total, k, procs);
            prop_assert_eq!(out.total_trials, (hi - lo) as u64);
            covered += out.total_trials;
            merged.merge_from(&shard_store).unwrap();
            std::fs::remove_dir_all(&shard_dir).unwrap();
        }
        prop_assert_eq!(covered, plan.total_trials());
        prop_assert_eq!(store_contents(&single), store_contents(&merged));
        std::fs::remove_dir_all(&single_dir).unwrap();
        std::fs::remove_dir_all(&merged_dir).unwrap();
    }
}
