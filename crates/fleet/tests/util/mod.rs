//! Shared helpers for the fleet integration tests.
//!
//! This module is the single blessed wall-clock shim for test code:
//! `lint.toml` exempts `crates/fleet/tests/util/` from `no-wall-clock`
//! so the temp-dir nonce below lives in exactly one audited spot
//! instead of being copy-pasted into every test file.

use std::path::PathBuf;

/// A fresh per-invocation temp directory, namespaced by `prefix` (one
/// per test binary) and `tag` (one per test), unique across processes
/// and repeated runs via the pid and a sub-second wall-clock nonce.
///
/// The nonce only names a scratch directory — it can never reach the
/// bytes of any artifact the tests assert on.
pub fn tmp_dir(prefix: &str, tag: &str) -> PathBuf {
    let nonce =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().subsec_nanos();
    let dir = std::env::temp_dir().join(format!("{prefix}-{tag}-{}-{nonce:?}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
