//! Supervision end-to-end, with real child processes: the sharded-run
//! supervisor must observe injected worker faults (a child that dies
//! with a nonzero exit mid-shard, a child that wedges forever),
//! classify them, retry with backoff, and still produce output
//! byte-identical to a single-process run — or, when retries are
//! exhausted, either degrade gracefully (warm replay heals the holes)
//! or fail loudly with [`FleetError::Worker`] naming the worker and
//! its trial range.

use sleepy_fleet::sink::JsonlSink;
use sleepy_fleet::{
    run_plan_sharded_procs_supervised, run_plan_with_sinks, AlgoKind, Execution, FleetConfig,
    FleetError, FleetOutput, ProcsConfig, TrialPlan, WorkerStatus,
};
use sleepy_graph::GraphFamily;
use std::path::PathBuf;

mod util;

fn tmp_dir(tag: &str) -> PathBuf {
    util::tmp_dir("fleet-supervision-test", tag)
}

fn small_plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[48],
        &[AlgoKind::SleepingMis],
        3,
        0x5AFE,
        Execution::Auto,
    )
}

fn procs_config(procs: usize) -> ProcsConfig {
    let mut cfg = ProcsConfig::new(env!("CARGO_BIN_EXE_fleet"), procs);
    cfg.backoff_base_ms = 10;
    cfg
}

fn oracle(plan: &TrialPlan, cfg: &FleetConfig) -> (String, FleetOutput) {
    let mut sink = JsonlSink::new(Vec::new());
    let out = run_plan_with_sinks(plan, cfg, &mut [&mut sink]).unwrap();
    (String::from_utf8(sink.into_inner()).unwrap(), out)
}

#[test]
fn killed_worker_is_retried_and_bytes_match_single_process() {
    let plan = small_plan();
    let cfg = FleetConfig::with_threads(1);
    let (oracle_trials, oracle_out) = oracle(&plan, &cfg);

    let dir = tmp_dir("kill");
    let mut procs = procs_config(3);
    procs.chaos_kill = Some(1);
    let mut sink = JsonlSink::new(Vec::new());
    let (out, sup) =
        run_plan_sharded_procs_supervised(&plan, &cfg, &procs, &dir, &mut [&mut sink]).unwrap();

    // The injected death really happened and was classified: exit 17
    // from the chaos hook, on the victim worker, followed by a retry
    // with a recorded deterministic backoff.
    let failure = sup
        .failures
        .iter()
        .find(|f| f.worker == 1)
        .expect("the killed worker must appear in the failure record");
    assert_eq!(failure.status, WorkerStatus::Exited { code: Some(17) });
    assert_eq!(failure.attempt, 0);
    assert_eq!(failure.backoff_ms, Some(10), "first retry uses the backoff base");
    assert!(sup.retries >= 1);
    assert!(sup.degraded.is_empty());

    // Recovery is invisible in the artifacts: byte-identical trials
    // and aggregates, and the whole plan was served from the workers'
    // stores (the retry completed the dead worker's shard).
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), oracle_trials);
    let render = |o: &FleetOutput| serde_json::to_string_pretty(&o.report(&plan)).unwrap();
    assert_eq!(render(&out), render(&oracle_out));
    assert_eq!(out.cache.hits, plan.total_trials());
    assert_eq!(out.cache.executed, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn wedged_worker_times_out_and_the_retry_heals_it() {
    let plan = small_plan();
    let cfg = FleetConfig::with_threads(1);
    let (oracle_trials, _) = oracle(&plan, &cfg);

    let dir = tmp_dir("wedge");
    let mut procs = procs_config(2);
    procs.chaos_wedge = Some(0);
    procs.wait_timeout_secs = Some(2);
    let mut sink = JsonlSink::new(Vec::new());
    let (out, sup) =
        run_plan_sharded_procs_supervised(&plan, &cfg, &procs, &dir, &mut [&mut sink]).unwrap();

    let failure = sup
        .failures
        .iter()
        .find(|f| f.worker == 0)
        .expect("the wedged worker must appear in the failure record");
    assert_eq!(failure.status, WorkerStatus::TimedOut { timeout_secs: 2 });
    assert!(sup.retries >= 1);
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), oracle_trials);
    assert_eq!(out.cache.hits, plan.total_trials());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn exhausted_retries_fail_with_a_classified_worker_error() {
    let plan = small_plan();
    let cfg = FleetConfig::with_threads(1);
    let dir = tmp_dir("exhaust");
    // A fleet binary that does not exist: every attempt is a spawn
    // failure, so retries exhaust deterministically and fast.
    let mut procs = ProcsConfig::new(dir.join("no-such-binary"), 2);
    procs.backoff_base_ms = 1;
    procs.max_retries = 2;
    let err = run_plan_sharded_procs_supervised(&plan, &cfg, &procs, &dir, &mut [])
        .expect_err("a worker that can never spawn must fail the run");
    match err {
        FleetError::Worker { id, range, status } => {
            assert!(id < 2);
            // The error names the worker's exact global trial range.
            let total = plan.total_trials() as usize;
            let (lo, hi) = sleepy_fleet::shard_bounds(total, id, 2);
            assert_eq!(range, (lo, hi));
            assert!(matches!(status, WorkerStatus::SpawnFailed(_)), "{status}");
        }
        other => panic!("expected FleetError::Worker, got: {other}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn degrade_mode_abandons_the_shard_and_the_replay_heals_it() {
    let plan = small_plan();
    let cfg = FleetConfig::with_threads(1);
    let (oracle_trials, _) = oracle(&plan, &cfg);

    let dir = tmp_dir("degrade");
    let mut procs = procs_config(2);
    // Worker 1 can never succeed (its binary path is fine, but we give
    // it zero retries and make its only attempt die): chaos-kill plus
    // max_retries = 0 means its one attempt half-fills the shard and
    // exits 17, and degradation must absorb that.
    procs.chaos_kill = Some(1);
    procs.max_retries = 0;
    procs.degrade = true;
    let mut sink = JsonlSink::new(Vec::new());
    let (out, sup) =
        run_plan_sharded_procs_supervised(&plan, &cfg, &procs, &dir, &mut [&mut sink]).unwrap();

    assert_eq!(sup.degraded, vec![1], "worker 1 must be recorded as degraded");
    assert_eq!(sup.retries, 0);
    // The warm replay executed the abandoned half-shard in-process;
    // the artifacts are still byte-identical to the oracle.
    assert!(out.cache.executed > 0, "the abandoned trials must re-execute in the replay");
    assert_eq!(String::from_utf8(sink.into_inner()).unwrap(), oracle_trials);
    std::fs::remove_dir_all(&dir).unwrap();
}
