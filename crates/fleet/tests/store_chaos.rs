//! Store fault harness, property-tested: truncate a segment at an
//! *arbitrary* byte boundary and the store must converge — a cut on a
//! line boundary keeps exactly the surviving whole lines, any other
//! cut quarantines the segment wholesale, and in every case a warm
//! rerun re-executes exactly the lost trials and reproduces the cold
//! run byte-for-byte. [`CacheStats`] is the witness: `hits` counts the
//! survivors, `executed` counts the healed holes, and they always sum
//! to the plan.

use proptest::prelude::*;
use sleepy_fleet::sink::JsonlSink;
use sleepy_fleet::{run_plan_cached, AlgoKind, Execution, FleetConfig, TrialPlan};
use sleepy_graph::GraphFamily;
use sleepy_store::{Store, StoreFault, StoreFaultInjector};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

mod util;

fn plan() -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0)],
        &[32],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        3,
        0xD15C,
        Execution::Auto,
    )
}

fn config() -> FleetConfig {
    FleetConfig { threads: 1, shard_size: 4, max_in_flight: 0, progress: false }
}

/// One cold run, captured once: the template store directory plus the
/// oracle trials.jsonl bytes every healed rerun must reproduce.
struct Template {
    dir: PathBuf,
    trials: Vec<u8>,
    payloads: BTreeMap<String, String>,
}

fn template() -> &'static Template {
    static TEMPLATE: OnceLock<Template> = OnceLock::new();
    TEMPLATE.get_or_init(|| {
        let dir = util::tmp_dir("fleet-store-chaos", "template");
        let mut store = Store::open(&dir).unwrap();
        let mut sink = JsonlSink::new(Vec::new());
        let out =
            run_plan_cached(&plan(), &config(), &mut [&mut sink], Some(&mut store), true).unwrap();
        assert_eq!(out.cache.executed, plan().total_trials());
        let payloads = payload_map(&store);
        Template { dir, trials: sink.into_inner(), payloads }
    })
}

fn payload_map(store: &Store) -> BTreeMap<String, String> {
    store.entries().map(|e| (e.key.clone(), serde::value::to_compact_string(&e.payload))).collect()
}

/// Copies the template store into a fresh per-case directory.
fn clone_template(tag: &str) -> PathBuf {
    let dir = util::tmp_dir("fleet-store-chaos", tag);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(&template().dir).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dir.join(entry.file_name())).unwrap();
    }
    dir
}

/// The store's segment files as `(name, bytes)`, sorted by name.
fn segments(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut segs = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if name.starts_with("seg-") && name.ends_with(".jsonl") {
            segs.push((name, std::fs::read(&path).unwrap()));
        }
    }
    segs.sort();
    segs
}

/// Warm-runs the plan against `dir` and returns (trials bytes, hits,
/// executed, payload map afterwards).
fn heal(dir: &Path) -> (Vec<u8>, u64, u64, BTreeMap<String, String>) {
    let mut store = Store::open(dir).unwrap();
    let mut sink = JsonlSink::new(Vec::new());
    let out =
        run_plan_cached(&plan(), &config(), &mut [&mut sink], Some(&mut store), true).unwrap();
    let payloads = payload_map(&store);
    (sink.into_inner(), out.cache.hits, out.cache.executed, payloads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn truncation_at_any_boundary_converges(seg_pick in 0usize..64, cut_pick in 0usize..1_000_000) {
        let total = plan().total_trials();
        let case = format!("cut-{seg_pick}-{cut_pick}");
        let dir = clone_template(&case);
        let segs = segments(&dir);
        prop_assert!(!segs.is_empty(), "cold run stored no segments");
        let (name, bytes) = &segs[seg_pick % segs.len()];
        let cut = cut_pick % (bytes.len() + 1);

        // Expected survivors: a cut on a line boundary keeps the whole
        // lines before it; any mid-line cut (including losing the final
        // newline) must quarantine the segment wholesale.
        let on_boundary = cut == 0 || bytes[cut - 1] == b'\n';
        let seg_lines = bytes.iter().filter(|&&b| b == b'\n').count() as u64;
        let surviving_lines = if on_boundary {
            bytes[..cut].iter().filter(|&&b| b == b'\n').count() as u64
        } else {
            0
        };
        let expected_hits = total - seg_lines + surviving_lines;

        std::fs::write(dir.join(name), &bytes[..cut]).unwrap();
        let (trials, hits, executed, payloads) = heal(&dir);

        prop_assert_eq!(hits, expected_hits, "cut {} of {} in {}", cut, bytes.len(), name);
        prop_assert_eq!(executed, total - expected_hits, "hits + executed must cover the plan");
        // Byte identity: healing is indistinguishable from never
        // having been corrupted.
        prop_assert_eq!(&trials, &template().trials, "healed trials.jsonl diverged");
        prop_assert_eq!(&payloads, &template().payloads, "healed store records diverged");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_injector_faults_converge(seed in 0u64..1u64 << 48) {
        let total = plan().total_trials();
        let dir = clone_template(&format!("inj-{seed}"));
        let fault = StoreFaultInjector::new(&dir, seed).corrupt_one().unwrap();
        prop_assert!(fault != StoreFault::Nothing, "template store has data to corrupt");
        let (trials, hits, executed, payloads) = heal(&dir);
        prop_assert_eq!(hits + executed, total, "{}", fault);
        prop_assert_eq!(&trials, &template().trials, "healed trials.jsonl diverged after {}", fault);
        prop_assert_eq!(&payloads, &template().payloads, "store records diverged after {}", fault);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
