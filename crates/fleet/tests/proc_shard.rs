//! Multi-process sharding end-to-end: real worker processes of the
//! `fleet` binary fill per-shard stores, the coordinator merges them
//! and replays — and the result is byte-identical to a single-process
//! run of the same plan.

use sleepy_fleet::sink::JsonlSink;
use sleepy_fleet::{
    run_plan_sharded_procs, run_plan_with_sinks, AlgoKind, Execution, FleetConfig, ProcsConfig,
    TrialPlan,
};
use sleepy_graph::GraphFamily;
use sleepy_store::Store;
use std::path::PathBuf;

mod util;

fn tmp_dir(tag: &str) -> PathBuf {
    util::tmp_dir("fleet-procs-test", tag)
}

#[test]
fn four_worker_processes_match_single_process_bytes() {
    let plan = TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[64],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        5,
        0x51EE9,
        Execution::Auto,
    );
    let cfg = FleetConfig::with_threads(1);
    let total = plan.total_trials();

    let mut single_sink = JsonlSink::new(Vec::new());
    let single = run_plan_with_sinks(&plan, &cfg, &mut [&mut single_sink]).unwrap();

    let dir = tmp_dir("e2e");
    let procs = ProcsConfig::new(env!("CARGO_BIN_EXE_fleet"), 4);
    let mut sharded_sink = JsonlSink::new(Vec::new());
    let sharded =
        run_plan_sharded_procs(&plan, &cfg, &procs, &dir, &mut [&mut sharded_sink]).unwrap();

    // The replay found every trial pre-computed by the workers...
    assert_eq!(sharded.cache.hits, total, "workers must have covered the whole plan");
    assert_eq!(sharded.cache.executed, 0);
    // ...and reproduced the single-process output byte for byte.
    let render =
        |out: &sleepy_fleet::FleetOutput| serde_json::to_string_pretty(&out.report(&plan)).unwrap();
    assert_eq!(render(&single), render(&sharded));
    assert_eq!(
        String::from_utf8(single_sink.into_inner()).unwrap(),
        String::from_utf8(sharded_sink.into_inner()).unwrap()
    );

    // The merged store is left behind as a warm cache.
    let merged = Store::open(dir.join("merged")).unwrap();
    assert_eq!(merged.len() as u64, total);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn coordinator_heals_a_missing_shard() {
    // Run only 2 of 3 shards by hand, then merge-and-replay: the
    // replay executes the hole itself and output is still identical.
    let plan = TrialPlan::sweep(
        &[GraphFamily::Cycle],
        &[48],
        &[AlgoKind::SleepingMis],
        6,
        0xD00D,
        Execution::Auto,
    );
    let cfg = FleetConfig::with_threads(1);
    let single = run_plan_with_sinks(&plan, &cfg, &mut []).unwrap();

    let dir = tmp_dir("heal");
    for k in [0usize, 2] {
        let mut store = Store::open(dir.join(format!("shard-{k}"))).unwrap();
        sleepy_fleet::run_plan_shard(&plan, &cfg, &mut [], Some(&mut store), k, 3).unwrap();
    }
    let mut merged = Store::open(dir.join("merged")).unwrap();
    for k in [0usize, 2] {
        merged.merge_from(&Store::open(dir.join(format!("shard-{k}"))).unwrap()).unwrap();
    }
    let healed =
        sleepy_fleet::run_plan_cached(&plan, &cfg, &mut [], Some(&mut merged), true).unwrap();
    assert!(healed.cache.executed > 0, "the missing shard's trials must re-execute");
    assert!(healed.cache.hits > 0, "the present shards' trials must be served");
    assert_eq!(healed.cache.hits + healed.cache.executed, plan.total_trials());
    let render =
        |out: &sleepy_fleet::FleetOutput| serde_json::to_string_pretty(&out.report(&plan)).unwrap();
    assert_eq!(render(&single), render(&healed));
    std::fs::remove_dir_all(&dir).unwrap();
}
