//! The fleet runner: executes a [`TrialPlan`] on the worker pool.

use crate::agg::{JobAggregate, MetricStats};
use crate::error::FleetError;
use crate::measure::{measure_once, ComplexityReport};
use crate::pool::{resolve_threads, run_shards_ordered};
use crate::seed::SeedStream;
use crate::sink::{TrialRecord, TrialSink};
use crate::spec::TrialPlan;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Runner configuration. Everything here affects only *how fast* a plan
/// runs, never *what* it computes: outputs are byte-identical across
/// all settings.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Trials per shard (the unit of work stealing). Smaller shards
    /// balance load better; larger shards amortize scheduling. Shard
    /// boundaries are derived from the plan alone, so this does not
    /// affect output either.
    pub shard_size: usize,
    /// Maximum shards buffered ahead of the in-order collector
    /// (0 = 2 × threads). Bounds memory on runs whose trial logs are
    /// large.
    pub max_in_flight: usize,
    /// Print live progress to stderr.
    pub progress: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { threads: 0, shard_size: 16, max_in_flight: 0, progress: false }
    }
}

impl FleetConfig {
    /// A config pinned to a thread count.
    pub fn with_threads(threads: usize) -> Self {
        FleetConfig { threads, ..FleetConfig::default() }
    }
}

/// The in-memory result of a fleet run.
#[derive(Debug)]
pub struct FleetOutput {
    /// One aggregate per plan job, in plan order.
    pub aggregates: Vec<JobAggregate>,
    /// Total trials executed.
    pub total_trials: u64,
    /// Wall-clock duration of the run (not part of serialized reports —
    /// those must be byte-identical across thread counts).
    pub elapsed: Duration,
}

/// One job's serializable aggregate report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobReport {
    /// `<algo> @ <family>/n=<n>`.
    pub label: String,
    /// Algorithm label.
    pub algo: String,
    /// Workload label.
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Trials aggregated.
    pub trials: u64,
    /// Fraction of trials whose output verified as an MIS.
    pub valid_fraction: f64,
    /// Total Algorithm 2 base-case timeouts.
    pub base_timeouts: u64,
    /// Node-averaged awake complexity.
    pub node_avg_awake: MetricStats,
    /// Worst-case awake complexity.
    pub worst_awake: MetricStats,
    /// Worst-case round complexity.
    pub worst_round: MetricStats,
    /// Node-averaged round complexity.
    pub node_avg_round: MetricStats,
    /// Total messages.
    pub messages: MetricStats,
    /// MIS size.
    pub mis_size: MetricStats,
}

/// The serializable aggregate report of a whole run. Contains no
/// timing or machine information: two runs of the same plan serialize
/// to identical bytes regardless of thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// The plan's base seed.
    pub base_seed: u64,
    /// Total trials executed.
    pub total_trials: u64,
    /// Per-job aggregates, in plan order.
    pub jobs: Vec<JobReport>,
}

impl FleetOutput {
    /// Builds the serializable report for this output.
    pub fn report(&self, plan: &TrialPlan) -> FleetReport {
        let jobs = plan
            .jobs
            .iter()
            .zip(&self.aggregates)
            .map(|(job, agg)| JobReport {
                label: job.label(),
                algo: job.algo.to_string(),
                workload: job.workload.label(),
                n: job.workload.n,
                trials: agg.trials,
                valid_fraction: agg.valid_fraction(),
                base_timeouts: agg.base_timeouts,
                node_avg_awake: agg.node_avg_awake.stats(),
                worst_awake: agg.worst_awake.stats(),
                worst_round: agg.worst_round.stats(),
                node_avg_round: agg.node_avg_round.stats(),
                messages: agg.messages.stats(),
                mis_size: agg.mis_size.stats(),
            })
            .collect();
        FleetReport { base_seed: plan.base_seed, total_trials: self.total_trials, jobs }
    }
}

/// A shard's worth of finished trials.
struct ShardOutput {
    /// `(job index, trial index, seed, report)` in global trial order.
    trials: Vec<(usize, usize, u64, ComplexityReport)>,
}

/// Runs a plan with no per-trial sinks.
///
/// # Errors
///
/// The error of the smallest-index failing trial.
pub fn run_plan(plan: &TrialPlan, config: &FleetConfig) -> Result<FleetOutput, FleetError> {
    run_plan_with_sinks(plan, config, &mut [])
}

/// Runs a plan, feeding every finished trial to the sinks in global
/// trial order (deterministic regardless of scheduling).
///
/// # Errors
///
/// The error of the smallest-index failing trial, or the first sink
/// error.
pub fn run_plan_with_sinks(
    plan: &TrialPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn TrialSink],
) -> Result<FleetOutput, FleetError> {
    if config.shard_size == 0 {
        return Err(FleetError::Config("shard_size must be positive".into()));
    }
    let start = Instant::now();
    let seeds = SeedStream::new(plan.base_seed);
    // Global trial order: plan jobs concatenated. Prefix sums map a
    // global index back to (job, trial).
    let mut job_starts = Vec::with_capacity(plan.jobs.len());
    let mut total = 0usize;
    for job in &plan.jobs {
        job_starts.push(total);
        total += job.trials;
    }
    let locate = |global: usize| -> (usize, usize) {
        let job = match job_starts.binary_search(&global) {
            Ok(j) => {
                // Several zero-trial jobs can share a start; take the
                // last one, whose range actually contains `global`.
                let mut j = j;
                while j + 1 < job_starts.len() && job_starts[j + 1] == global {
                    j += 1;
                }
                j
            }
            Err(j) => j - 1,
        };
        (job, global - job_starts[job])
    };
    let shard_size = config.shard_size;
    let shard_count = total.div_ceil(shard_size);
    let threads = resolve_threads(config.threads);
    let max_in_flight = if config.max_in_flight == 0 { 2 * threads } else { config.max_in_flight };

    let mut aggregates: Vec<JobAggregate> = plan.jobs.iter().map(|_| JobAggregate::new()).collect();
    let mut done: u64 = 0;
    let mut last_percent: u64 = u64::MAX;

    run_shards_ordered(
        shard_count,
        config.threads,
        max_in_flight,
        |shard| -> Result<ShardOutput, FleetError> {
            let lo = shard * shard_size;
            let hi = (lo + shard_size).min(total);
            let mut trials = Vec::with_capacity(hi - lo);
            for global in lo..hi {
                let (job_idx, trial_idx) = locate(global);
                let job = &plan.jobs[job_idx];
                let seed = seeds.trial_seed(job_idx as u64, trial_idx as u64);
                let graph = job.workload.instance(seed)?;
                let report = measure_once(&graph, job.algo, seed, job.execution)?;
                trials.push((job_idx, trial_idx, seed, report));
            }
            Ok(ShardOutput { trials })
        },
        |_, shard_out| {
            for (job_idx, trial_idx, seed, report) in &shard_out.trials {
                aggregates[*job_idx].push(report);
                for sink in sinks.iter_mut() {
                    sink.record(&TrialRecord {
                        job_index: *job_idx,
                        job: &plan.jobs[*job_idx],
                        trial: *trial_idx,
                        seed: *seed,
                        report,
                    })?;
                }
                done += 1;
            }
            if config.progress && total > 0 {
                let percent = done * 100 / total as u64;
                if percent != last_percent {
                    last_percent = percent;
                    eprint!("\rfleet: {done}/{total} trials ({percent}%)");
                    if done == total as u64 {
                        eprintln!();
                    }
                }
            }
            Ok(())
        },
    )?;

    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    Ok(FleetOutput { aggregates, total_trials: done, elapsed: start.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AlgoKind, Execution};
    use crate::spec::JobSpec;
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    fn tiny_plan() -> TrialPlan {
        TrialPlan::sweep(
            &[GraphFamily::Cycle, GraphFamily::GnpAvgDeg(4.0)],
            &[48],
            &[AlgoKind::SleepingMis],
            6,
            0xF1EE7,
            Execution::Auto,
        )
    }

    #[test]
    fn run_produces_aggregates_per_job() {
        let plan = tiny_plan();
        let out = run_plan(&plan, &FleetConfig::default()).unwrap();
        assert_eq!(out.aggregates.len(), 2);
        assert_eq!(out.total_trials, 12);
        for agg in &out.aggregates {
            assert_eq!(agg.trials, 6);
            assert_eq!(agg.valid_fraction(), 1.0);
            assert!(agg.node_avg_awake.moments.mean > 0.0);
        }
        let report = out.report(&plan);
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs[0].label.contains("SleepingMIS"));
    }

    #[test]
    fn thread_count_does_not_change_report_bytes() {
        let plan = tiny_plan();
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let cfg = FleetConfig { threads, shard_size: 2, ..FleetConfig::default() };
                let out = run_plan(&plan, &cfg).unwrap();
                serde_json::to_string_pretty(&out.report(&plan)).unwrap()
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }

    #[test]
    fn shard_size_does_not_change_report_bytes() {
        let plan = tiny_plan();
        let render = |shard_size: usize| {
            let cfg = FleetConfig { threads: 3, shard_size, ..FleetConfig::default() };
            let out = run_plan(&plan, &cfg).unwrap();
            serde_json::to_string_pretty(&out.report(&plan)).unwrap()
        };
        assert_eq!(render(1), render(7));
        assert_eq!(render(7), render(100));
    }

    #[test]
    fn zero_trial_jobs_are_skipped_cleanly() {
        let mut plan = TrialPlan::new(5);
        plan.push(JobSpec::new(Workload::new(GraphFamily::Cycle, 16), AlgoKind::SleepingMis, 0));
        plan.push(JobSpec::new(Workload::new(GraphFamily::Cycle, 16), AlgoKind::SleepingMis, 3));
        plan.push(JobSpec::new(Workload::new(GraphFamily::Path, 16), AlgoKind::SleepingMis, 0));
        let out = run_plan(&plan, &FleetConfig::default()).unwrap();
        assert_eq!(out.total_trials, 3);
        assert_eq!(out.aggregates[0].trials, 0);
        assert_eq!(out.aggregates[1].trials, 3);
        assert_eq!(out.aggregates[2].trials, 0);
    }

    #[test]
    fn invalid_shard_size_is_a_config_error() {
        let plan = tiny_plan();
        let cfg = FleetConfig { shard_size: 0, ..FleetConfig::default() };
        assert!(matches!(run_plan(&plan, &cfg), Err(FleetError::Config(_))));
    }
}
