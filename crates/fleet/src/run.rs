//! The fleet runner: executes a [`TrialPlan`] or [`DynamicPlan`] on the
//! worker pool.

use crate::agg::{DynamicJobAggregate, JobAggregate, MetricStats};
use crate::cache::{self, CacheStats};
use crate::error::FleetError;
use crate::measure::{measure_dynamic, measure_once, ComplexityReport, DynamicReport};
use crate::pool::{resolve_threads, run_shards_ordered};
use crate::seed::SeedStream;
use crate::sink::{PhaseRecord, PhaseSink, TrialRecord, TrialSink};
use crate::spec::{DynamicPlan, TrialPlan};
use serde::{Deserialize, Serialize};
use sleepy_store::Store;
use std::time::Duration;

/// Runner configuration. Everything here affects only *how fast* a plan
/// runs, never *what* it computes: outputs are byte-identical across
/// all settings.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Trials per shard (the unit of work stealing). Smaller shards
    /// balance load better; larger shards amortize scheduling. Shard
    /// boundaries are derived from the plan alone, so this does not
    /// affect output either.
    pub shard_size: usize,
    /// Maximum shards buffered ahead of the in-order collector
    /// (0 = 2 × threads). Bounds memory on runs whose trial logs are
    /// large.
    pub max_in_flight: usize,
    /// Print live progress to stderr.
    pub progress: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { threads: 0, shard_size: 16, max_in_flight: 0, progress: false }
    }
}

impl FleetConfig {
    /// A config pinned to a thread count.
    pub fn with_threads(threads: usize) -> Self {
        FleetConfig { threads, ..FleetConfig::default() }
    }
}

/// The in-memory result of a fleet run.
#[derive(Debug)]
pub struct FleetOutput {
    /// One aggregate per plan job, in plan order.
    pub aggregates: Vec<JobAggregate>,
    /// Total trials collected (executed + served from the cache).
    pub total_trials: u64,
    /// Cache-hit accounting (all-executed for uncached runs).
    pub cache: CacheStats,
    /// Wall-clock duration of the run (not part of serialized reports —
    /// those must be byte-identical across thread counts).
    pub elapsed: Duration,
}

/// One job's serializable aggregate report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobReport {
    /// `<algo> @ <family>/n=<n>`.
    pub label: String,
    /// Algorithm label.
    pub algo: String,
    /// Workload label.
    pub workload: String,
    /// Node count.
    pub n: usize,
    /// Trials aggregated.
    pub trials: u64,
    /// Fraction of trials whose output verified as an MIS.
    pub valid_fraction: f64,
    /// Total Algorithm 2 base-case timeouts.
    pub base_timeouts: u64,
    /// Node-averaged awake complexity.
    pub node_avg_awake: MetricStats,
    /// Worst-case awake complexity.
    pub worst_awake: MetricStats,
    /// Worst-case round complexity.
    pub worst_round: MetricStats,
    /// Node-averaged round complexity.
    pub node_avg_round: MetricStats,
    /// Total messages.
    pub messages: MetricStats,
    /// MIS size.
    pub mis_size: MetricStats,
}

/// The serializable aggregate report of a whole run. Contains no
/// timing or machine information: two runs of the same plan serialize
/// to identical bytes regardless of thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReport {
    /// The plan's base seed.
    pub base_seed: u64,
    /// Total trials executed.
    pub total_trials: u64,
    /// Per-job aggregates, in plan order.
    pub jobs: Vec<JobReport>,
}

impl FleetOutput {
    /// Builds the serializable report for this output.
    pub fn report(&self, plan: &TrialPlan) -> FleetReport {
        let jobs = plan
            .jobs
            .iter()
            .zip(&self.aggregates)
            .map(|(job, agg)| JobReport {
                label: job.label(),
                algo: job.algo.to_string(),
                workload: job.workload.label(),
                n: job.workload.n,
                trials: agg.trials,
                valid_fraction: agg.valid_fraction(),
                base_timeouts: agg.base_timeouts,
                node_avg_awake: agg.node_avg_awake.stats(),
                worst_awake: agg.worst_awake.stats(),
                worst_round: agg.worst_round.stats(),
                node_avg_round: agg.node_avg_round.stats(),
                messages: agg.messages.stats(),
                mis_size: agg.mis_size.stats(),
            })
            .collect();
        FleetReport { base_seed: plan.base_seed, total_trials: self.total_trials, jobs }
    }
}

/// Shared execution scaffolding of the static and dynamic runners:
/// global trial ordering over a plan's concatenated jobs (prefix sums
/// map a global index back to `(job, trial)`), per-trial seeds from the
/// plan's [`SeedStream`], work-stealing shard execution, in-order
/// collection, and a percent-throttled stderr progress line.
///
/// `trial_counts[j]` is job `j`'s trial count. `run_trial(job, trial,
/// seed)` executes on worker threads; `collect(job, trial, seed,
/// result)` runs on the calling thread in global trial order. `range`
/// restricts execution to a half-open interval of global trial indices
/// (a multi-process shard); `None` runs everything. Returns the number
/// of trials executed.
fn run_trials_sharded<R: Send>(
    trial_counts: &[usize],
    base_seed: u64,
    config: &FleetConfig,
    range: Option<(usize, usize)>,
    progress_noun: &str,
    run_trial: impl Fn(usize, usize, u64) -> Result<R, FleetError> + Sync,
    mut collect: impl FnMut(usize, usize, u64, &R) -> Result<(), FleetError>,
) -> Result<u64, FleetError> {
    if config.shard_size == 0 {
        return Err(FleetError::Config("shard_size must be positive".into()));
    }
    struct Shard<R> {
        trials: Vec<(usize, usize, u64, R)>,
    }
    let seeds = SeedStream::new(base_seed);
    let mut job_starts = Vec::with_capacity(trial_counts.len());
    let mut total = 0usize;
    for &count in trial_counts {
        job_starts.push(total);
        total += count;
    }
    let locate = |global: usize| -> (usize, usize) {
        let job = match job_starts.binary_search(&global) {
            Ok(j) => {
                // Several zero-trial jobs can share a start; take the
                // last one, whose range actually contains `global`.
                let mut j = j;
                while j + 1 < job_starts.len() && job_starts[j + 1] == global {
                    j += 1;
                }
                j
            }
            Err(j) => j - 1,
        };
        (job, global - job_starts[job])
    };
    let (range_lo, range_hi) = match range {
        Some((lo, hi)) => {
            if lo > hi || hi > total {
                return Err(FleetError::Config(format!(
                    "trial range {lo}..{hi} out of bounds for {total} trials"
                )));
            }
            (lo, hi)
        }
        None => (0, total),
    };
    let span = range_hi - range_lo;
    let shard_size = config.shard_size;
    let shard_count = span.div_ceil(shard_size);
    let threads = resolve_threads(config.threads);
    let max_in_flight = if config.max_in_flight == 0 { 2 * threads } else { config.max_in_flight };
    let mut done: u64 = 0;
    let mut last_percent: u64 = u64::MAX;

    run_shards_ordered(
        shard_count,
        config.threads,
        max_in_flight,
        |shard| -> Result<Shard<R>, FleetError> {
            let lo = range_lo + shard * shard_size;
            let hi = (lo + shard_size).min(range_hi);
            let mut trials = Vec::with_capacity(hi - lo);
            for global in lo..hi {
                let (job_idx, trial_idx) = locate(global);
                let seed = seeds.trial_seed(job_idx as u64, trial_idx as u64);
                trials.push((job_idx, trial_idx, seed, run_trial(job_idx, trial_idx, seed)?));
            }
            Ok(Shard { trials })
        },
        |_, shard_out| {
            for (job_idx, trial_idx, seed, result) in &shard_out.trials {
                collect(*job_idx, *trial_idx, *seed, result)?;
                done += 1;
            }
            if config.progress && span > 0 {
                let percent = done * 100 / span as u64;
                if percent != last_percent {
                    last_percent = percent;
                    eprint!("\rfleet: {done}/{span} {progress_noun} ({percent}%)");
                    if done == span as u64 {
                        eprintln!();
                    }
                }
            }
            Ok(())
        },
    )?;
    Ok(done)
}

/// The contiguous half-open range of global trial indices process
/// `index` of `count` executes: ranges partition `0..total` and differ
/// in size by at most one trial.
///
/// # Panics
///
/// `count` must be at least 1 and `index` less than `count` (the
/// fallible entry points, [`run_plan_shard`] and
/// [`run_plan_sharded_procs`], validate this and return a
/// [`FleetError::Config`] instead).
///
/// [`run_plan_sharded_procs`]: crate::procs::run_plan_sharded_procs
pub fn shard_bounds(total: usize, index: usize, count: usize) -> (usize, usize) {
    assert!(count > 0 && index < count, "invalid shard {index}/{count}");
    (index * total / count, (index + 1) * total / count)
}

/// Runs a plan with no per-trial sinks.
///
/// # Errors
///
/// The error of the smallest-index failing trial.
pub fn run_plan(plan: &TrialPlan, config: &FleetConfig) -> Result<FleetOutput, FleetError> {
    run_plan_with_sinks(plan, config, &mut [])
}

/// Runs a plan, feeding every finished trial to the sinks in global
/// trial order (deterministic regardless of scheduling).
///
/// # Errors
///
/// The error of the smallest-index failing trial, or the first sink
/// error.
pub fn run_plan_with_sinks(
    plan: &TrialPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn TrialSink],
) -> Result<FleetOutput, FleetError> {
    run_plan_cached(plan, config, sinks, None, true)
}

/// Runs a plan against an optional result store: trials whose key is
/// already stored are served from it (when `read_cache` is true)
/// instead of executing, and freshly executed results are appended
/// back to the store in batches of [`STORE_FLUSH_BATCH`] (each batch
/// one atomically-published segment), so an interrupted run loses at
/// most one batch of computed work. Output is byte-identical to an
/// uncached run of the same plan — cached reports round-trip exactly
/// and are collected in the same global trial order.
///
/// Pass `read_cache = false` to force re-execution while still
/// recording results (the CLI's `--no-cache`).
///
/// # Errors
///
/// The error of the smallest-index failing trial, the first sink
/// error, or a store write failure.
pub fn run_plan_cached(
    plan: &TrialPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn TrialSink],
    store: Option<&mut Store>,
    read_cache: bool,
) -> Result<FleetOutput, FleetError> {
    run_plan_inner(plan, config, sinks, store, read_cache, None)
}

/// Runs one multi-process shard of a plan: only global trials in
/// [`shard_bounds`]`(total, index, count)` execute, with results
/// recorded to (and read from) the shard's store. Aggregates and sink
/// records cover only the shard's range — the coordinator merges shard
/// stores and replays the full plan warm to recover the canonical
/// aggregates (see [`run_plan_sharded_procs`]).
///
/// # Errors
///
/// As [`run_plan_cached`], plus a config error for an invalid shard.
///
/// [`run_plan_sharded_procs`]: crate::procs::run_plan_sharded_procs
pub fn run_plan_shard(
    plan: &TrialPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn TrialSink],
    store: Option<&mut Store>,
    index: usize,
    count: usize,
) -> Result<FleetOutput, FleetError> {
    if count == 0 || index >= count {
        return Err(FleetError::Config(format!("invalid shard {index}/{count}")));
    }
    run_plan_inner(plan, config, sinks, store, true, Some((index, count)))
}

/// Job deduplication for a run: duplicate jobs (same content key)
/// execute once — on their first occurrence, with that position's
/// seeds — and every finished trial fans out to the aggregates and
/// sinks of all group members that cover its index. Plans without
/// duplicates are completely unaffected.
struct DedupPlan {
    /// `members[rep]` lists the group (rep first, plan order) for
    /// representative jobs, and is empty for duplicate jobs.
    members: Vec<Vec<usize>>,
    /// Trials the representative executes: the group's maximum.
    exec_counts: Vec<usize>,
}

impl DedupPlan {
    fn of(plan: &TrialPlan, job_keys: &[String]) -> Self {
        let n_jobs = plan.jobs.len();
        let mut first: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); n_jobs];
        for (j, key) in job_keys.iter().enumerate() {
            let rep = *first.entry(key.as_str()).or_insert(j);
            members[rep].push(j);
        }
        let exec_counts = (0..n_jobs)
            .map(|j| members[j].iter().map(|&m| plan.jobs[m].trials).max().unwrap_or(0))
            .collect();
        DedupPlan { members, exec_counts }
    }
}

/// Freshly executed results buffered before being flushed to the store
/// as one atomically-published segment. Bounds how much computed work
/// an interrupted cold run can lose.
pub const STORE_FLUSH_BATCH: usize = 1024;

fn run_plan_inner(
    plan: &TrialPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn TrialSink],
    store: Option<&mut Store>,
    read_cache: bool,
    shard: Option<(usize, usize)>,
) -> Result<FleetOutput, FleetError> {
    let watch = sleepy_telemetry::stopwatch("run", "static-plan");
    let job_keys: Vec<String> = plan.jobs.iter().map(|j| j.key(plan.base_seed)).collect();
    let dedup = DedupPlan::of(plan, &job_keys);
    let total_exec: usize = dedup.exec_counts.iter().sum();
    let range = shard.map(|(index, count)| shard_bounds(total_exec, index, count));

    let mut aggregates: Vec<JobAggregate> = plan.jobs.iter().map(|_| JobAggregate::new()).collect();
    let mut stats = CacheStats::default();
    let mut pending: Vec<(String, serde::Value)> = Vec::new();
    // Workers take shared read locks for lookups; the in-order
    // collector takes the write lock to flush finished batches mid-run.
    let store_cell: Option<std::sync::RwLock<&mut Store>> = store.map(std::sync::RwLock::new);
    let done = run_trials_sharded(
        &dedup.exec_counts,
        plan.base_seed,
        config,
        range,
        "trials",
        |job_idx, _trial_idx, seed| {
            let job = &plan.jobs[job_idx];
            if read_cache {
                if let Some(cell) = &store_cell {
                    let guard = cell.read().expect("store lock poisoned");
                    if let Some(cached) = guard
                        .get(&cache::trial_key(&job_keys[job_idx], seed))
                        .and_then(cache::report_from_value)
                    {
                        return Ok((cached, true));
                    }
                }
            }
            let _span = sleepy_telemetry::span!("trial", "static", {"job": job_idx, "seed": seed});
            let graph = job.workload.instance(seed)?;
            Ok((measure_once(&graph, job.algo, seed, job.execution)?, false))
        },
        |job_idx, trial_idx, seed, (report, hit): &(ComplexityReport, bool)| {
            if *hit {
                stats.count_hit(cache::STATIC_NS);
            } else {
                stats.count_executed(cache::STATIC_NS);
                if let Some(cell) = &store_cell {
                    pending.push((
                        cache::trial_key(&job_keys[job_idx], seed),
                        cache::report_to_value(report),
                    ));
                    if pending.len() >= STORE_FLUSH_BATCH {
                        let chunk = std::mem::take(&mut pending);
                        let mut guard = cell.write().expect("store lock poisoned");
                        stats.count_stored(cache::STATIC_NS, guard.append(chunk)?);
                    }
                }
            }
            for &member in &dedup.members[job_idx] {
                if trial_idx >= plan.jobs[member].trials {
                    continue;
                }
                aggregates[member].push(report);
                for sink in sinks.iter_mut() {
                    sink.record(&TrialRecord {
                        job_index: member,
                        job: &plan.jobs[member],
                        trial: trial_idx,
                        seed,
                        report,
                    })?;
                }
            }
            Ok(())
        },
    )?;

    if let Some(cell) = store_cell {
        let store = cell.into_inner().expect("store lock poisoned");
        stats.count_stored(cache::STATIC_NS, store.append(pending)?);
    }
    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    stats.publish();
    Ok(FleetOutput { aggregates, total_trials: done, cache: stats, elapsed: watch.finish() })
}

/// The in-memory result of a dynamic fleet run.
#[derive(Debug)]
pub struct DynamicFleetOutput {
    /// One aggregate per plan job, in plan order.
    pub aggregates: Vec<DynamicJobAggregate>,
    /// Total trials collected (executed + served from the cache).
    pub total_trials: u64,
    /// Cache-hit accounting: `hits`/`executed` count whole *trials*
    /// (a trial only hits when every one of its phases is stored),
    /// `stored` counts per-phase records written back.
    pub cache: CacheStats,
    /// Wall-clock duration of the run (not serialized).
    pub elapsed: Duration,
}

/// One phase's aggregate inside a [`DynamicJobReport`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseJobReport {
    /// Phase index.
    pub phase: usize,
    /// Trials that reached this phase.
    pub trials: u64,
    /// Fraction of those whose phase output verified as an MIS.
    pub valid_fraction: f64,
    /// Node-averaged awake complexity over the whole phase graph.
    pub node_avg_awake: MetricStats,
    /// Worst-case round complexity of the phase run.
    pub worst_round: MetricStats,
    /// Mean nodes the algorithm re-ran on (the repair scope).
    pub repair_scope_mean: f64,
    /// Mean MIS members carried over unchanged.
    pub carried_mean: f64,
}

/// Per-update cost statistics inside a [`DynamicJobReport`] — the
/// Ghaffari–Portmann-style amortized accounting. All zero for jobs
/// that did not run
/// [`RepairStrategy::Incremental`](crate::RepairStrategy::Incremental).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Update events absorbed across all trials and phases.
    pub count: u64,
    /// Amortized awake rounds per update (mean of per-update sums).
    pub awake_mean: f64,
    /// The costliest single update's awake-round sum.
    pub awake_max: f64,
    /// Mean repair scope (nodes re-run) per update.
    pub scope_mean: f64,
    /// Updates absorbed without waking anyone.
    pub zero_scope: u64,
}

/// One dynamic job's serializable aggregate report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicJobReport {
    /// `<algo>/<strategy> @ <workload>`.
    pub label: String,
    /// Algorithm label.
    pub algo: String,
    /// Repair strategy label.
    pub strategy: String,
    /// Workload label.
    pub workload: String,
    /// Trials aggregated.
    pub trials: u64,
    /// Fraction of trials valid on *every* phase.
    pub valid_fraction: f64,
    /// Whole-trial node-averaged awake cost summed over phases.
    pub total_avg_awake: MetricStats,
    /// Per-update awake-cost statistics (incremental strategy only).
    pub updates: UpdateStats,
    /// Per-phase aggregates.
    pub phases: Vec<PhaseJobReport>,
}

/// The serializable aggregate report of a dynamic run; like
/// [`FleetReport`], free of timing and machine information.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicFleetReport {
    /// The plan's base seed.
    pub base_seed: u64,
    /// Total trials executed.
    pub total_trials: u64,
    /// Per-job aggregates, in plan order.
    pub jobs: Vec<DynamicJobReport>,
}

impl DynamicFleetOutput {
    /// Builds the serializable report for this output.
    pub fn report(&self, plan: &DynamicPlan) -> DynamicFleetReport {
        let jobs = plan
            .jobs
            .iter()
            .zip(&self.aggregates)
            .map(|(job, agg)| {
                let scope_means = agg.repair_scope.means();
                let carried_means = agg.carried.means();
                let u = &agg.updates;
                DynamicJobReport {
                    label: job.label(),
                    algo: job.algo.to_string(),
                    strategy: job.strategy.to_string(),
                    workload: job.workload.label(),
                    trials: agg.trials,
                    valid_fraction: agg.valid_fraction(),
                    total_avg_awake: agg.total_avg_awake.stats(),
                    updates: UpdateStats {
                        count: u.count(),
                        awake_mean: u.amortized_awake(),
                        awake_max: u.awake.max_or_zero(),
                        scope_mean: if u.is_empty() { 0.0 } else { u.scope.mean },
                        zero_scope: u.zero_scope,
                    },
                    phases: agg
                        .phases
                        .iter()
                        .enumerate()
                        .map(|(phase, p)| PhaseJobReport {
                            phase,
                            trials: p.trials,
                            valid_fraction: p.valid_fraction(),
                            node_avg_awake: p.node_avg_awake.stats(),
                            worst_round: p.worst_round.stats(),
                            repair_scope_mean: scope_means.get(phase).copied().unwrap_or(0.0),
                            carried_mean: carried_means.get(phase).copied().unwrap_or(0.0),
                        })
                        .collect(),
                }
            })
            .collect();
        DynamicFleetReport { base_seed: plan.base_seed, total_trials: self.total_trials, jobs }
    }
}

/// Runs a dynamic plan with no per-phase sinks.
///
/// # Errors
///
/// The error of the smallest-index failing trial.
pub fn run_dynamic_plan(
    plan: &DynamicPlan,
    config: &FleetConfig,
) -> Result<DynamicFleetOutput, FleetError> {
    run_dynamic_plan_with_sinks(plan, config, &mut [])
}

/// Runs a dynamic plan, feeding every finished phase to the sinks in
/// global `(trial, phase)` order — deterministic regardless of
/// scheduling, exactly like the static runner.
///
/// # Errors
///
/// The error of the smallest-index failing trial, or the first sink
/// error.
pub fn run_dynamic_plan_with_sinks(
    plan: &DynamicPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn PhaseSink],
) -> Result<DynamicFleetOutput, FleetError> {
    run_dynamic_plan_cached(plan, config, sinks, None, true)
}

/// Runs a dynamic plan against an optional result store — the dynamic
/// counterpart of [`run_plan_cached`]. Each finished trial is persisted
/// as one record **per phase** (keyed by the dynamic job's content key,
/// the trial seed, and the phase index, in the `d/` namespace — see
/// [`cache::dynamic_phase_key`]); a trial is served warm only when
/// *every* one of its phases is stored, since per-phase membership
/// state is not persisted and a trial cannot resume mid-flight. A warm
/// rerun therefore executes **zero** phases and reproduces
/// `phases.jsonl` and the aggregate report byte-identically — cached
/// phase reports round-trip exactly (shortest-round-trip floats, the
/// same discipline as the static path) and are collected in the same
/// global `(trial, phase)` order.
///
/// Static and dynamic records are namespaced apart, so one store
/// directory can serve both kinds of plan at once.
///
/// # Errors
///
/// The error of the smallest-index failing trial, the first sink
/// error, or a store write failure.
pub fn run_dynamic_plan_cached(
    plan: &DynamicPlan,
    config: &FleetConfig,
    sinks: &mut [&mut dyn PhaseSink],
    store: Option<&mut Store>,
    read_cache: bool,
) -> Result<DynamicFleetOutput, FleetError> {
    let watch = sleepy_telemetry::stopwatch("run", "dynamic-plan");
    let job_keys: Vec<String> = plan.jobs.iter().map(|j| j.key(plan.base_seed)).collect();
    let counts: Vec<usize> = plan.jobs.iter().map(|j| j.trials).collect();
    let mut aggregates: Vec<DynamicJobAggregate> =
        plan.jobs.iter().map(|_| DynamicJobAggregate::new()).collect();
    let mut stats = CacheStats::default();
    let mut pending: Vec<(String, serde::Value)> = Vec::new();
    // Same locking discipline as the static runner: workers share read
    // locks for lookups, the in-order collector flushes under the write
    // lock.
    let store_cell: Option<std::sync::RwLock<&mut Store>> = store.map(std::sync::RwLock::new);
    let done = run_trials_sharded(
        &counts,
        plan.base_seed,
        config,
        None,
        "dynamic trials",
        |job_idx, _trial_idx, seed| {
            let job = &plan.jobs[job_idx];
            if read_cache {
                if let Some(cell) = &store_cell {
                    let guard = cell.read().expect("store lock poisoned");
                    if let Some(cached) = cache::dynamic_report_from_store(
                        &guard,
                        &job_keys[job_idx],
                        seed,
                        job.workload.phases,
                    ) {
                        return Ok((cached, true));
                    }
                }
            }
            let _span = sleepy_telemetry::span!("trial", "dynamic", {"job": job_idx, "seed": seed});
            let report =
                measure_dynamic(&job.workload, job.algo, seed, job.execution, job.strategy)?;
            Ok((report, false))
        },
        |job_idx, trial_idx, seed, (report, hit): &(DynamicReport, bool)| {
            if *hit {
                stats.count_hit(cache::DYNAMIC_NS);
            } else {
                stats.count_executed(cache::DYNAMIC_NS);
                if let Some(cell) = &store_cell {
                    for phase in &report.phases {
                        pending.push((
                            cache::dynamic_phase_key(&job_keys[job_idx], seed, phase.phase),
                            cache::phase_to_value(phase),
                        ));
                    }
                    if pending.len() >= STORE_FLUSH_BATCH {
                        let chunk = std::mem::take(&mut pending);
                        let mut guard = cell.write().expect("store lock poisoned");
                        stats.count_stored(cache::DYNAMIC_NS, guard.append(chunk)?);
                    }
                }
            }
            aggregates[job_idx].push(report);
            for phase in &report.phases {
                for sink in sinks.iter_mut() {
                    sink.record(&PhaseRecord {
                        job_index: job_idx,
                        job: &plan.jobs[job_idx],
                        trial: trial_idx,
                        seed,
                        report: phase,
                    })?;
                }
            }
            Ok(())
        },
    )?;

    if let Some(cell) = store_cell {
        let store = cell.into_inner().expect("store lock poisoned");
        stats.count_stored(cache::DYNAMIC_NS, store.append(pending)?);
    }
    for sink in sinks.iter_mut() {
        sink.finish()?;
    }
    stats.publish();
    Ok(DynamicFleetOutput { aggregates, total_trials: done, cache: stats, elapsed: watch.finish() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AlgoKind, Execution};
    use crate::spec::JobSpec;
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    fn tiny_plan() -> TrialPlan {
        TrialPlan::sweep(
            &[GraphFamily::Cycle, GraphFamily::GnpAvgDeg(4.0)],
            &[48],
            &[AlgoKind::SleepingMis],
            6,
            0xF1EE7,
            Execution::Auto,
        )
    }

    #[test]
    fn run_produces_aggregates_per_job() {
        let plan = tiny_plan();
        let out = run_plan(&plan, &FleetConfig::default()).unwrap();
        assert_eq!(out.aggregates.len(), 2);
        assert_eq!(out.total_trials, 12);
        for agg in &out.aggregates {
            assert_eq!(agg.trials, 6);
            assert_eq!(agg.valid_fraction(), 1.0);
            assert!(agg.node_avg_awake.moments.mean > 0.0);
        }
        let report = out.report(&plan);
        assert_eq!(report.jobs.len(), 2);
        assert!(report.jobs[0].label.contains("SleepingMIS"));
    }

    #[test]
    fn thread_count_does_not_change_report_bytes() {
        let plan = tiny_plan();
        let reports: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                let cfg = FleetConfig { threads, shard_size: 2, ..FleetConfig::default() };
                let out = run_plan(&plan, &cfg).unwrap();
                serde_json::to_string_pretty(&out.report(&plan)).unwrap()
            })
            .collect();
        assert_eq!(reports[0], reports[1]);
        assert_eq!(reports[1], reports[2]);
    }

    #[test]
    fn shard_size_does_not_change_report_bytes() {
        let plan = tiny_plan();
        let render = |shard_size: usize| {
            let cfg = FleetConfig { threads: 3, shard_size, ..FleetConfig::default() };
            let out = run_plan(&plan, &cfg).unwrap();
            serde_json::to_string_pretty(&out.report(&plan)).unwrap()
        };
        assert_eq!(render(1), render(7));
        assert_eq!(render(7), render(100));
    }

    #[test]
    fn zero_trial_jobs_are_skipped_cleanly() {
        let mut plan = TrialPlan::new(5);
        plan.push(JobSpec::new(Workload::new(GraphFamily::Cycle, 16), AlgoKind::SleepingMis, 0));
        plan.push(JobSpec::new(Workload::new(GraphFamily::Cycle, 16), AlgoKind::SleepingMis, 3));
        plan.push(JobSpec::new(Workload::new(GraphFamily::Path, 16), AlgoKind::SleepingMis, 0));
        let out = run_plan(&plan, &FleetConfig::default()).unwrap();
        assert_eq!(out.total_trials, 3);
        assert_eq!(out.aggregates[0].trials, 0);
        assert_eq!(out.aggregates[1].trials, 3);
        assert_eq!(out.aggregates[2].trials, 0);
    }

    #[test]
    fn invalid_shard_size_is_a_config_error() {
        let plan = tiny_plan();
        let cfg = FleetConfig { shard_size: 0, ..FleetConfig::default() };
        assert!(matches!(run_plan(&plan, &cfg), Err(FleetError::Config(_))));
        let dplan = tiny_dynamic_plan();
        assert!(matches!(run_dynamic_plan(&dplan, &cfg), Err(FleetError::Config(_))));
    }

    fn tiny_dynamic_plan() -> DynamicPlan {
        use crate::measure::RepairStrategy;
        DynamicPlan::sweep(
            &[GraphFamily::GnpAvgDeg(5.0), GraphFamily::Tree],
            &[64],
            &[AlgoKind::SleepingMis],
            &[RepairStrategy::Recompute, RepairStrategy::Repair],
            3,
            sleepy_graph::ChurnSpec {
                edge_delete_frac: 0.08,
                edge_insert_frac: 0.08,
                node_delete_frac: 0.04,
                node_insert_frac: 0.04,
                arrival_degree: 2,
                ..sleepy_graph::ChurnSpec::none()
            },
            4,
            0xD1CE,
            Execution::Auto,
        )
    }

    #[test]
    fn dynamic_run_aggregates_per_phase_and_validates() {
        let plan = tiny_dynamic_plan();
        let out = run_dynamic_plan(&plan, &FleetConfig::default()).unwrap();
        assert_eq!(out.aggregates.len(), 4);
        assert_eq!(out.total_trials, 16);
        for agg in &out.aggregates {
            assert_eq!(agg.trials, 4);
            assert_eq!(agg.valid_fraction(), 1.0, "every phase of every trial must verify");
            assert_eq!(agg.phases.len(), 3);
            for p in &agg.phases {
                assert_eq!(p.trials, 4);
                assert_eq!(p.valid_fraction(), 1.0);
            }
        }
        let report = out.report(&plan);
        assert_eq!(report.jobs.len(), 4);
        assert_eq!(report.jobs[0].phases.len(), 3);
        // Phase 0 always runs on the full graph.
        assert_eq!(report.jobs[0].phases[0].repair_scope_mean, 64.0);
        // Repair jobs restrict their scope after phase 0.
        let repair_job = report.jobs.iter().find(|j| j.strategy == "repair").unwrap();
        assert!(repair_job.phases[1].repair_scope_mean < 64.0);
        assert!(repair_job.phases[1].carried_mean > 0.0);
    }

    #[test]
    fn dynamic_report_bytes_thread_invariant() {
        let plan = tiny_dynamic_plan();
        let render = |threads: usize, shard_size: usize| {
            let cfg = FleetConfig { threads, shard_size, ..FleetConfig::default() };
            let out = run_dynamic_plan(&plan, &cfg).unwrap();
            serde_json::to_string_pretty(&out.report(&plan)).unwrap()
        };
        let base = render(1, 2);
        assert_eq!(base, render(2, 2));
        assert_eq!(base, render(4, 1));
        assert_eq!(base, render(3, 64));
    }
}
