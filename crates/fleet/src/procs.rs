//! Multi-process sharding: split a [`TrialPlan`] into per-process
//! shard ranges, run each range in a separate worker process of the
//! `fleet` binary, and merge the results.
//!
//! The protocol is file-based and crash-tolerant:
//!
//! 1. The coordinator writes the exact plan to `<dir>/plan.json`
//!    (job order matters — trial seeds depend on job position).
//! 2. Each worker `k` runs `fleet worker --plan plan.json --shard k/N
//!    --store <dir>/shard-k`: it executes only the global trials in
//!    [`shard_bounds`]`(total, k, N)` and records every result in its
//!    own store.
//! 3. The coordinator merges the shard stores into `<dir>/merged` and
//!    *replays the full plan warm* against the merged store.
//!
//! The replay is what makes the output **byte-identical** to a
//! single-process run: cached reports round-trip exactly and are
//! collected in the same global trial order, so there is no
//! merge-order floating-point question at all. It also makes the
//! scheme self-healing — if a worker died and left holes, the replay
//! simply executes the missing trials itself.
//!
//! # Supervision
//!
//! The coordinator is a real supervisor, not a blocking `wait()` loop:
//! it polls every worker, enforces a per-attempt wait timeout (a wedged
//! worker is killed, never silently waited on forever), classifies
//! failures as [`WorkerStatus`] values, and retries a failed worker up
//! to [`ProcsConfig::max_retries`] times with a deterministic
//! exponential backoff schedule. A retried worker re-runs the same
//! shard command against the same shard store, so the store cache makes
//! it execute **only its unfilled trial range**. When retries are
//! exhausted, [`ProcsConfig::degrade`] chooses between failing the run
//! with [`FleetError::Worker`] and completing it anyway — the warm
//! replay heals the dead worker's holes by executing those trials in
//! the coordinator. Either way the final bytes equal a fault-free run.

use crate::error::{FleetError, WorkerStatus};
use crate::planio::{plan_from_json, plan_to_json};
use crate::run::{run_plan_cached, shard_bounds, FleetConfig, FleetOutput};
use crate::sink::TrialSink;
use crate::spec::TrialPlan;
use sleepy_store::Store;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// How [`run_plan_sharded_procs`] launches and supervises its workers.
#[derive(Debug, Clone)]
pub struct ProcsConfig {
    /// Path of the `fleet` binary to spawn workers from.
    pub fleet_bin: PathBuf,
    /// Number of worker processes.
    pub procs: usize,
    /// Worker threads per process (0 = all cores).
    pub threads_per_proc: usize,
    /// Ask each worker to write a Chrome trace
    /// ([`shard_trace_path`]) and import the traces onto the
    /// coordinator's timeline after the workers exit.
    pub worker_trace: bool,
    /// Kill a worker attempt that has not exited after this many
    /// seconds and classify it [`WorkerStatus::TimedOut`]. `None`
    /// waits forever (the pre-supervision behavior).
    pub wait_timeout_secs: Option<u64>,
    /// How many times a failed worker is re-spawned before the
    /// supervisor gives up on its shard.
    pub max_retries: u32,
    /// Base of the deterministic backoff schedule: retry `r` (0-based)
    /// waits `backoff_base_ms << r` milliseconds before re-spawning.
    pub backoff_base_ms: u64,
    /// After retries are exhausted: `true` completes the plan anyway
    /// (the dead worker's unfilled range is healed by the warm
    /// replay); `false` aborts with [`FleetError::Worker`].
    pub degrade: bool,
    /// Test-only fault injection: pass `--chaos-kill <marker>` to this
    /// worker index, making its *first* attempt execute only half its
    /// shard and then die with a nonzero exit (the marker file keeps
    /// the retry honest).
    pub chaos_kill: Option<usize>,
    /// Test-only fault injection: pass `--chaos-wedge <marker>` to
    /// this worker index, making its *first* attempt hang forever —
    /// exercises the wait-timeout kill path with a real child process.
    pub chaos_wedge: Option<usize>,
}

impl ProcsConfig {
    /// A config spawning `procs` workers from `fleet_bin`, one thread
    /// each (the usual shape: processes are the parallelism axis), with
    /// supervision defaults: a 10-minute wait timeout, 2 retries on a
    /// 100 ms exponential backoff, no degradation, no fault injection.
    pub fn new(fleet_bin: impl Into<PathBuf>, procs: usize) -> Self {
        ProcsConfig {
            fleet_bin: fleet_bin.into(),
            procs,
            threads_per_proc: 1,
            worker_trace: false,
            wait_timeout_secs: Some(600),
            max_retries: 2,
            backoff_base_ms: 100,
            degrade: false,
            chaos_kill: None,
            chaos_wedge: None,
        }
    }
}

/// One classified worker failure the supervisor observed (and, unless
/// it was the final attempt, recovered from).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerFailure {
    /// The worker index.
    pub worker: usize,
    /// Which attempt failed (0 = the initial spawn).
    pub attempt: u32,
    /// The classified failure.
    pub status: WorkerStatus,
    /// The deterministic backoff delay slept before the retry that
    /// followed, or `None` when no retry followed (retries exhausted).
    pub backoff_ms: Option<u64>,
}

/// What the supervisor observed across a sharded run — the audit trail
/// `fleet chaos` asserts against (a killed worker really was retried,
/// with backoff, and the run still produced oracle bytes).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SupervisionReport {
    /// Worker count of the run.
    pub workers: usize,
    /// Every classified failure, in (worker, attempt) order.
    pub failures: Vec<WorkerFailure>,
    /// Total re-spawns across all workers.
    pub retries: u64,
    /// Workers whose shard was abandoned to the warm replay
    /// (nonempty only in [`ProcsConfig::degrade`] mode).
    pub degraded: Vec<usize>,
}

/// The shard-store directory of worker `index` under `dir`.
pub fn shard_store_dir(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}"))
}

/// The trace file worker `index` writes under `dir` when
/// [`ProcsConfig::worker_trace`] is set. Beside the shard store, never
/// inside it (the store scans its directory for segment files).
pub fn shard_trace_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}.trace.json"))
}

/// The merged-store directory under `dir`.
pub fn merged_store_dir(dir: &Path) -> PathBuf {
    dir.join("merged")
}

/// Writes the plan file workers read, returning its path.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_plan_file(dir: &Path, plan: &TrialPlan) -> Result<PathBuf, FleetError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("plan.json");
    std::fs::write(&path, format!("{}\n", plan_to_json(plan)))?;
    Ok(path)
}

/// Reads a plan file written by [`write_plan_file`] (or `--emit-plan`).
///
/// # Errors
///
/// I/O failures or a malformed plan document.
pub fn read_plan_file(path: &Path) -> Result<TrialPlan, FleetError> {
    plan_from_json(&std::fs::read_to_string(path)?)
}

/// The chaos marker file for worker `index` under `dir` (shared by
/// `--chaos-kill` and `--chaos-wedge`: a worker misbehaves only while
/// its marker does not exist yet, so exactly the first attempt fails).
pub fn chaos_marker_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("chaos-{index}.marker"))
}

/// A worker slot as tracked by the supervisor's poll loop.
struct WorkerSlot {
    /// The live child of the current attempt, if one is running.
    child: Option<Child>,
    /// 0-based attempt number of the current/most recent spawn.
    attempt: u32,
    /// Absolute deadline of the current attempt, when timeouts are on.
    deadline: Option<Instant>,
    /// A failure of the current attempt awaiting retry-or-abort
    /// handling (spawn failures land here: there is no child to poll).
    pending: Option<WorkerStatus>,
    /// Set once the worker's shard needs no more attempts (success, or
    /// abandoned to degradation).
    settled: bool,
}

/// Builds the shard command for worker `k` of `procs_config.procs`.
fn worker_command(procs_config: &ProcsConfig, plan_path: &Path, dir: &Path, k: usize) -> Command {
    let mut cmd = Command::new(&procs_config.fleet_bin);
    cmd.arg("worker")
        .arg("--plan")
        .arg(plan_path)
        .arg("--shard")
        .arg(format!("{k}/{}", procs_config.procs))
        .arg("--store")
        .arg(shard_store_dir(dir, k))
        .arg("--threads")
        .arg(procs_config.threads_per_proc.to_string())
        .arg("--no-progress");
    if procs_config.worker_trace {
        cmd.arg("--trace-out").arg(shard_trace_path(dir, k));
    }
    if procs_config.chaos_kill == Some(k) {
        cmd.arg("--chaos-kill").arg(chaos_marker_path(dir, k));
    }
    if procs_config.chaos_wedge == Some(k) {
        cmd.arg("--chaos-wedge").arg(chaos_marker_path(dir, k));
    }
    cmd.stdin(Stdio::null()).stdout(Stdio::null());
    cmd
}

/// Kills and reaps every still-running child (abort path: the run is
/// failing, orphaned workers must not keep computing).
fn kill_all(slots: &mut [WorkerSlot]) {
    for slot in slots.iter_mut() {
        if let Some(child) = slot.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
        slot.child = None;
    }
}

/// Runs `plan` across [`ProcsConfig::procs`] worker processes and
/// merges their stores, returning output byte-identical to a
/// single-process [`run_plan`](crate::run_plan) of the same plan.
/// Sinks receive every trial in global order during the warm replay.
/// On return, `<dir>/merged` holds the union store (reusable as a warm
/// cache for later runs) and the [`FleetOutput::cache`] stats show how
/// many trials the replay found already computed.
///
/// This is the plain entry point; it discards the supervision audit
/// trail. Use [`run_plan_sharded_procs_supervised`] to also observe
/// which workers failed, how they were classified, and what recovered
/// them.
///
/// # Errors
///
/// Worker spawn/exit failures (after retries), store failures, or any
/// replay error.
pub fn run_plan_sharded_procs(
    plan: &TrialPlan,
    config: &FleetConfig,
    procs_config: &ProcsConfig,
    dir: &Path,
    sinks: &mut [&mut dyn TrialSink],
) -> Result<FleetOutput, FleetError> {
    run_plan_sharded_procs_supervised(plan, config, procs_config, dir, sinks).map(|(out, _)| out)
}

/// [`run_plan_sharded_procs`] plus the supervisor's
/// [`SupervisionReport`]: every classified worker failure, the retry
/// count, and which shards (if any) were abandoned to the warm replay
/// under [`ProcsConfig::degrade`].
///
/// # Errors
///
/// [`FleetError::Worker`] when a worker exhausts its retries and
/// degradation is off; otherwise store failures or any replay error.
pub fn run_plan_sharded_procs_supervised(
    plan: &TrialPlan,
    config: &FleetConfig,
    procs_config: &ProcsConfig,
    dir: &Path,
    sinks: &mut [&mut dyn TrialSink],
) -> Result<(FleetOutput, SupervisionReport), FleetError> {
    if procs_config.procs == 0 {
        return Err(FleetError::Config("need at least one worker process".into()));
    }
    let plan_path = write_plan_file(dir, plan)?;
    let total = plan.total_trials() as usize;
    let mut report = SupervisionReport { workers: procs_config.procs, ..Default::default() };

    // Supervision timeouts and backoff gate *whether a worker is
    // retried*, never what any worker computes: the artifact bytes are
    // pinned by the warm replay regardless of timing.
    let deadline_from_now = |timeout: Option<u64>| {
        // sleepy-lint: allow(no-wall-clock): supervision deadlines gate retries, never artifact bytes
        timeout.map(|s| Instant::now() + Duration::from_secs(s))
    };

    let spawn_failed = |k: usize, e: &std::io::Error| {
        WorkerStatus::SpawnFailed(format!(
            "cannot spawn worker {k} from {}: {e}",
            procs_config.fleet_bin.display()
        ))
    };

    let mut slots: Vec<WorkerSlot> = Vec::with_capacity(procs_config.procs);
    {
        let _span = sleepy_telemetry::span("procs", "spawn-workers");
        for k in 0..procs_config.procs {
            // A spawn failure is classified and retried by the poll
            // loop like any other worker failure, not an immediate
            // abort.
            let (child, pending) = match worker_command(procs_config, &plan_path, dir, k).spawn() {
                Ok(child) => (Some(child), None),
                Err(e) => (None, Some(spawn_failed(k, &e))),
            };
            slots.push(WorkerSlot {
                child,
                attempt: 0,
                deadline: deadline_from_now(procs_config.wait_timeout_secs),
                pending,
                settled: false,
            });
        }
    }

    {
        let _span = sleepy_telemetry::span("procs", "supervise-workers");
        loop {
            let mut all_settled = true;
            for k in 0..slots.len() {
                if slots[k].settled {
                    continue;
                }
                all_settled = false;

                // Classify the current attempt: still running, exited
                // clean, or failed (with a WorkerStatus saying how).
                let deadline = slots[k].deadline;
                let failed_status: Option<WorkerStatus> = match slots[k].pending.take() {
                    Some(status) => Some(status),
                    None => match slots[k].child.as_mut() {
                        None => None,
                        Some(child) => match child.try_wait() {
                            Ok(Some(status)) if status.success() => {
                                slots[k].child = None;
                                slots[k].settled = true;
                                continue;
                            }
                            Ok(Some(status)) => {
                                slots[k].child = None;
                                Some(WorkerStatus::Exited { code: status.code() })
                            }
                            Ok(None) => {
                                // sleepy-lint: allow(no-wall-clock): timeout check gates retries, never artifact bytes
                                let now = Instant::now();
                                if deadline.is_some_and(|d| now >= d) {
                                    let _ = child.kill();
                                    let _ = child.wait();
                                    slots[k].child = None;
                                    Some(WorkerStatus::TimedOut {
                                        timeout_secs: procs_config.wait_timeout_secs.unwrap_or(0),
                                    })
                                } else {
                                    None
                                }
                            }
                            Err(e) => {
                                let _ = child.kill();
                                let _ = child.wait();
                                slots[k].child = None;
                                Some(WorkerStatus::WaitFailed(e.to_string()))
                            }
                        },
                    },
                };

                let Some(status) = failed_status else { continue };
                let attempt = slots[k].attempt;

                if attempt < procs_config.max_retries {
                    // Deterministic exponential backoff, then re-spawn
                    // over the same shard store: the cache makes the
                    // retry execute only the unfilled trial range.
                    let backoff_ms =
                        procs_config.backoff_base_ms.saturating_mul(1u64 << attempt.min(20));
                    record_failure(&mut report, k, attempt, status, Some(backoff_ms));
                    std::thread::sleep(Duration::from_millis(backoff_ms));
                    report.retries += 1;
                    slots[k].attempt = attempt + 1;
                    match worker_command(procs_config, &plan_path, dir, k).spawn() {
                        Ok(child) => {
                            slots[k].child = Some(child);
                            slots[k].deadline = deadline_from_now(procs_config.wait_timeout_secs);
                        }
                        Err(e) => {
                            // Handled as this attempt's failure on the
                            // next sweep.
                            slots[k].child = None;
                            slots[k].pending = Some(spawn_failed(k, &e));
                        }
                    }
                } else {
                    record_failure(&mut report, k, attempt, status.clone(), None);
                    if procs_config.degrade {
                        // Abandon the shard: the warm replay will
                        // execute its unfilled trials in-process.
                        slots[k].settled = true;
                        report.degraded.push(k);
                    } else {
                        kill_all(&mut slots);
                        return Err(FleetError::Worker {
                            id: k,
                            range: shard_bounds(total, k, procs_config.procs),
                            status,
                        });
                    }
                }
            }
            if all_settled {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    report.failures.sort_by_key(|f| (f.worker, f.attempt));

    if procs_config.worker_trace && sleepy_telemetry::tracing() {
        // Best-effort: a worker that produced results but no readable
        // trace only degrades the timeline, not the run.
        for k in 0..procs_config.procs {
            if let Err(e) = sleepy_telemetry::import_trace_file(shard_trace_path(dir, k)) {
                eprintln!("fleet: warning: worker {k} trace not imported: {e}");
            }
        }
    }

    let mut merged = Store::open(merged_store_dir(dir))?;
    {
        let _span = sleepy_telemetry::span("procs", "merge-stores");
        for k in 0..procs_config.procs {
            // A degraded worker may have no store at all; Store::open
            // creates an empty one, which merges as a no-op and leaves
            // the holes to the warm replay.
            let shard = Store::open(shard_store_dir(dir, k))?;
            merged.merge_from(&shard)?;
        }
    }
    let output = run_plan_cached(plan, config, sinks, Some(&mut merged), true)?;
    Ok((output, report))
}

/// Records a classified failure (helper keeping the poll loop legible).
fn record_failure(
    report: &mut SupervisionReport,
    worker: usize,
    attempt: u32,
    status: WorkerStatus,
    backoff_ms: Option<u64>,
) {
    report.failures.push(WorkerFailure { worker, attempt, status, backoff_ms });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AlgoKind, Execution};
    use crate::run::shard_bounds;
    use sleepy_graph::GraphFamily;

    #[test]
    fn shard_bounds_partition_exactly() {
        for total in [0usize, 1, 7, 100, 101] {
            for count in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for k in 0..count {
                    let (lo, hi) = shard_bounds(total, k, count);
                    assert_eq!(lo, covered, "shards must be contiguous");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, total, "shards must cover everything");
                // Balanced to within one trial.
                let sizes: Vec<usize> = (0..count)
                    .map(|k| {
                        let (lo, hi) = shard_bounds(total, k, count);
                        hi - lo
                    })
                    .collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "{sizes:?}");
            }
        }
    }

    #[test]
    fn plan_file_round_trips() {
        let plan = TrialPlan::sweep(
            &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
            &[48],
            &[AlgoKind::SleepingMis],
            3,
            0xBEEF,
            Execution::Auto,
        );
        let dir = std::env::temp_dir().join(format!("fleet-planio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_plan_file(&dir, &plan).unwrap();
        let back = read_plan_file(&path).unwrap();
        assert_eq!(back.base_seed, plan.base_seed);
        assert_eq!(back.jobs.len(), plan.jobs.len());
        for (a, b) in plan.jobs.iter().zip(&back.jobs) {
            assert_eq!(a.key(plan.base_seed), b.key(back.base_seed));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_procs_is_a_config_error() {
        let plan = TrialPlan::new(1);
        let cfg = FleetConfig::default();
        let procs = ProcsConfig::new("fleet", 0);
        let dir = std::env::temp_dir().join("fleet-procs-zero");
        assert!(matches!(
            run_plan_sharded_procs(&plan, &cfg, &procs, &dir, &mut []),
            Err(FleetError::Config(_))
        ));
    }
}
