//! Multi-process sharding: split a [`TrialPlan`] into per-process
//! shard ranges, run each range in a separate worker process of the
//! `fleet` binary, and merge the results.
//!
//! The protocol is file-based and crash-tolerant:
//!
//! 1. The coordinator writes the exact plan to `<dir>/plan.json`
//!    (job order matters — trial seeds depend on job position).
//! 2. Each worker `k` runs `fleet worker --plan plan.json --shard k/N
//!    --store <dir>/shard-k`: it executes only the global trials in
//!    [`shard_bounds`](crate::shard_bounds)`(total, k, N)` and records every result in its
//!    own store.
//! 3. The coordinator merges the shard stores into `<dir>/merged` and
//!    *replays the full plan warm* against the merged store.
//!
//! The replay is what makes the output **byte-identical** to a
//! single-process run: cached reports round-trip exactly and are
//! collected in the same global trial order, so there is no
//! merge-order floating-point question at all. It also makes the
//! scheme self-healing — if a worker died and left holes, the replay
//! simply executes the missing trials itself.

use crate::error::FleetError;
use crate::planio::{plan_from_json, plan_to_json};
use crate::run::{run_plan_cached, FleetConfig, FleetOutput};
use crate::sink::TrialSink;
use crate::spec::TrialPlan;
use sleepy_store::Store;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// How [`run_plan_sharded_procs`] launches its workers.
#[derive(Debug, Clone)]
pub struct ProcsConfig {
    /// Path of the `fleet` binary to spawn workers from.
    pub fleet_bin: PathBuf,
    /// Number of worker processes.
    pub procs: usize,
    /// Worker threads per process (0 = all cores).
    pub threads_per_proc: usize,
    /// Ask each worker to write a Chrome trace
    /// ([`shard_trace_path`]) and import the traces onto the
    /// coordinator's timeline after the workers exit.
    pub worker_trace: bool,
}

impl ProcsConfig {
    /// A config spawning `procs` workers from `fleet_bin`, one thread
    /// each (the usual shape: processes are the parallelism axis).
    pub fn new(fleet_bin: impl Into<PathBuf>, procs: usize) -> Self {
        ProcsConfig { fleet_bin: fleet_bin.into(), procs, threads_per_proc: 1, worker_trace: false }
    }
}

/// The shard-store directory of worker `index` under `dir`.
pub fn shard_store_dir(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}"))
}

/// The trace file worker `index` writes under `dir` when
/// [`ProcsConfig::worker_trace`] is set. Beside the shard store, never
/// inside it (the store scans its directory for segment files).
pub fn shard_trace_path(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("shard-{index}.trace.json"))
}

/// The merged-store directory under `dir`.
pub fn merged_store_dir(dir: &Path) -> PathBuf {
    dir.join("merged")
}

/// Writes the plan file workers read, returning its path.
///
/// # Errors
///
/// Filesystem failures.
pub fn write_plan_file(dir: &Path, plan: &TrialPlan) -> Result<PathBuf, FleetError> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("plan.json");
    std::fs::write(&path, format!("{}\n", plan_to_json(plan)))?;
    Ok(path)
}

/// Reads a plan file written by [`write_plan_file`] (or `--emit-plan`).
///
/// # Errors
///
/// I/O failures or a malformed plan document.
pub fn read_plan_file(path: &Path) -> Result<TrialPlan, FleetError> {
    plan_from_json(&std::fs::read_to_string(path)?)
}

/// Runs `plan` across [`ProcsConfig::procs`] worker processes and
/// merges their stores, returning output byte-identical to a
/// single-process [`run_plan`](crate::run_plan) of the same plan.
/// Sinks receive every trial in global order during the warm replay.
/// On return, `<dir>/merged` holds the union store (reusable as a warm
/// cache for later runs) and the [`FleetOutput::cache`] stats show how
/// many trials the replay found already computed.
///
/// # Errors
///
/// Worker spawn/exit failures, store failures, or any replay error.
pub fn run_plan_sharded_procs(
    plan: &TrialPlan,
    config: &FleetConfig,
    procs_config: &ProcsConfig,
    dir: &Path,
    sinks: &mut [&mut dyn TrialSink],
) -> Result<FleetOutput, FleetError> {
    if procs_config.procs == 0 {
        return Err(FleetError::Config("need at least one worker process".into()));
    }
    let plan_path = write_plan_file(dir, plan)?;

    let mut children = Vec::with_capacity(procs_config.procs);
    {
        let _span = sleepy_telemetry::span("procs", "spawn-workers");
        for k in 0..procs_config.procs {
            let mut cmd = Command::new(&procs_config.fleet_bin);
            cmd.arg("worker")
                .arg("--plan")
                .arg(&plan_path)
                .arg("--shard")
                .arg(format!("{k}/{}", procs_config.procs))
                .arg("--store")
                .arg(shard_store_dir(dir, k))
                .arg("--threads")
                .arg(procs_config.threads_per_proc.to_string())
                .arg("--no-progress");
            if procs_config.worker_trace {
                cmd.arg("--trace-out").arg(shard_trace_path(dir, k));
            }
            let child = cmd.stdin(Stdio::null()).stdout(Stdio::null()).spawn().map_err(|e| {
                FleetError::Config(format!(
                    "cannot spawn worker {k} from {}: {e}",
                    procs_config.fleet_bin.display()
                ))
            })?;
            children.push((k, child));
        }
    }
    for (k, mut child) in children {
        let _span = sleepy_telemetry::span!("procs", "wait-worker", {"worker": k});
        let status = child
            .wait()
            .map_err(|e| FleetError::Config(format!("waiting for worker {k} failed: {e}")))?;
        if !status.success() {
            return Err(FleetError::Config(format!("worker {k} exited with {status}")));
        }
    }
    if procs_config.worker_trace && sleepy_telemetry::tracing() {
        // Best-effort: a worker that produced results but no readable
        // trace only degrades the timeline, not the run.
        for k in 0..procs_config.procs {
            if let Err(e) = sleepy_telemetry::import_trace_file(shard_trace_path(dir, k)) {
                eprintln!("fleet: warning: worker {k} trace not imported: {e}");
            }
        }
    }

    let mut merged = Store::open(merged_store_dir(dir))?;
    {
        let _span = sleepy_telemetry::span("procs", "merge-stores");
        for k in 0..procs_config.procs {
            let shard = Store::open(shard_store_dir(dir, k))?;
            merged.merge_from(&shard)?;
        }
    }
    run_plan_cached(plan, config, sinks, Some(&mut merged), true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AlgoKind, Execution};
    use crate::run::shard_bounds;
    use sleepy_graph::GraphFamily;

    #[test]
    fn shard_bounds_partition_exactly() {
        for total in [0usize, 1, 7, 100, 101] {
            for count in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for k in 0..count {
                    let (lo, hi) = shard_bounds(total, k, count);
                    assert_eq!(lo, covered, "shards must be contiguous");
                    assert!(hi >= lo);
                    covered = hi;
                }
                assert_eq!(covered, total, "shards must cover everything");
                // Balanced to within one trial.
                let sizes: Vec<usize> = (0..count)
                    .map(|k| {
                        let (lo, hi) = shard_bounds(total, k, count);
                        hi - lo
                    })
                    .collect();
                let min = sizes.iter().min().unwrap();
                let max = sizes.iter().max().unwrap();
                assert!(max - min <= 1, "{sizes:?}");
            }
        }
    }

    #[test]
    fn plan_file_round_trips() {
        let plan = TrialPlan::sweep(
            &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
            &[48],
            &[AlgoKind::SleepingMis],
            3,
            0xBEEF,
            Execution::Auto,
        );
        let dir = std::env::temp_dir().join(format!("fleet-planio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_plan_file(&dir, &plan).unwrap();
        let back = read_plan_file(&path).unwrap();
        assert_eq!(back.base_seed, plan.base_seed);
        assert_eq!(back.jobs.len(), plan.jobs.len());
        for (a, b) in plan.jobs.iter().zip(&back.jobs) {
            assert_eq!(a.key(plan.base_seed), b.key(back.base_seed));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn zero_procs_is_a_config_error() {
        let plan = TrialPlan::new(1);
        let cfg = FleetConfig::default();
        let procs = ProcsConfig::new("fleet", 0);
        let dir = std::env::temp_dir().join("fleet-procs-zero");
        assert!(matches!(
            run_plan_sharded_procs(&plan, &cfg, &procs, &dir, &mut []),
            Err(FleetError::Config(_))
        ));
    }
}
