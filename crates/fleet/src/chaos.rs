//! The seeded chaos matrix behind `fleet chaos`: drive every fault
//! surface the runtime claims to survive — worker crashes, wedged
//! workers, corrupted stores, lossy/partitioned/crashing networks —
//! and assert the recovery invariants end-to-end:
//!
//! * **Infrastructure faults are invisible.** A run that lost a worker
//!   (crash or wedge) or a store segment (truncation, bit rot, torn
//!   manifest) must produce trials/aggregate artifacts *byte-identical*
//!   to a fault-free oracle run of the same plan: recovery means the
//!   fault never happened, not "close enough".
//! * **Engine faults are reproducible.** A fault plan deliberately
//!   *changes* results (messages are lost), so the invariant is
//!   determinism: recording the same faulted run twice yields identical
//!   tapes, and the tapes replay.
//! * **Failures are really exercised.** The kill leg asserts the
//!   supervisor observed the injected nonzero exit and retried; the
//!   store legs assert the quarantine actually re-executed trials.
//!   A chaos run where nothing failed proves nothing.
//!
//! Everything is seeded, so a failing matrix is replayable exactly.

use crate::error::FleetError;
use crate::measure::{AlgoKind, Execution};
use crate::procs::{run_plan_sharded_procs_supervised, ProcsConfig, SupervisionReport};
use crate::run::{run_plan_cached, FleetConfig, FleetOutput};
use crate::sink::{write_aggregate_json, JsonlSink};
use crate::spec::TrialPlan;
use crate::tape;
use crate::WorkerStatus;
use sleepy_graph::GraphFamily;
use sleepy_net::{CrashWindow, EngineConfig, FaultPlan};
use sleepy_store::{Store, StoreFault, StoreFaultInjector};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Parameters of one chaos matrix run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The `fleet` binary to spawn workers from (the kill/wedge legs
    /// run real child processes).
    pub fleet_bin: PathBuf,
    /// Scratch directory for stores, plans, and shard outputs.
    pub dir: PathBuf,
    /// Master seed: plan seeds, fault seeds, and tape seeds all derive
    /// from it.
    pub seed: u64,
    /// Node count of the matrix workloads.
    pub n: usize,
    /// Trials per job.
    pub trials: usize,
    /// Worker processes for the supervision legs.
    pub procs: usize,
    /// Worker threads for in-process runs (0 = all cores).
    pub threads: usize,
    /// Wait timeout for the wedge leg, in seconds (kept small: the
    /// wedged attempt really sits out the whole window).
    pub wedge_timeout_secs: u64,
}

impl ChaosConfig {
    /// The CI shape: small plan, two workers, everything in seconds.
    pub fn smoke(fleet_bin: impl Into<PathBuf>, dir: impl Into<PathBuf>) -> Self {
        ChaosConfig {
            fleet_bin: fleet_bin.into(),
            dir: dir.into(),
            seed: 0xC4A05,
            n: 32,
            trials: 2,
            procs: 2,
            threads: 1,
            wedge_timeout_secs: 2,
        }
    }

    /// The default shape: a somewhat larger plan and three workers.
    pub fn full(fleet_bin: impl Into<PathBuf>, dir: impl Into<PathBuf>) -> Self {
        ChaosConfig {
            fleet_bin: fleet_bin.into(),
            dir: dir.into(),
            seed: 0xC4A05,
            n: 48,
            trials: 4,
            procs: 3,
            threads: 0,
            wedge_timeout_secs: 3,
        }
    }
}

/// One leg of the matrix: a fault class plus the verdict on its
/// recovery invariant.
#[derive(Debug, Clone)]
pub struct ChaosLeg {
    /// Leg name (`worker-kill`, `store-truncate`, ...).
    pub name: &'static str,
    /// Whether every assertion of the leg held.
    pub passed: bool,
    /// Human-readable evidence (what was injected, what recovered) or
    /// the first failed assertion.
    pub detail: String,
}

/// The full matrix outcome.
#[derive(Debug, Clone, Default)]
pub struct ChaosReport {
    /// Every leg, in execution order.
    pub legs: Vec<ChaosLeg>,
}

impl ChaosReport {
    /// Whether every leg passed.
    pub fn passed(&self) -> bool {
        self.legs.iter().all(|l| l.passed)
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for leg in &self.legs {
            writeln!(
                f,
                "{} {}: {}",
                if leg.passed { "ok  " } else { "FAIL" },
                leg.name,
                leg.detail
            )?;
        }
        write!(
            f,
            "chaos: {}/{} legs passed",
            self.legs.iter().filter(|l| l.passed).count(),
            self.legs.len()
        )
    }
}

/// The trials.jsonl and aggregates.json bytes of one run — the
/// byte-identity oracle currency.
struct Artifacts {
    trials: Vec<u8>,
    aggregates: Vec<u8>,
    output: FleetOutput,
}

/// Runs `plan` in-process, capturing artifacts (optionally against a
/// store).
fn run_artifacts(
    plan: &TrialPlan,
    config: &FleetConfig,
    store: Option<&mut Store>,
    read_cache: bool,
) -> Result<Artifacts, FleetError> {
    let mut trials = JsonlSink::new(Vec::new());
    let output = run_plan_cached(plan, config, &mut [&mut trials], store, read_cache)?;
    let mut aggregates = Vec::new();
    write_aggregate_json(&mut aggregates, &output.report(plan))?;
    Ok(Artifacts { trials: trials.into_inner(), aggregates, output })
}

/// The store's live records as a key → compact-payload map (stamps are
/// wall-clock metadata and excluded on purpose).
fn store_payloads(store: &Store) -> BTreeMap<String, String> {
    store.entries().map(|e| (e.key.clone(), serde::value::to_compact_string(&e.payload))).collect()
}

/// Asserts `got` equals `want` byte-for-byte, naming the artifact.
fn expect_bytes(what: &str, got: &[u8], want: &[u8]) -> Result<(), String> {
    if got == want {
        Ok(())
    } else {
        let at = got.iter().zip(want).take_while(|(a, b)| a == b).count();
        Err(format!(
            "{what} diverged from the oracle at byte {at} ({} vs {} bytes)",
            got.len(),
            want.len()
        ))
    }
}

/// Runs the full matrix. Infrastructure errors (a scratch directory
/// that cannot be created, a plan that cannot run at all) surface as
/// `Err`; *invariant violations* land as failed legs in the report.
///
/// # Errors
///
/// Setup failures only — see above.
pub fn run_chaos_matrix(cfg: &ChaosConfig) -> Result<ChaosReport, FleetError> {
    std::fs::create_dir_all(&cfg.dir)?;
    let plan = matrix_plan(cfg);
    let fleet_config =
        FleetConfig { threads: cfg.threads, shard_size: 8, max_in_flight: 0, progress: false };

    // The fault-free oracle every infrastructure leg must reproduce.
    let oracle = run_artifacts(&plan, &fleet_config, None, false)?;

    let mut report = ChaosReport::default();
    let mut leg = |name: &'static str, result: Result<String, String>| match result {
        Ok(detail) => report.legs.push(ChaosLeg { name, passed: true, detail }),
        Err(detail) => report.legs.push(ChaosLeg { name, passed: false, detail }),
    };

    leg("worker-kill", kill_leg(cfg, &plan, &fleet_config, &oracle));
    leg("worker-wedge", wedge_leg(cfg, &plan, &fleet_config, &oracle));
    leg("store-truncate", store_leg(cfg, &plan, &fleet_config, &oracle, "truncate"));
    leg("store-bitflip", store_leg(cfg, &plan, &fleet_config, &oracle, "bitflip"));
    leg("store-manifest", store_leg(cfg, &plan, &fleet_config, &oracle, "manifest"));
    leg("engine-burst", tape_leg(cfg, "burst"));
    leg("engine-crash", tape_leg(cfg, "crash"));
    Ok(report)
}

/// The matrix plan: two families × two algorithms at the configured
/// size and trial count.
fn matrix_plan(cfg: &ChaosConfig) -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(6.0), GraphFamily::Tree],
        &[cfg.n],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        cfg.trials,
        cfg.seed,
        Execution::Auto,
    )
}

/// Shared tail of the two supervision legs: run supervised with the
/// given chaos injection, then assert oracle bytes and a nonempty
/// failure record.
fn supervised_leg(
    plan: &TrialPlan,
    fleet_config: &FleetConfig,
    procs_config: &ProcsConfig,
    dir: &std::path::Path,
    oracle: &Artifacts,
) -> Result<(Artifacts, SupervisionReport), String> {
    let mut trials = JsonlSink::new(Vec::new());
    let (output, sup) = run_plan_sharded_procs_supervised(
        plan,
        fleet_config,
        procs_config,
        dir,
        &mut [&mut trials],
    )
    .map_err(|e| format!("supervised run failed: {e}"))?;
    let mut aggregates = Vec::new();
    write_aggregate_json(&mut aggregates, &output.report(plan))
        .map_err(|e| format!("serializing aggregates: {e}"))?;
    let got = Artifacts { trials: trials.into_inner(), aggregates, output };
    expect_bytes("trials.jsonl", &got.trials, &oracle.trials)?;
    expect_bytes("aggregates.json", &got.aggregates, &oracle.aggregates)?;
    if sup.retries == 0 {
        return Err("supervisor recorded no retries — the fault was not injected".into());
    }
    Ok((got, sup))
}

/// Worker-kill leg: one worker dies with exit 17 halfway through its
/// shard; the supervisor must classify, retry, and still produce
/// oracle bytes.
fn kill_leg(
    cfg: &ChaosConfig,
    plan: &TrialPlan,
    fleet_config: &FleetConfig,
    oracle: &Artifacts,
) -> Result<String, String> {
    let victim = cfg.procs - 1;
    let mut procs_config = ProcsConfig::new(&cfg.fleet_bin, cfg.procs);
    procs_config.backoff_base_ms = 10;
    procs_config.chaos_kill = Some(victim);
    let dir = cfg.dir.join("kill");
    let (_, sup) = supervised_leg(plan, fleet_config, &procs_config, &dir, oracle)?;
    let seventeen = sup
        .failures
        .iter()
        .any(|f| f.worker == victim && f.status == WorkerStatus::Exited { code: Some(17) });
    if !seventeen {
        return Err(format!(
            "no Exited{{17}} failure recorded for worker {victim}: {:?}",
            sup.failures
        ));
    }
    Ok(format!(
        "worker {victim} killed mid-shard, {} retr{} healed it, bytes == oracle",
        sup.retries,
        if sup.retries == 1 { "y" } else { "ies" }
    ))
}

/// Worker-wedge leg: one worker hangs forever; the wait timeout must
/// kill it, the retry must complete the shard, bytes must equal the
/// oracle.
fn wedge_leg(
    cfg: &ChaosConfig,
    plan: &TrialPlan,
    fleet_config: &FleetConfig,
    oracle: &Artifacts,
) -> Result<String, String> {
    let victim = 0;
    let mut procs_config = ProcsConfig::new(&cfg.fleet_bin, cfg.procs);
    procs_config.backoff_base_ms = 10;
    procs_config.wait_timeout_secs = Some(cfg.wedge_timeout_secs);
    procs_config.chaos_wedge = Some(victim);
    let dir = cfg.dir.join("wedge");
    let (_, sup) = supervised_leg(plan, fleet_config, &procs_config, &dir, oracle)?;
    let timed_out = sup.failures.iter().any(|f| {
        f.worker == victim
            && f.status == WorkerStatus::TimedOut { timeout_secs: cfg.wedge_timeout_secs }
    });
    if !timed_out {
        return Err(format!(
            "no TimedOut failure recorded for worker {victim}: {:?}",
            sup.failures
        ));
    }
    Ok(format!(
        "worker {victim} wedged, killed after {}s, retry healed it, bytes == oracle",
        cfg.wedge_timeout_secs
    ))
}

/// Store leg: cold run into a store, corrupt it the named way, reopen
/// (quarantine), warm rerun — bytes and surviving payloads must equal
/// the fault-free run, and quarantined trials must actually re-execute.
fn store_leg(
    cfg: &ChaosConfig,
    plan: &TrialPlan,
    fleet_config: &FleetConfig,
    oracle: &Artifacts,
    kind: &'static str,
) -> Result<String, String> {
    let dir = cfg.dir.join(format!("store-{kind}"));
    let fe = |e: FleetError| format!("store leg setup: {e}");
    let mut store = Store::open(&dir).map_err(|e| fe(e.into()))?;
    let cold = run_artifacts(plan, fleet_config, Some(&mut store), true).map_err(fe)?;
    expect_bytes("cold trials.jsonl", &cold.trials, &oracle.trials)?;
    let before = store_payloads(&store);
    drop(store);

    let mut injector = StoreFaultInjector::new(&dir, cfg.seed ^ 0x5707E);
    let fault = match kind {
        "truncate" => injector.truncate_segment(),
        "bitflip" => injector.flip_bit(),
        _ => injector.tear_manifest(),
    }
    .map_err(|e| format!("injecting fault: {e}"))?;
    if fault == StoreFault::Nothing {
        return Err("nothing to corrupt — the cold run stored no segments".into());
    }

    let mut store = Store::open(&dir).map_err(|e| fe(e.into()))?;
    let warm = run_artifacts(plan, fleet_config, Some(&mut store), true).map_err(fe)?;
    expect_bytes("warm trials.jsonl", &warm.trials, &oracle.trials)?;
    expect_bytes("warm aggregates.json", &warm.aggregates, &oracle.aggregates)?;
    let after = store_payloads(&store);
    if after != before {
        return Err(format!(
            "healed store diverged: {} records before, {} after",
            before.len(),
            after.len()
        ));
    }
    let executed = warm.output.cache.executed;
    let hits = warm.output.cache.hits;
    match kind {
        // Data corruption quarantines at least one segment, so the
        // warm rerun must have re-executed something.
        "truncate" | "bitflip" if executed == 0 => {
            Err("corruption injected but the warm rerun re-executed nothing".into())
        }
        // A torn manifest loses no data: everything must be served.
        "manifest" if executed != 0 => {
            Err(format!("manifest tear should lose nothing, yet {executed} trials re-executed"))
        }
        _ => Ok(format!(
            "{fault}; rerun healed it ({executed} re-executed, {hits} served), bytes == oracle"
        )),
    }
}

/// Engine-fault leg: a fault plan deliberately changes results, so the
/// invariant is reproducibility — record the same faulted run twice,
/// require identical tape bytes, and require the tape to replay.
fn tape_leg(cfg: &ChaosConfig, kind: &'static str) -> Result<String, String> {
    let fault = match kind {
        "burst" => FaultPlan::Burst {
            p_enter: 0.1,
            p_exit: 0.3,
            loss_good: 0.02,
            loss_bad: 0.9,
            seed: cfg.seed ^ 0xB0B0,
        },
        _ => FaultPlan::Crash { windows: vec![CrashWindow { node: 0, start: 0, end: 50 }] },
    };
    let config = EngineConfig { fault, ..EngineConfig::default() };
    let record = || {
        tape::record_tape(AlgoKind::SleepingMis, GraphFamily::Star, cfg.n, cfg.seed, &config)
            .map(|t| t.to_jsonl())
            .map_err(|e| format!("recording {kind} tape: {e}"))
    };
    let first = record()?;
    let second = record()?;
    if first != second {
        return Err(format!("two recordings of the same {kind}-faulted run differ"));
    }
    let report = tape::replay_text(&format!("chaos-{kind}"), &first)
        .map_err(|e| format!("replaying {kind} tape: {e}"))?;
    Ok(format!("faulted run recorded twice identically ({} bytes); {report}", first.len()))
}
