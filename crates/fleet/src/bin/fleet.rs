//! The `fleet` CLI: run a declarative sweep of sleeping-model trials in
//! parallel with deterministic output.
//!
//! ```text
//! fleet --families gnp8,geo8,tree --sizes 256,512 --algos all \
//!       --trials 30 --threads 8 --out results/fleet
//! ```

#![forbid(unsafe_code)]

use sleepy_baselines::BaselineKind;
use sleepy_fleet::procs::read_plan_file;
use sleepy_fleet::sink::{
    write_aggregate_csv, write_aggregate_json, write_dynamic_aggregate_json, JsonlSink,
    PhaseJsonlSink,
};
use sleepy_fleet::{
    plan_to_json, run_dynamic_plan_cached, run_plan_cached, run_plan_shard, standard_families,
    AlgoKind, CacheStats, DynamicPlan, Execution, FleetConfig, FleetReport, RepairStrategy,
    TrialPlan, ALL_ALGOS, ALL_STRATEGIES, SLEEPING_ALGOS,
};
use sleepy_graph::{ChurnModel, ChurnSpec, GraphFamily};
use sleepy_stats::TextTable;
use sleepy_store::Store;
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "fleet — parallel batch execution of sleeping-model experiments

USAGE:
    fleet [OPTIONS]                 run a sweep (optionally cached)
    fleet worker [WORKER OPTIONS]   run one multi-process shard of a plan
    fleet merge  [MERGE OPTIONS]    merge shard stores + recover aggregates
    fleet gc     [GC OPTIONS]       expire and compact a result store
    fleet bench-churn [BENCH OPTIONS]
                                    measure incremental absorb throughput
                                    (in-place DynGraph vs CSR rebuild)
    fleet bench-wakes [WAKES OPTIONS]
                                    measure wake-alarm queue throughput
                                    (binary heap vs timer wheel), gated on
                                    bit-identical behavior of both queues
    fleet record-tape [TAPE OPTIONS]
                                    run one algorithm and write the engine
                                    input/output exchange as a versioned
                                    JSONL conformance tape
    fleet replay FILE... [--threads N]
                                    re-run committed tapes through the
                                    sans-io engine and fail on any
                                    divergence from the recorded outputs
    fleet trace-check FILE          validate a Chrome trace written by
                                    --trace-out (format, ts order, B/E pairs)
    fleet chaos [CHAOS OPTIONS]     seeded fault-injection matrix: kill and
                                    wedge real worker processes, corrupt the
                                    store on disk, fault the network — and
                                    fail unless every recovery is
                                    byte-identical to a fault-free oracle
    fleet lint [LINT OPTIONS]       determinism-zone static analysis of the
                                    workspace source (see `fleet lint --help`)

OPTIONS:
    --families LIST   comma-separated graph families (default: the standard
                      six-family suite). Names: gnp<d> (G(n,p), avg degree d),
                      gnplog<c>, regular<d>, geo<d>, ba<m>, tree, cycle, path,
                      star, clique, grid2d, hypercube
    --sizes LIST      comma-separated node counts (default: 256,512)
    --algos LIST      all | sleeping | comma-separated names among
                      alg1,alg2,luby-a,luby-b,greedy,ghaffari (default: all)
    --trials N        trials per (family, size, algorithm) job (default: 25)
    --seed S          base seed (default: 0x51EE9)
    --threads N       worker threads, 0 = all cores (default: 0)
    --shard-size N    trials per work-stealing shard (default: 16)
    --engine          force the message-passing engine for all algorithms
    --out DIR         write trials.jsonl, aggregates.json, aggregates.csv
                      (dynamic runs: phases.jsonl, dynamic_aggregates.json;
                      cached runs: also cache_stats.json)
    --store DIR       persistent result cache: serve already-computed
                      trials from DIR and record fresh ones into it.
                      Works for static AND --dynamic runs (records are
                      namespaced, so one directory serves both)
    --no-cache        with --store: re-execute everything (still records)
    --emit-plan FILE  write the exact plan as JSON (for `worker`/`merge`)
    --trace-out FILE  record every span and export a Chrome trace-event
                      file (open it in Perfetto or chrome://tracing).
                      Without it telemetry keeps aggregates only
    --round-timeline  with --out: after the measured run, replay every
                      trial through the protocol flight recorder and
                      write round_timeline.jsonl — one JSON object per
                      active round per trial (awake/sent/lost/decided/
                      slept counts), cross-checked against the trial's
                      own complexity accounting. Static runs only
    --protocol-trace FILE
                      replay trial 0 of every job with the full
                      protocol recorder and export a Chrome trace of
                      per-node awake spans plus per-round awake/sent
                      counters (static runs only; distinct from
                      --trace-out, which traces host wall-clock)
    --no-progress     suppress the stderr progress line and the
                      end-of-run telemetry table
    --dry-run         print the job list and exit
    --help            this text

Telemetry is side-channel only: trials.jsonl/phases.jsonl, aggregates,
and store records are byte-identical with or without --trace-out. With
--out, a run_metrics.json (counters, gauges, span aggregates) lands
next to the aggregates. The protocol recorder is likewise a pure side
channel: --round-timeline / --protocol-trace re-run the engine after
the measured run and never touch the measured artifacts, and
round_timeline.jsonl itself is byte-identical across --threads.

WORKER OPTIONS (run by the multi-process coordinator, or by hand):
    --plan FILE       plan.json written by --emit-plan (required)
    --shard K/N       this worker's contiguous trial range (required)
    --store DIR       this worker's result store (required)
    --trace-out FILE  write this worker's Chrome trace
    --threads/--shard-size/--no-progress as above
    --chaos-kill FILE   test-only: on the first attempt (FILE absent;
                      it is created as a marker) run only the first
                      half of the shard, then exit 17. With FILE
                      present, run normally — so the supervisor's
                      retry completes the shard
    --chaos-wedge FILE  test-only: on the first attempt hang forever
                      (exercises the supervisor's wait-timeout kill)

MERGE OPTIONS:
    --plan FILE       the plan the shards ran (required)
    --from DIRS       comma-separated shard store directories (required)
    --store DIR       merged store to create/extend (required)
    --out DIR         write aggregates.json/csv + cache_stats.json
    --trace-out FILE  write the merge+replay Chrome trace
    --trace-from LIST comma-separated worker trace files to merge onto
                      the same timeline (needs --trace-out; workers keep
                      their own pid/tid rows)
    --threads/--shard-size/--no-progress as above

GC OPTIONS:
    --store DIR       the store to compact (required)
    --ttl-secs N      drop entries older than N seconds (default: keep
                      everything, compact segments only)

CHAOS OPTIONS:
    --dir DIR         scratch directory for the matrix (default: a
                      fresh directory under the system temp dir)
    --seed S          master seed for plan, faults, and tapes
                      (default: 0xC4A05)
    --n N             node count of the matrix workloads (default: 48)
    --trials N        trials per job (default: 4)
    --procs N         worker processes for the supervision legs
                      (default: 3)
    --threads N       worker threads for in-process legs (default: 0)
    --smoke           CI shape: n=32, 2 trials, 2 procs, 1 thread,
                      2s wedge timeout

  Legs: worker-kill (child dies with exit 17 mid-shard; supervisor
  retries with backoff), worker-wedge (child hangs; wait timeout kills
  it), store-truncate / store-bitflip / store-manifest (on-disk
  corruption; quarantine + warm replay), engine-burst / engine-crash
  (fault plans recorded twice must be byte-identical tapes that
  replay). Exit status is nonzero unless every leg passes.

BENCH-CHURN OPTIONS:
    --sizes LIST      node counts to sweep (default: 1000,10000,100000)
    --events N        target update events per batch (default: 200)
    --seed S          base seed (default: 0xC4A2)
    --out FILE        machine-readable result JSON (default:
                      BENCH_churn.json; `-` skips the file)
    --smoke           tiny equivalence/no-rebuild check for CI: sizes
                      64,256, 60 events, no timing claims, no file
                      unless --out is given

  Every bench-churn run first absorbs the event batch through BOTH
  paths and fails unless their per-update records, phase-end graphs
  and memberships are bit-identical and the in-place path performed
  zero CSR rebuilds.

BENCH-WAKES OPTIONS:
    --sizes LIST      alarm-set sizes to sweep (default: 1000,10000,100000)
    --cycles N        sleep/wake cycles per alarm in a batch (default: 16)
    --seed S          base seed (default: 0xA1A3)
    --out FILE        machine-readable result JSON (default:
                      BENCH_wakes.json; `-` skips the file)
    --smoke           tiny equivalence check for CI: sizes 64,256,
                      4 cycles, no timing claims, no file unless
                      --out is given

  Every bench-wakes run first drives the SAME deterministic
  schedule/pop workload through both queue implementations and fails
  unless their pop sequences and deadlines are bit-identical, then
  runs Alg1 and Luby-B end-to-end under each queue and fails unless
  traces, metrics and outputs match byte-for-byte.

RECORD-TAPE OPTIONS:
    --algo NAME       one of alg1,alg2,luby-a,luby-b,greedy,ghaffari
                      (required)
    --family NAME     graph family as in --families (default: star)
    --n N             node count (default: 16)
    --seed S          trial seed: graph instance + algorithm coins
                      (default: 1)
    --loss P          message-loss probability (default: 0)
    --loss-seed S     loss-process seed (default: 0)
    --fault-burst E,X,G,B
                      Gilbert–Elliott burst loss: enter/exit
                      probabilities E and X, loss probability G in the
                      good state and B in the bad state
    --fault-seed S    seed of the burst-loss process (default: 0)
    --fault-crash NODE:START:END[,...]
                      crash windows: NODE is silent (sends and receives
                      nothing) for rounds [START, END)
    --fault-partition U-V:START:END[,...]
                      link partitions: edge {U,V} drops everything for
                      rounds [START, END)
    --max-rounds R    engine round cap; exceeding it records the error
                      in the tape (still a valid conformance artifact)
    --out FILE        tape path (default: tape_<algo>_n<N>_s<SEED>.jsonl)

  Replay needs no protocol code and no RNG: the tape carries the graph,
  the engine config and the full input stream, and pins the output
  stream by count + FNV-1a digest. `fleet replay` output is
  byte-identical regardless of --threads.

DYNAMIC (churn) WORKLOADS:
    --dynamic         run a dynamic plan: each trial's graph mutates
                      between phases and the MIS is recomputed or
                      repaired per phase
    --phases N        phases per trial, incl. the initial one (default 4)
    --edge-churn F    fraction of edges deleted AND inserted per phase
                      (default 0.05)
    --node-churn F    fraction of nodes departing AND arriving per phase
                      (default 0.02)
    --arrival-degree D  attachment edges per arriving node (default 3)
    --repair MODE     recompute | repair | incremental | both | all
                      (default both = recompute+repair; incremental
                      absorbs churn one update event at a time and
                      reports amortized per-update awake cost)
    --churn-model M   uniform | adversarial (default uniform); the
                      adversary aims deletions at current MIS members

Output is byte-identical for a fixed plan regardless of --threads and
--shard-size.";

fn parse_family(name: &str) -> Result<GraphFamily, String> {
    let tail = |prefix: &str| name[prefix.len()..].to_string();
    let num = |s: &str, what: &str| {
        s.parse::<f64>().map_err(|_| format!("bad {what} in family `{name}`"))
    };
    let int = |s: &str, what: &str| {
        s.parse::<usize>().map_err(|_| format!("bad {what} in family `{name}`"))
    };
    match name {
        "tree" => Ok(GraphFamily::Tree),
        "cycle" => Ok(GraphFamily::Cycle),
        "path" => Ok(GraphFamily::Path),
        "star" => Ok(GraphFamily::Star),
        "clique" => Ok(GraphFamily::Clique),
        "grid2d" => Ok(GraphFamily::Grid2d),
        "hypercube" => Ok(GraphFamily::Hypercube),
        _ if name.starts_with("gnplog") => {
            Ok(GraphFamily::GnpLogDensity(num(&tail("gnplog"), "density")?))
        }
        _ if name.starts_with("gnp") => Ok(GraphFamily::GnpAvgDeg(num(&tail("gnp"), "degree")?)),
        _ if name.starts_with("regular") => {
            Ok(GraphFamily::RandomRegular(int(&tail("regular"), "degree")?))
        }
        _ if name.starts_with("geo") => {
            Ok(GraphFamily::GeometricAvgDeg(num(&tail("geo"), "degree")?))
        }
        _ if name.starts_with("ba") => Ok(GraphFamily::BarabasiAlbert(int(&tail("ba"), "edges")?)),
        _ => Err(format!("unknown graph family `{name}` (try --help)")),
    }
}

fn parse_algos(spec: &str) -> Result<Vec<AlgoKind>, String> {
    match spec {
        "all" => Ok(ALL_ALGOS.to_vec()),
        "sleeping" => Ok(SLEEPING_ALGOS.to_vec()),
        _ => spec
            .split(',')
            .map(|name| match name {
                "alg1" | "sleeping-mis" => Ok(AlgoKind::SleepingMis),
                "alg2" | "fast-sleeping-mis" => Ok(AlgoKind::FastSleepingMis),
                "luby-a" => Ok(AlgoKind::Baseline(BaselineKind::LubyA)),
                "luby-b" => Ok(AlgoKind::Baseline(BaselineKind::LubyB)),
                "greedy" => Ok(AlgoKind::Baseline(BaselineKind::GreedyCrt)),
                "ghaffari" => Ok(AlgoKind::Baseline(BaselineKind::Ghaffari)),
                other => Err(format!("unknown algorithm `{other}` (try --help)")),
            })
            .collect(),
    }
}

struct Args {
    families: Vec<GraphFamily>,
    sizes: Vec<usize>,
    algos: Vec<AlgoKind>,
    trials: usize,
    seed: u64,
    threads: usize,
    shard_size: usize,
    execution: Execution,
    out: Option<PathBuf>,
    store: Option<PathBuf>,
    no_cache: bool,
    emit_plan: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    round_timeline: bool,
    protocol_trace: Option<PathBuf>,
    progress: bool,
    dry_run: bool,
    dynamic: bool,
    phases: usize,
    edge_churn: f64,
    node_churn: f64,
    arrival_degree: usize,
    churn_model: ChurnModel,
    strategies: Vec<RepairStrategy>,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        families: standard_families(),
        sizes: vec![256, 512],
        algos: ALL_ALGOS.to_vec(),
        trials: 25,
        seed: 0x51EE9,
        threads: 0,
        shard_size: 16,
        execution: Execution::Auto,
        out: None,
        store: None,
        no_cache: false,
        emit_plan: None,
        trace_out: None,
        round_timeline: false,
        protocol_trace: None,
        progress: true,
        dry_run: false,
        dynamic: false,
        phases: 4,
        edge_churn: 0.05,
        node_churn: 0.02,
        arrival_degree: 3,
        churn_model: ChurnModel::Uniform,
        strategies: vec![RepairStrategy::Recompute, RepairStrategy::Repair],
    };
    let mut churn_flags: Vec<&str> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--families" => {
                args.families =
                    value("--families")?.split(',').map(parse_family).collect::<Result<_, _>>()?;
            }
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|_| format!("bad size `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--algos" => args.algos = parse_algos(&value("--algos")?)?,
            "--trials" => {
                args.trials =
                    value("--trials")?.parse().map_err(|_| "bad --trials value".to_string())?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = parse_u64_maybe_hex(&v).ok_or(format!("bad --seed `{v}`"))?;
            }
            "--threads" => {
                args.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads value".to_string())?;
            }
            "--shard-size" => {
                args.shard_size = value("--shard-size")?
                    .parse()
                    .map_err(|_| "bad --shard-size value".to_string())?;
            }
            "--engine" => args.execution = Execution::ForceEngine,
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--store" => args.store = Some(PathBuf::from(value("--store")?)),
            "--no-cache" => args.no_cache = true,
            "--emit-plan" => args.emit_plan = Some(PathBuf::from(value("--emit-plan")?)),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--round-timeline" => args.round_timeline = true,
            "--protocol-trace" => {
                args.protocol_trace = Some(PathBuf::from(value("--protocol-trace")?));
            }
            "--no-progress" => args.progress = false,
            "--dry-run" => args.dry_run = true,
            "--dynamic" => args.dynamic = true,
            "--phases" => {
                churn_flags.push("--phases");
                args.phases =
                    value("--phases")?.parse().map_err(|_| "bad --phases value".to_string())?;
                if args.phases == 0 {
                    return Err("--phases must be >= 1".to_string());
                }
            }
            "--edge-churn" => {
                churn_flags.push("--edge-churn");
                args.edge_churn = value("--edge-churn")?
                    .parse()
                    .map_err(|_| "bad --edge-churn value".to_string())?;
            }
            "--node-churn" => {
                churn_flags.push("--node-churn");
                args.node_churn = value("--node-churn")?
                    .parse()
                    .map_err(|_| "bad --node-churn value".to_string())?;
            }
            "--arrival-degree" => {
                churn_flags.push("--arrival-degree");
                args.arrival_degree = value("--arrival-degree")?
                    .parse()
                    .map_err(|_| "bad --arrival-degree value".to_string())?;
            }
            "--repair" => {
                churn_flags.push("--repair");
                args.strategies = match value("--repair")?.as_str() {
                    "recompute" => vec![RepairStrategy::Recompute],
                    "repair" => vec![RepairStrategy::Repair],
                    "incremental" => vec![RepairStrategy::Incremental],
                    "both" => vec![RepairStrategy::Recompute, RepairStrategy::Repair],
                    "all" => ALL_STRATEGIES.to_vec(),
                    other => return Err(format!("unknown repair mode `{other}` (try --help)")),
                };
            }
            "--churn-model" => {
                churn_flags.push("--churn-model");
                args.churn_model = match value("--churn-model")?.as_str() {
                    "uniform" => ChurnModel::Uniform,
                    "adversarial" => ChurnModel::Adversarial,
                    other => return Err(format!("unknown churn model `{other}` (try --help)")),
                };
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if !args.dynamic && !churn_flags.is_empty() {
        return Err(format!(
            "{} only make sense with --dynamic (did you forget it?)",
            churn_flags.join(", ")
        ));
    }
    if args.no_cache && args.store.is_none() {
        return Err("--no-cache only makes sense with --store".to_string());
    }
    if args.dynamic && (args.round_timeline || args.protocol_trace.is_some()) {
        return Err("--round-timeline/--protocol-trace record static protocol runs, not --dynamic"
            .to_string());
    }
    if args.round_timeline && args.out.is_none() {
        return Err(
            "--round-timeline needs --out (it writes round_timeline.jsonl there)".to_string()
        );
    }
    Ok(Some(args))
}

fn parse_u64_maybe_hex(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    // Subcommands take over before flag parsing.
    match std::env::args().nth(1).as_deref() {
        Some("worker") => return run_worker(),
        Some("merge") => return run_merge(),
        Some("gc") => return run_gc(),
        Some("bench-churn") => return run_bench_churn(),
        Some("bench-wakes") => return run_bench_wakes(),
        Some("record-tape") => return run_record_tape(),
        Some("replay") => return run_replay(),
        Some("chaos") => return run_chaos(),
        Some("trace-check") => return run_trace_check(),
        Some("lint") => {
            let args: Vec<String> = std::env::args().skip(2).collect();
            let code = sleepy_lint::run_cli(&args);
            return ExitCode::from(u8::try_from(code).unwrap_or(2));
        }
        _ => {}
    }
    let args = match parse_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("fleet: {msg}");
            return ExitCode::FAILURE;
        }
    };
    set_telemetry_mode(args.trace_out.is_some());
    if args.dynamic {
        run_dynamic(&args)
    } else {
        run_static(&args)
    }
}

/// Arms telemetry for a run: full event retention when a trace file was
/// requested, bounded aggregates otherwise. (`gc` and `bench-churn`
/// leave telemetry off — the bench keeps its timed loops span-free.)
fn set_telemetry_mode(trace: bool) {
    sleepy_telemetry::set_mode(if trace {
        sleepy_telemetry::Mode::Trace
    } else {
        sleepy_telemetry::Mode::Metrics
    });
}

/// One code path for the end-of-run stderr line (all subcommands) —
/// replaces the per-path ad-hoc `Instant`/`eprintln!` stopwatches.
fn print_run_line(
    what: &str,
    elapsed: std::time::Duration,
    threads: usize,
    cache: Option<&CacheStats>,
) {
    eprintln!("fleet: {what} in {elapsed:.2?} ({threads} threads)");
    if let Some(c) = cache {
        eprintln!(
            "fleet: cache {} hits / {} executed ({:.1}% hit rate), {} stored \
             [s/ {}h {}e, d/ {}h {}e]",
            c.hits,
            c.executed,
            100.0 * c.hit_rate(),
            c.stored,
            c.static_ns.hits,
            c.static_ns.executed,
            c.dynamic_ns.hits,
            c.dynamic_ns.executed,
        );
    }
}

/// Drains the telemetry registry and emits every requested view of it:
/// the stderr summary table (unless `quiet`), `run_metrics.json` under
/// `out_dir`, and a Chrome trace at `trace_out`.
fn finish_telemetry(
    out_dir: Option<&Path>,
    trace_out: Option<&Path>,
    process_name: &str,
    quiet: bool,
) -> Result<(), String> {
    if !sleepy_telemetry::enabled() {
        return Ok(());
    }
    let snap = sleepy_telemetry::snapshot_and_reset();
    if !quiet {
        let summary = snap.render_summary();
        if !summary.is_empty() {
            eprint!("{summary}");
        }
    }
    if let Some(dir) = out_dir {
        let text =
            serde_json::to_string_pretty(&snap.run_metrics_value()).expect("metrics serialize");
        let path = dir.join("run_metrics.json");
        std::fs::write(&path, format!("{text}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("fleet: wrote {}", path.display());
    }
    if let Some(path) = trace_out {
        snap.write_chrome_trace(path, process_name)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        eprintln!("fleet: wrote trace {}", path.display());
    }
    Ok(())
}

/// `fleet trace-check`: validate a Chrome trace-event file written by
/// `--trace-out` (or any B/E/M trace) and summarize what it holds.
fn run_trace_check() -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(2) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if files.is_empty() {
        return fail("trace-check needs at least one FILE (try --help)");
    }
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => return fail(format!("cannot read {}: {e}", path.display())),
        };
        match sleepy_telemetry::validate_trace(&text) {
            Ok(check) => println!(
                "{}: OK — {} events, {} spans, {} counters, {} timelines, categories [{}]",
                path.display(),
                check.events,
                check.spans,
                check.counters,
                check.timelines,
                check.categories.join(", "),
            ),
            Err(e) => return fail(format!("{}: INVALID — {e}", path.display())),
        }
    }
    ExitCode::SUCCESS
}

/// Flags shared by the `worker` and `merge` subcommands.
#[derive(Debug, Default)]
struct SubArgs {
    plan: Option<PathBuf>,
    shard: Option<(usize, usize)>,
    store: Option<PathBuf>,
    from: Vec<PathBuf>,
    out: Option<PathBuf>,
    trace_out: Option<PathBuf>,
    trace_from: Vec<PathBuf>,
    ttl_secs: Option<u64>,
    threads: usize,
    shard_size: usize,
    progress: bool,
    chaos_kill: Option<PathBuf>,
    chaos_wedge: Option<PathBuf>,
}

fn parse_sub_args(what: &str, allowed: &[&str]) -> Result<SubArgs, String> {
    let mut args = SubArgs { shard_size: 16, progress: true, ..SubArgs::default() };
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        // Reject flags the subcommand would silently ignore (e.g.
        // `fleet worker --out`: workers write no aggregates).
        if !matches!(flag.as_str(), "--help" | "-h") && !allowed.contains(&flag.as_str()) {
            return Err(format!("`{flag}` is not a `fleet {what}` flag (try --help)"));
        }
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--plan" => args.plan = Some(PathBuf::from(value("--plan")?)),
            "--shard" => {
                let v = value("--shard")?;
                let parts: Vec<&str> = v.split('/').collect();
                let parsed = if parts.len() == 2 {
                    parts[0].parse::<usize>().ok().zip(parts[1].parse::<usize>().ok())
                } else {
                    None
                };
                args.shard =
                    Some(parsed.ok_or_else(|| format!("bad --shard `{v}` (expected K/N)"))?);
            }
            "--store" => args.store = Some(PathBuf::from(value("--store")?)),
            "--from" => {
                args.from = value("--from")?.split(',').map(PathBuf::from).collect();
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out")?)),
            "--trace-from" => {
                args.trace_from = value("--trace-from")?.split(',').map(PathBuf::from).collect();
            }
            "--ttl-secs" => {
                args.ttl_secs =
                    Some(value("--ttl-secs")?.parse().map_err(|_| "bad --ttl-secs value")?);
            }
            "--threads" => {
                args.threads = value("--threads")?.parse().map_err(|_| "bad --threads value")?;
            }
            "--shard-size" => {
                args.shard_size =
                    value("--shard-size")?.parse().map_err(|_| "bad --shard-size value")?;
            }
            "--no-progress" => args.progress = false,
            "--chaos-kill" => args.chaos_kill = Some(PathBuf::from(value("--chaos-kill")?)),
            "--chaos-wedge" => args.chaos_wedge = Some(PathBuf::from(value("--chaos-wedge")?)),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown `fleet {what}` flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("fleet: {msg}");
    ExitCode::FAILURE
}

/// `fleet worker`: execute one contiguous shard of a plan, recording
/// every result into this worker's store. The store *is* the output;
/// the coordinator (or `fleet merge`) recovers aggregates from it.
fn run_worker() -> ExitCode {
    let sub = match parse_sub_args(
        "worker",
        &[
            "--plan",
            "--shard",
            "--store",
            "--trace-out",
            "--threads",
            "--shard-size",
            "--no-progress",
            "--chaos-kill",
            "--chaos-wedge",
        ],
    ) {
        Ok(sub) => sub,
        Err(msg) => return fail(msg),
    };
    let (Some(plan_path), Some((index, count)), Some(store_dir)) =
        (&sub.plan, sub.shard, &sub.store)
    else {
        return fail("worker needs --plan, --shard and --store (try --help)");
    };
    // Test-only fault injection, driven by the supervisor's chaos
    // config. The marker file makes the fault fire exactly once: the
    // first attempt misbehaves, the retry runs the shard for real.
    let first_attempt = |marker: &std::path::Path| {
        if marker.exists() {
            false
        } else {
            if let Some(parent) = marker.parent() {
                let _ = std::fs::create_dir_all(parent);
            }
            let _ = std::fs::write(marker, b"chaos\n");
            true
        }
    };
    if let Some(marker) = &sub.chaos_wedge {
        if first_attempt(marker) {
            eprintln!("fleet worker {index}/{count}: chaos wedge — hanging until killed");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
    }
    let chaos_kill_now = sub.chaos_kill.as_deref().is_some_and(first_attempt);
    set_telemetry_mode(sub.trace_out.is_some());
    let plan = match read_plan_file(plan_path) {
        Ok(plan) => plan,
        Err(e) => return fail(e),
    };
    let mut store = match Store::open(store_dir) {
        Ok(store) => store,
        Err(e) => return fail(e),
    };
    let config = FleetConfig {
        threads: sub.threads,
        shard_size: sub.shard_size,
        max_in_flight: 0,
        progress: sub.progress,
    };
    if chaos_kill_now {
        // Execute exactly the first half of this worker's shard —
        // shard 2k/2N is a prefix of shard k/N — then die with a
        // nonzero exit so the supervisor classifies and retries. The
        // retry finds the half-filled store and completes the rest.
        let (index, count) = (2 * index, 2 * count);
        eprintln!("fleet worker: chaos kill — running half shard {index}/{count}, then exit 17");
        match run_plan_shard(&plan, &config, &mut [], Some(&mut store), index, count) {
            Ok(_) => std::process::exit(17),
            Err(e) => return fail(format!("chaos half-shard {index}/{count} failed: {e}")),
        }
    }
    match run_plan_shard(&plan, &config, &mut [], Some(&mut store), index, count) {
        Ok(out) => {
            eprintln!(
                "fleet worker {index}/{count}: {} trials ({} executed, {} cached, {} stored) \
                 in {:.2?}",
                out.total_trials, out.cache.executed, out.cache.hits, out.cache.stored, out.elapsed,
            );
            let name = format!("fleet-worker-{index}");
            if let Err(e) = finish_telemetry(None, sub.trace_out.as_deref(), &name, !sub.progress) {
                return fail(e);
            }
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("worker {index}/{count} failed: {e}")),
    }
}

/// `fleet merge`: union shard stores into one store, then replay the
/// plan warm against it — recovering aggregates byte-identical to a
/// single-process run (missing trials simply execute during replay).
fn run_merge() -> ExitCode {
    let sub = match parse_sub_args(
        "merge",
        &[
            "--plan",
            "--from",
            "--store",
            "--out",
            "--trace-out",
            "--trace-from",
            "--threads",
            "--shard-size",
            "--no-progress",
        ],
    ) {
        Ok(sub) => sub,
        Err(msg) => return fail(msg),
    };
    let (Some(plan_path), Some(store_dir)) = (&sub.plan, &sub.store) else {
        return fail("merge needs --plan and --store (try --help)");
    };
    if sub.from.is_empty() {
        return fail("merge needs --from DIR1,DIR2,... (try --help)");
    }
    if !sub.trace_from.is_empty() && sub.trace_out.is_none() {
        return fail("--trace-from needs --trace-out (nowhere to put the merged trace)");
    }
    set_telemetry_mode(sub.trace_out.is_some());
    let plan = match read_plan_file(plan_path) {
        Ok(plan) => plan,
        Err(e) => return fail(e),
    };
    let mut merged = match Store::open(store_dir) {
        Ok(store) => store,
        Err(e) => return fail(e),
    };
    for dir in &sub.from {
        let shard = match Store::open(dir) {
            Ok(store) => store,
            Err(e) => return fail(e),
        };
        match merged.merge_from(&shard) {
            Ok(added) => eprintln!(
                "fleet merge: {} entries from {} ({} new)",
                shard.len(),
                dir.display(),
                added
            ),
            Err(e) => return fail(e),
        }
    }
    let config = FleetConfig {
        threads: sub.threads,
        shard_size: sub.shard_size,
        max_in_flight: 0,
        progress: sub.progress,
    };
    let out = match run_plan_cached(&plan, &config, &mut [], Some(&mut merged), true) {
        Ok(out) => out,
        Err(e) => return fail(format!("merge replay failed: {e}")),
    };
    let report = out.report(&plan);
    print_static_table(&report);
    print_run_line(
        &format!("merge replayed {} trials", out.total_trials),
        out.elapsed,
        sleepy_fleet::pool::resolve_threads(sub.threads),
        Some(&out.cache),
    );
    if let Some(dir) = &sub.out {
        if let Err(e) = write_static_outputs(dir, &report, Some(out.cache)) {
            return fail(format!("writing aggregates failed: {e}"));
        }
        eprintln!(
            "fleet merge: wrote {}/aggregates.json, aggregates.csv, cache_stats.json",
            dir.display()
        );
    }
    for path in &sub.trace_from {
        if let Err(e) = sleepy_telemetry::import_trace_file(path) {
            eprintln!("fleet: warning: trace not imported: {e}");
        }
    }
    if let Err(e) =
        finish_telemetry(sub.out.as_deref(), sub.trace_out.as_deref(), "fleet-merge", !sub.progress)
    {
        return fail(e);
    }
    ExitCode::SUCCESS
}

/// `fleet gc`: expire entries past their TTL and compact the store's
/// segments into one.
fn run_gc() -> ExitCode {
    let sub = match parse_sub_args("gc", &["--store", "--ttl-secs"]) {
        Ok(sub) => sub,
        Err(msg) => return fail(msg),
    };
    let Some(store_dir) = &sub.store else {
        return fail("gc needs --store (try --help)");
    };
    let mut store = match Store::open(store_dir) {
        Ok(store) => store,
        Err(e) => return fail(e),
    };
    let expire_before = match sub.ttl_secs {
        Some(ttl) => {
            // sleepy-lint: allow(no-wall-clock): gc compares TTL *metadata* stamps
            // against the clock; entry payloads and keys are untouched, so byte
            // identity of surviving records is preserved (cache_semantics.rs).
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            now.saturating_sub(ttl)
        }
        None => 0,
    };
    match store.gc(expire_before) {
        Ok(gc) => {
            eprintln!(
                "fleet gc: kept {} entries, dropped {}, {} segments -> {}",
                gc.kept, gc.dropped, gc.segments_before, gc.segments_after,
            );
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

/// `fleet bench-churn` flags.
struct BenchChurnArgs {
    sizes: Vec<usize>,
    events: usize,
    seed: u64,
    out: Option<PathBuf>,
    smoke: bool,
}

fn parse_bench_churn_args() -> Result<Option<BenchChurnArgs>, String> {
    let mut args = BenchChurnArgs {
        sizes: vec![1_000, 10_000, 100_000],
        events: 200,
        seed: 0xC4A2,
        out: Some(PathBuf::from("BENCH_churn.json")),
        smoke: false,
    };
    let mut out_given = false;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|_| format!("bad size `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--events" => {
                args.events =
                    value("--events")?.parse().map_err(|_| "bad --events value".to_string())?;
                if args.events == 0 {
                    return Err("--events must be >= 1".to_string());
                }
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = parse_u64_maybe_hex(&v).ok_or(format!("bad --seed `{v}`"))?;
            }
            "--out" => {
                let v = value("--out")?;
                args.out = (v != "-").then(|| PathBuf::from(v));
                out_given = true;
            }
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown `fleet bench-churn` flag `{other}`")),
        }
    }
    if args.smoke {
        args.sizes = vec![64, 256];
        args.events = 60;
        if !out_given {
            args.out = None;
        }
    }
    Ok(Some(args))
}

/// One (size, churn-model) measurement of `fleet bench-churn`.
struct ChurnBenchRow {
    n: usize,
    m: usize,
    model: ChurnModel,
    events: usize,
    inplace_secs: f64,
    inplace_eps: f64,
    rebuild_secs: f64,
    rebuild_eps: f64,
}

/// `fleet bench-churn`: absorb one churn batch event-by-event through
/// the in-place (`IncrementalRepairer`/DynGraph) and rebuild-per-event
/// (`RebuildRepairer`) paths, verify they are bit-identical and that
/// the in-place path performed zero CSR rebuilds, then time both and
/// report absorb throughput.
fn run_bench_churn() -> ExitCode {
    use sleepy_fleet::{seed, FleetError, IncrementalRepairer, RebuildRepairer, UpdateRecord};
    use sleepy_graph::{churn_delta_with_mis, DeltaEvent};
    use std::time::Instant;

    /// Absorbs the whole batch through `absorb`, returning the loop's
    /// wall-clock — the one definition of a timed pass both paths use.
    fn timed_absorbs(
        events: &[DeltaEvent],
        base_seed: u64,
        mut absorb: impl FnMut(DeltaEvent, u64) -> Result<UpdateRecord, FleetError>,
    ) -> f64 {
        // sleepy-lint: allow(no-wall-clock): bench-churn's whole job is timing;
        // its throughput report is diagnostic output, not a golden artifact.
        let t = Instant::now();
        for (k, &event) in events.iter().enumerate() {
            absorb(event, seed::update_seed(base_seed, k as u64)).expect("verified above");
        }
        t.elapsed().as_secs_f64()
    }

    let args = match parse_bench_churn_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => return fail(msg),
    };
    let algo = AlgoKind::SleepingMis;
    let mut rows: Vec<ChurnBenchRow> = Vec::new();
    for &n in &args.sizes {
        for model in [ChurnModel::Uniform, ChurnModel::Adversarial] {
            let graph = match GraphFamily::GnpAvgDeg(8.0).generate(n, args.seed) {
                Ok(g) => g,
                Err(e) => return fail(format!("generating n={n}: {e}")),
            };
            // Seed set: the deterministic ascending-id greedy MIS (cheap
            // and valid, no algorithm run needed).
            let order: Vec<sleepy_graph::NodeId> = (0..graph.n() as sleepy_graph::NodeId).collect();
            let in_mis = sleepy_verify::greedy_by_order(&graph, &order);
            let spec = ChurnSpec::targeting_events(&graph, args.events, 3, model);
            let delta = match churn_delta_with_mis(&graph, &spec, args.seed ^ 0x0C, Some(&in_mis)) {
                Ok(delta) => delta,
                Err(e) => return fail(format!("sampling churn at n={n}: {e}")),
            };
            let events = delta.events();
            if events.is_empty() {
                return fail(format!("empty event batch at n={n} — raise --events"));
            }

            // Equivalence gate: both paths must agree bit-for-bit
            // before any throughput number is reported.
            let mut fast =
                IncrementalRepairer::new(graph.clone(), in_mis.clone(), algo, Execution::Auto);
            let mut oracle =
                RebuildRepairer::new(graph.clone(), in_mis.clone(), algo, Execution::Auto);
            for (k, &event) in events.iter().enumerate() {
                let s = seed::update_seed(args.seed, k as u64);
                let a = fast.absorb(event, s);
                let b = oracle.absorb(event, s);
                match (a, b) {
                    (Ok(a), Ok(b)) if a == b => {}
                    (Ok(a), Ok(b)) => {
                        return fail(format!(
                            "record divergence at n={n} event {k}: in-place {a:?} vs rebuild {b:?}"
                        ))
                    }
                    (a, b) => {
                        return fail(format!("absorb failed at n={n} event {k}: {a:?} {b:?}"))
                    }
                }
            }
            if fast.rebuild_count() != 0 {
                return fail(format!(
                    "in-place path rebuilt the CSR {} times during absorption at n={n}",
                    fast.rebuild_count()
                ));
            }
            let a = fast.finish();
            let b = oracle.finish();
            if a.graph != b.graph || a.set != b.set || a.summary != b.summary {
                return fail(format!("phase-end divergence at n={n} ({model:?})"));
            }

            // Timed passes: repairer construction (the per-phase O(n+m)
            // boundary both paths share) stays outside the clock; only
            // the absorb loop is measured.
            let time_path = |inplace: bool, min_secs: f64, max_passes: usize| -> (f64, usize) {
                let mut total = 0.0;
                let mut passes = 0usize;
                while passes == 0 || (total < min_secs && passes < max_passes) {
                    total += if inplace {
                        let mut rep = IncrementalRepairer::new(
                            graph.clone(),
                            in_mis.clone(),
                            algo,
                            Execution::Auto,
                        );
                        timed_absorbs(&events, args.seed, |e, s| rep.absorb(e, s))
                    } else {
                        let mut rep = RebuildRepairer::new(
                            graph.clone(),
                            in_mis.clone(),
                            algo,
                            Execution::Auto,
                        );
                        timed_absorbs(&events, args.seed, |e, s| rep.absorb(e, s))
                    };
                    passes += 1;
                }
                (total, passes)
            };
            let (inplace_secs, inplace_passes) = time_path(true, 0.25, 400);
            let (rebuild_secs, rebuild_passes) = time_path(false, 0.25, 8);
            let eps = |secs: f64, passes: usize| events.len() as f64 * passes as f64 / secs;
            let row = ChurnBenchRow {
                n,
                m: graph.m(),
                model,
                events: events.len(),
                inplace_secs: inplace_secs / inplace_passes as f64,
                inplace_eps: eps(inplace_secs, inplace_passes),
                rebuild_secs: rebuild_secs / rebuild_passes as f64,
                rebuild_eps: eps(rebuild_secs, rebuild_passes),
            };
            eprintln!(
                "bench-churn: n={:>6} m={:>7} {:9} {:>4} events  in-place {:>12.0} ev/s  \
                 rebuild {:>10.0} ev/s  speedup {:>7.1}x",
                row.n,
                row.m,
                format!("({})", row.model.label()),
                row.events,
                row.inplace_eps,
                row.rebuild_eps,
                row.inplace_eps / row.rebuild_eps,
            );
            rows.push(row);
        }
    }
    if args.smoke {
        println!(
            "bench-churn --smoke OK: {} configurations bit-identical, 0 CSR rebuilds per event",
            rows.len()
        );
    }
    if let Some(path) = &args.out {
        let json = serde_json::json!({
            "bench": "churn-absorb-throughput",
            "family": "gnp-avg8",
            "algo": algo.to_string(),
            "target_events": args.events,
            "seed": args.seed,
            "rows": serde::Value::Array(rows.iter().map(|r| serde_json::json!({
                "n": r.n,
                "m": r.m,
                "model": r.model.label(),
                "events": r.events,
                "inplace_batch_secs": r.inplace_secs,
                "inplace_events_per_sec": r.inplace_eps,
                "rebuild_batch_secs": r.rebuild_secs,
                "rebuild_events_per_sec": r.rebuild_eps,
                "speedup": r.inplace_eps / r.rebuild_eps,
            })).collect()),
        });
        let text = serde_json::to_string_pretty(&json).expect("bench rows serialize");
        if let Err(e) = std::fs::write(path, format!("{text}\n")) {
            return fail(format!("cannot write {}: {e}", path.display()));
        }
        eprintln!("bench-churn: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

struct BenchWakesArgs {
    sizes: Vec<usize>,
    cycles: usize,
    seed: u64,
    out: Option<PathBuf>,
    smoke: bool,
}

fn parse_bench_wakes_args() -> Result<Option<BenchWakesArgs>, String> {
    let mut args = BenchWakesArgs {
        sizes: vec![1_000, 10_000, 100_000],
        cycles: 16,
        seed: 0xA1A3,
        out: Some(PathBuf::from("BENCH_wakes.json")),
        smoke: false,
    };
    let mut out_given = false;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(None);
            }
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| s.parse::<usize>().map_err(|_| format!("bad size `{s}`")))
                    .collect::<Result<_, _>>()?;
            }
            "--cycles" => {
                args.cycles =
                    value("--cycles")?.parse().map_err(|_| "bad --cycles value".to_string())?;
                if args.cycles == 0 {
                    return Err("--cycles must be >= 1".to_string());
                }
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = parse_u64_maybe_hex(&v).ok_or(format!("bad --seed `{v}`"))?;
            }
            "--out" => {
                let v = value("--out")?;
                args.out = (v != "-").then(|| PathBuf::from(v));
                out_given = true;
            }
            "--smoke" => args.smoke = true,
            other => return Err(format!("unknown `fleet bench-wakes` flag `{other}`")),
        }
    }
    if args.smoke {
        args.sizes = vec![64, 256];
        args.cycles = 4;
        if !out_given {
            args.out = None;
        }
    }
    Ok(Some(args))
}

/// One alarm-set-size measurement of `fleet bench-wakes`.
struct WakeBenchRow {
    n: usize,
    ops: u64,
    heap_secs: f64,
    heap_ops: f64,
    wheel_secs: f64,
    wheel_ops: f64,
}

/// Drives one deterministic schedule/pop workload through `queue`: every
/// node starts with a pending alarm, and each pop reschedules the node
/// with a SplitMix64-derived delta (3/4 short hops inside the wheel's
/// 256-slot window, 1/4 long hops into its overflow map) until it has
/// slept `cycles` times. Returns the operation count; when `record` is
/// given, also appends every `(round, node)` pop and each round's
/// post-pop deadline for bit-exact cross-queue comparison.
fn drive_alarms(
    queue: &mut sleepy_net::AlarmQueue,
    n: usize,
    cycles: usize,
    seed: u64,
    mut record: Option<&mut Vec<(u64, u64)>>,
) -> u64 {
    use sleepy_fleet::splitmix64;
    let mut remaining = vec![cycles; n];
    for v in 0..n as u64 {
        queue.schedule(1 + splitmix64(seed ^ v) % 512, v as sleepy_graph::NodeId);
    }
    let mut ops = n as u64;
    let mut due = Vec::new();
    let mut k = 0u64;
    while let Some(round) = queue.next_deadline() {
        due.clear();
        queue.pop_due(round, &mut due);
        for &v in &due {
            ops += 1;
            if let Some(rec) = record.as_deref_mut() {
                rec.push((round, v as u64));
            }
            remaining[v as usize] -= 1;
            if remaining[v as usize] > 0 {
                k += 1;
                let r = splitmix64(seed ^ (k << 24) ^ v as u64);
                let delta =
                    if r.is_multiple_of(4) { 256 + (r >> 8) % 7936 } else { 1 + (r >> 8) % 255 };
                queue.schedule(round + delta, v);
                ops += 1;
            }
        }
        if let Some(rec) = record.as_deref_mut() {
            rec.push((u64::MAX, queue.next_deadline().unwrap_or(u64::MAX)));
        }
    }
    ops
}

/// `fleet bench-wakes`: verify the binary-heap and timer-wheel alarm
/// queues are observationally identical — first on a synthetic
/// schedule/pop workload (pop sequences + deadlines), then end-to-end
/// (Alg1 and Luby-B traces/metrics/outputs under each queue) — and only
/// then time the synthetic workload on both and report throughput.
fn run_bench_wakes() -> ExitCode {
    use sleepy_net::{run_protocol_with_alarms, AlarmKind, AlarmQueue, TraceBuffer};
    use std::time::Instant;

    /// One timed pass over the synthetic workload.
    fn timed_drain(kind: AlarmKind, n: usize, cycles: usize, seed: u64) -> f64 {
        // sleepy-lint: allow(no-wall-clock): bench-wakes' whole job is timing;
        // its throughput report is diagnostic output, not a golden artifact.
        let t = Instant::now();
        let mut queue = AlarmQueue::new(kind);
        drive_alarms(&mut queue, n, cycles, seed, None);
        t.elapsed().as_secs_f64()
    }

    let args = match parse_bench_wakes_args() {
        Ok(Some(args)) => args,
        Ok(None) => return ExitCode::SUCCESS,
        Err(msg) => return fail(msg),
    };

    // Gate 1: synthetic workload, bit-identical pop/deadline sequences.
    let mut rows: Vec<WakeBenchRow> = Vec::new();
    for &n in &args.sizes {
        let mut heap_log = Vec::new();
        let mut wheel_log = Vec::new();
        let mut heap = AlarmQueue::new(AlarmKind::Heap);
        let mut wheel = AlarmQueue::new(AlarmKind::Wheel);
        let ops = drive_alarms(&mut heap, n, args.cycles, args.seed, Some(&mut heap_log));
        let wheel_ops = drive_alarms(&mut wheel, n, args.cycles, args.seed, Some(&mut wheel_log));
        if ops != wheel_ops || heap_log != wheel_log {
            return fail(format!(
                "alarm queue divergence at n={n}: heap {} ops, wheel {} ops, logs {}",
                ops,
                wheel_ops,
                if heap_log == wheel_log { "equal" } else { "DIFFER" },
            ));
        }
        if !heap.is_empty() || !wheel.is_empty() {
            return fail(format!("alarm queue not drained at n={n}"));
        }

        let time_queue = |kind: AlarmKind, min_secs: f64, max_passes: usize| -> (f64, usize) {
            let mut total = 0.0;
            let mut passes = 0usize;
            while passes == 0 || (total < min_secs && passes < max_passes) {
                total += timed_drain(kind, n, args.cycles, args.seed);
                passes += 1;
            }
            (total, passes)
        };
        let (heap_secs, heap_passes) = time_queue(AlarmKind::Heap, 0.25, 400);
        let (wheel_secs, wheel_passes) = time_queue(AlarmKind::Wheel, 0.25, 400);
        let rate = |secs: f64, passes: usize| ops as f64 * passes as f64 / secs;
        let row = WakeBenchRow {
            n,
            ops,
            heap_secs: heap_secs / heap_passes as f64,
            heap_ops: rate(heap_secs, heap_passes),
            wheel_secs: wheel_secs / wheel_passes as f64,
            wheel_ops: rate(wheel_secs, wheel_passes),
        };
        eprintln!(
            "bench-wakes: n={:>6} {:>8} ops  heap {:>12.0} op/s  wheel {:>12.0} op/s  \
             speedup {:>6.2}x",
            row.n,
            row.ops,
            row.heap_ops,
            row.wheel_ops,
            row.wheel_ops / row.heap_ops,
        );
        rows.push(row);
    }

    // Gate 2: end-to-end — a sleeping-model run (Alg1, alarm-heavy) and a
    // baseline run under each queue must produce byte-identical traces,
    // metrics and outputs.
    let e2e_n = if args.smoke { 48 } else { 256 };
    let graph = match GraphFamily::GnpAvgDeg(8.0).generate(e2e_n, args.seed) {
        Ok(g) => g,
        Err(e) => return fail(format!("generating end-to-end graph: {e}")),
    };
    let config = sleepy_net::EngineConfig::default();
    let prepared =
        match sleepy_mis::PreparedMis::new(graph.n(), sleepy_mis::MisConfig::alg1(args.seed)) {
            Ok(p) => p,
            Err(e) => return fail(format!("alg1 config: {e}")),
        };
    let mut runs = Vec::new();
    for kind in [AlarmKind::Heap, AlarmKind::Wheel] {
        let mut buf = TraceBuffer::new(true);
        let outcome = match run_protocol_with_alarms(
            &graph,
            &config,
            |id, _| sleepy_mis::SleepingMisProtocol::new(id, prepared.clone()),
            &mut buf,
            kind,
        ) {
            Ok(out) => out,
            Err(e) => return fail(format!("alg1 end-to-end ({kind:?}): {e}")),
        };
        let in_mis: Vec<Option<bool>> =
            outcome.outputs.iter().map(|o| o.as_ref().map(|x| x.in_mis)).collect();
        runs.push((in_mis, outcome.metrics, buf.into_trace()));
    }
    if runs[0] != runs[1] {
        return fail("end-to-end divergence: Alg1 under heap vs timer-wheel alarms");
    }
    let mut base_runs = Vec::new();
    for kind in [AlarmKind::Heap, AlarmKind::Wheel] {
        let mut buf = TraceBuffer::new(true);
        let outcome = match run_protocol_with_alarms(
            &graph,
            &config,
            |id, _| sleepy_baselines::LubyB::new(id, args.seed),
            &mut buf,
            kind,
        ) {
            Ok(out) => out,
            Err(e) => return fail(format!("luby-b end-to-end ({kind:?}): {e}")),
        };
        base_runs.push((outcome.outputs, outcome.metrics, buf.into_trace()));
    }
    if base_runs[0] != base_runs[1] {
        return fail("end-to-end divergence: Luby-B under heap vs timer-wheel alarms");
    }

    if args.smoke {
        println!(
            "bench-wakes --smoke OK: {} alarm workloads bit-identical, \
             end-to-end runs byte-identical under both queues",
            rows.len()
        );
    }
    if let Some(path) = &args.out {
        let json = serde_json::json!({
            "bench": "wake-alarm-queue-throughput",
            "cycles": args.cycles,
            "seed": args.seed,
            "end_to_end_n": e2e_n,
            "rows": serde::Value::Array(rows.iter().map(|r| serde_json::json!({
                "n": r.n,
                "ops": r.ops,
                "heap_batch_secs": r.heap_secs,
                "heap_ops_per_sec": r.heap_ops,
                "wheel_batch_secs": r.wheel_secs,
                "wheel_ops_per_sec": r.wheel_ops,
                "speedup": r.wheel_ops / r.heap_ops,
            })).collect()),
        });
        let text = serde_json::to_string_pretty(&json).expect("bench rows serialize");
        if let Err(e) = std::fs::write(path, format!("{text}\n")) {
            return fail(format!("cannot write {}: {e}", path.display()));
        }
        eprintln!("bench-wakes: wrote {}", path.display());
    }
    ExitCode::SUCCESS
}

/// `fleet record-tape`: run one algorithm on one workload instance and
/// write the engine exchange as a versioned JSONL conformance tape.
fn run_record_tape() -> ExitCode {
    let mut algo: Option<AlgoKind> = None;
    let mut family = GraphFamily::Star;
    let mut n = 16usize;
    let mut seed = 1u64;
    let mut config = sleepy_net::EngineConfig::default();
    let mut out: Option<PathBuf> = None;
    let mut fault_burst: Option<(f64, f64, f64, f64)> = None;
    let mut fault_seed = 0u64;
    let mut fault_crash: Vec<sleepy_net::CrashWindow> = Vec::new();
    let mut fault_partition: Vec<sleepy_net::LinkWindow> = Vec::new();
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        let result = (|| -> Result<bool, String> {
            match flag.as_str() {
                "--help" | "-h" => {
                    println!("{USAGE}");
                    return Ok(false);
                }
                "--algo" => {
                    let v = value("--algo")?;
                    let algos = parse_algos(&v)?;
                    let [one] = algos[..] else {
                        return Err("record-tape takes exactly one --algo".to_string());
                    };
                    algo = Some(one);
                }
                "--family" => family = parse_family(&value("--family")?)?,
                "--n" => n = value("--n")?.parse().map_err(|_| "bad --n value".to_string())?,
                "--seed" => {
                    let v = value("--seed")?;
                    seed = parse_u64_maybe_hex(&v).ok_or(format!("bad --seed `{v}`"))?;
                }
                "--loss" => {
                    config.loss_probability =
                        value("--loss")?.parse().map_err(|_| "bad --loss value".to_string())?;
                    if !(0.0..=1.0).contains(&config.loss_probability) {
                        return Err("--loss must be in [0,1]".to_string());
                    }
                }
                "--loss-seed" => {
                    let v = value("--loss-seed")?;
                    config.loss_seed =
                        parse_u64_maybe_hex(&v).ok_or(format!("bad --loss-seed `{v}`"))?;
                }
                "--max-rounds" => {
                    config.max_rounds = value("--max-rounds")?
                        .parse()
                        .map_err(|_| "bad --max-rounds value".to_string())?;
                }
                "--fault-burst" => {
                    let v = value("--fault-burst")?;
                    let parts: Vec<f64> = v.split(',').filter_map(|p| p.parse().ok()).collect();
                    let [e, x, g, b] = parts[..] else {
                        return Err(format!("bad --fault-burst `{v}` (expected E,X,G,B)"));
                    };
                    fault_burst = Some((e, x, g, b));
                }
                "--fault-seed" => {
                    let v = value("--fault-seed")?;
                    fault_seed =
                        parse_u64_maybe_hex(&v).ok_or(format!("bad --fault-seed `{v}`"))?;
                }
                "--fault-crash" => {
                    let v = value("--fault-crash")?;
                    for spec in v.split(',') {
                        let parts: Vec<u64> =
                            spec.split(':').filter_map(|p| p.parse().ok()).collect();
                        let [node, start, end] = parts[..] else {
                            return Err(format!(
                                "bad --fault-crash `{spec}` (expected NODE:START:END)"
                            ));
                        };
                        fault_crash.push(sleepy_net::CrashWindow { node: node as u32, start, end });
                    }
                }
                "--fault-partition" => {
                    let v = value("--fault-partition")?;
                    for spec in v.split(',') {
                        let bad =
                            || format!("bad --fault-partition `{spec}` (expected U-V:START:END)");
                        let parts: Vec<&str> = spec.split(':').collect();
                        let [edge, start, end] = parts[..] else { return Err(bad()) };
                        let (u, v2) = edge.split_once('-').ok_or_else(bad)?;
                        let a: u32 = u.parse().map_err(|_| bad())?;
                        let b: u32 = v2.parse().map_err(|_| bad())?;
                        let start: u64 = start.parse().map_err(|_| bad())?;
                        let end: u64 = end.parse().map_err(|_| bad())?;
                        fault_partition.push(sleepy_net::LinkWindow { a, b, start, end });
                    }
                }
                "--out" => out = Some(PathBuf::from(value("--out")?)),
                other => return Err(format!("unknown `fleet record-tape` flag `{other}`")),
            }
            Ok(true)
        })();
        match result {
            Ok(true) => {}
            Ok(false) => return ExitCode::SUCCESS,
            Err(msg) => return fail(msg),
        }
    }
    let Some(algo) = algo else {
        return fail("record-tape needs --algo (try --help)");
    };
    let fault_kinds = usize::from(fault_burst.is_some())
        + usize::from(!fault_crash.is_empty())
        + usize::from(!fault_partition.is_empty());
    if fault_kinds > 1 {
        return fail("--fault-burst, --fault-crash and --fault-partition are mutually exclusive");
    }
    if let Some((p_enter, p_exit, loss_good, loss_bad)) = fault_burst {
        config.fault =
            sleepy_net::FaultPlan::Burst { p_enter, p_exit, loss_good, loss_bad, seed: fault_seed };
    } else if !fault_crash.is_empty() {
        config.fault = sleepy_net::FaultPlan::Crash { windows: fault_crash };
    } else if !fault_partition.is_empty() {
        config.fault = sleepy_net::FaultPlan::Partition { windows: fault_partition };
    }
    if let Err(e) = config.fault.validate() {
        return fail(format!("invalid fault plan: {e}"));
    }
    let tape = match sleepy_fleet::tape::record_tape(algo, family, n, seed, &config) {
        Ok(tape) => tape,
        Err(e) => return fail(e),
    };
    let path = out.unwrap_or_else(|| {
        PathBuf::from(format!(
            "tape_{}_n{}_s{}.jsonl",
            sleepy_fleet::tape::algo_slug(algo),
            n,
            seed
        ))
    });
    if let Err(e) = std::fs::write(&path, tape.to_jsonl()) {
        return fail(format!("cannot write {}: {e}", path.display()));
    }
    eprintln!(
        "record-tape: wrote {} ({} inputs, {} outputs, fnv {:016x}{})",
        path.display(),
        tape.inputs.len(),
        tape.output_count,
        tape.outputs_fnv,
        match &tape.error {
            Some(e) => format!(", recorded error: {e}"),
            None => String::new(),
        },
    );
    ExitCode::SUCCESS
}

/// `fleet chaos`: run the seeded fault-injection matrix (see
/// `sleepy_fleet::chaos`) and exit nonzero unless every leg's recovery
/// invariant holds.
fn run_chaos() -> ExitCode {
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => return fail(format!("cannot locate the fleet binary: {e}")),
    };
    let mut dir: Option<PathBuf> = None;
    let mut smoke = false;
    let mut seed: Option<u64> = None;
    let mut n: Option<usize> = None;
    let mut trials: Option<usize> = None;
    let mut procs: Option<usize> = None;
    let mut threads: Option<usize> = None;
    let mut it = std::env::args().skip(2);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("missing value for {flag}"));
        let result = (|| -> Result<bool, String> {
            let num =
                |v: String, flag: &str| v.parse::<usize>().map_err(|_| format!("bad {flag} `{v}`"));
            match flag.as_str() {
                "--help" | "-h" => {
                    println!("{USAGE}");
                    return Ok(false);
                }
                "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
                "--smoke" => smoke = true,
                "--seed" => {
                    let v = value("--seed")?;
                    seed = Some(parse_u64_maybe_hex(&v).ok_or(format!("bad --seed `{v}`"))?);
                }
                "--n" => n = Some(num(value("--n")?, "--n")?),
                "--trials" => trials = Some(num(value("--trials")?, "--trials")?),
                "--procs" => procs = Some(num(value("--procs")?, "--procs")?),
                "--threads" => threads = Some(num(value("--threads")?, "--threads")?),
                other => return Err(format!("unknown `fleet chaos` flag `{other}`")),
            }
            Ok(true)
        })();
        match result {
            Ok(true) => {}
            Ok(false) => return ExitCode::SUCCESS,
            Err(msg) => return fail(msg),
        }
    }
    let dir = dir.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("fleet-chaos-{}", std::process::id()))
    });
    let mut cfg = if smoke {
        sleepy_fleet::chaos::ChaosConfig::smoke(&exe, &dir)
    } else {
        sleepy_fleet::chaos::ChaosConfig::full(&exe, &dir)
    };
    if let Some(seed) = seed {
        cfg.seed = seed;
    }
    if let Some(n) = n {
        cfg.n = n;
    }
    if let Some(trials) = trials {
        cfg.trials = trials;
    }
    if let Some(procs) = procs {
        cfg.procs = procs;
    }
    if let Some(threads) = threads {
        cfg.threads = threads;
    }
    if cfg.procs == 0 {
        return fail("--procs must be at least 1");
    }
    match sleepy_fleet::chaos::run_chaos_matrix(&cfg) {
        Ok(report) => {
            println!("{report}");
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => fail(format!("chaos matrix could not run: {e}")),
    }
}

/// `fleet replay`: re-run committed tapes through the sans-io engine in
/// parallel and fail on any divergence. Per-tape report lines are
/// printed in argument order — byte-identical regardless of --threads.
fn run_replay() -> ExitCode {
    let mut files: Vec<PathBuf> = Vec::new();
    let mut threads = 0usize;
    let mut it = std::env::args().skip(2);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--threads" => {
                let Some(v) = it.next() else { return fail("missing value for --threads") };
                threads = match v.parse() {
                    Ok(t) => t,
                    Err(_) => return fail(format!("bad --threads `{v}`")),
                };
            }
            other => files.push(PathBuf::from(other)),
        }
    }
    if files.is_empty() {
        return fail("replay needs at least one tape FILE (try --help)");
    }
    let lines = sleepy_fleet::deterministic_map(files.len(), threads, |i| {
        let path = &files[i];
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        sleepy_fleet::tape::replay_text(&path.display().to_string(), &text)
    });
    match lines {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            println!("replay: {} tapes OK", files.len());
            ExitCode::SUCCESS
        }
        Err(msg) => fail(msg),
    }
}

/// Opens the `--store` directory (when given), logging its stats.
fn open_store(dir: &Option<PathBuf>) -> Result<Option<Store>, sleepy_store::StoreError> {
    let Some(dir) = dir else { return Ok(None) };
    let store = Store::open(dir)?;
    let stats = store.stats();
    eprintln!(
        "fleet: store {} open ({} entries, {} segments{})",
        dir.display(),
        stats.entries,
        stats.segments,
        if stats.quarantined > 0 {
            format!(", {} QUARANTINED", stats.quarantined)
        } else {
            String::new()
        },
    );
    Ok(Some(store))
}

fn run_dynamic(args: &Args) -> ExitCode {
    let churn = ChurnSpec {
        edge_delete_frac: args.edge_churn,
        edge_insert_frac: args.edge_churn,
        node_delete_frac: args.node_churn,
        node_insert_frac: args.node_churn,
        arrival_degree: args.arrival_degree,
        model: args.churn_model,
    };
    let plan = DynamicPlan::sweep(
        &args.families,
        &args.sizes,
        &args.algos,
        &args.strategies,
        args.phases,
        churn,
        args.trials,
        args.seed,
        args.execution,
    );
    eprintln!(
        "fleet: dynamic plan, {} jobs ({} families x {} sizes x {} algorithms x {} strategies), \
         {} phases per trial, {} trials total",
        plan.jobs.len(),
        args.families.len(),
        args.sizes.len(),
        args.algos.len(),
        args.strategies.len(),
        args.phases,
        plan.total_trials(),
    );
    if args.dry_run {
        for (i, job) in plan.jobs.iter().enumerate() {
            println!("job {i:4}  {}  x{}", job.label(), job.trials);
        }
        return ExitCode::SUCCESS;
    }
    let config = FleetConfig {
        threads: args.threads,
        shard_size: args.shard_size,
        max_in_flight: 0,
        progress: args.progress,
    };

    let mut store = match open_store(&args.store) {
        Ok(store) => store,
        Err(e) => return fail(e),
    };
    let mut jsonl = None;
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("fleet: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        match std::fs::File::create(dir.join("phases.jsonl")) {
            Ok(f) => jsonl = Some(PhaseJsonlSink::new(BufWriter::new(f))),
            Err(e) => {
                eprintln!("fleet: cannot create phases.jsonl: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut sinks: Vec<&mut dyn sleepy_fleet::sink::PhaseSink> = Vec::new();
    if let Some(s) = jsonl.as_mut() {
        sinks.push(s);
    }

    let out =
        match run_dynamic_plan_cached(&plan, &config, &mut sinks, store.as_mut(), !args.no_cache) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("fleet: dynamic run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
    let report = out.report(&plan);

    // Console summary: one row per (job, phase).
    let mut table = TextTable::new(vec![
        "job",
        "phase",
        "trials",
        "avg awake (mean)",
        "repair scope",
        "carried",
        "valid",
    ]);
    for j in &report.jobs {
        for p in &j.phases {
            table.row(vec![
                if p.phase == 0 { j.label.clone() } else { String::new() },
                p.phase.to_string(),
                p.trials.to_string(),
                format!("{:.3}", p.node_avg_awake.mean),
                format!("{:.1}", p.repair_scope_mean),
                format!("{:.1}", p.carried_mean),
                format!("{:.0}%", 100.0 * p.valid_fraction),
            ]);
        }
    }
    println!("{}", table.render());
    for j in &report.jobs {
        if j.updates.count > 0 {
            println!(
                "{}: {} updates absorbed, amortized {:.4} awake rounds/update \
                 (max {:.1}, mean scope {:.2}, {} free)",
                j.label,
                j.updates.count,
                j.updates.awake_mean,
                j.updates.awake_max,
                j.updates.scope_mean,
                j.updates.zero_scope,
            );
        }
    }
    print_run_line(
        &format!("{} dynamic trials ({} phases each)", out.total_trials, args.phases),
        out.elapsed,
        sleepy_fleet::pool::resolve_threads(args.threads),
        store.is_some().then_some(&out.cache),
    );

    if let Some(dir) = &args.out {
        let write_all = || -> std::io::Result<()> {
            write_dynamic_aggregate_json(
                BufWriter::new(std::fs::File::create(dir.join("dynamic_aggregates.json"))?),
                &report,
            )?;
            if store.is_some() {
                let text =
                    serde_json::to_string_pretty(&out.cache.to_json()).expect("stats serialize");
                std::fs::write(dir.join("cache_stats.json"), format!("{text}\n"))?;
            }
            Ok(())
        };
        if let Err(e) = write_all() {
            eprintln!("fleet: writing aggregates failed: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "fleet: wrote {}/phases.jsonl, dynamic_aggregates.json{}",
            dir.display(),
            if store.is_some() { ", cache_stats.json" } else { "" },
        );
    }
    if let Err(e) =
        finish_telemetry(args.out.as_deref(), args.trace_out.as_deref(), "fleet", !args.progress)
    {
        return fail(e);
    }
    ExitCode::SUCCESS
}

fn print_static_table(report: &FleetReport) {
    let mut table = TextTable::new(vec![
        "job",
        "trials",
        "avg awake (mean/p99)",
        "worst awake p99",
        "worst round p99",
        "valid",
    ]);
    for j in &report.jobs {
        table.row(vec![
            j.label.clone(),
            j.trials.to_string(),
            format!("{:.2} / {:.2}", j.node_avg_awake.mean, j.node_avg_awake.p99),
            format!("{:.0}", j.worst_awake.p99),
            format!("{:.0}", j.worst_round.p99),
            format!("{:.0}%", 100.0 * j.valid_fraction),
        ]);
    }
    println!("{}", table.render());
}

/// Writes `aggregates.json` + `aggregates.csv` (and, for cached runs,
/// `cache_stats.json`) into `dir`. Cache stats live in their own file
/// on purpose: `aggregates.json` stays byte-identical between cold and
/// warm runs of the same plan.
fn write_static_outputs(
    dir: &Path,
    report: &FleetReport,
    cache: Option<CacheStats>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    write_aggregate_json(
        BufWriter::new(std::fs::File::create(dir.join("aggregates.json"))?),
        report,
    )?;
    write_aggregate_csv(
        BufWriter::new(std::fs::File::create(dir.join("aggregates.csv"))?),
        report,
    )?;
    if let Some(cache) = cache {
        let text = serde_json::to_string_pretty(&cache.to_json()).expect("stats serialize");
        std::fs::write(dir.join("cache_stats.json"), format!("{text}\n"))?;
    }
    Ok(())
}

fn run_static(args: &Args) -> ExitCode {
    let plan = TrialPlan::sweep(
        &args.families,
        &args.sizes,
        &args.algos,
        args.trials,
        args.seed,
        args.execution,
    );
    eprintln!(
        "fleet: {} jobs ({} families x {} sizes x {} algorithms), {} trials total",
        plan.jobs.len(),
        args.families.len(),
        args.sizes.len(),
        args.algos.len(),
        plan.total_trials(),
    );
    if let Some(path) = &args.emit_plan {
        if let Err(e) = std::fs::write(path, format!("{}\n", plan_to_json(&plan))) {
            return fail(format!("cannot write {}: {e}", path.display()));
        }
        eprintln!("fleet: wrote plan to {}", path.display());
    }
    if args.dry_run {
        for (i, job) in plan.jobs.iter().enumerate() {
            println!("job {i:4}  {}  x{}", job.label(), job.trials);
        }
        return ExitCode::SUCCESS;
    }
    let config = FleetConfig {
        threads: args.threads,
        shard_size: args.shard_size,
        max_in_flight: 0,
        progress: args.progress,
    };

    let mut store = match open_store(&args.store) {
        Ok(store) => store,
        Err(e) => return fail(e),
    };

    let mut jsonl = None;
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(format!("cannot create {}: {e}", dir.display()));
        }
        match std::fs::File::create(dir.join("trials.jsonl")) {
            Ok(f) => jsonl = Some(JsonlSink::new(BufWriter::new(f))),
            Err(e) => return fail(format!("cannot create trials.jsonl: {e}")),
        }
    }
    let mut sinks: Vec<&mut dyn sleepy_fleet::sink::TrialSink> = Vec::new();
    if let Some(s) = jsonl.as_mut() {
        sinks.push(s);
    }

    let out = match run_plan_cached(&plan, &config, &mut sinks, store.as_mut(), !args.no_cache) {
        Ok(out) => out,
        Err(e) => return fail(format!("run failed: {e}")),
    };
    let report = out.report(&plan);

    print_static_table(&report);
    print_run_line(
        &format!("{} trials", out.total_trials),
        out.elapsed,
        sleepy_fleet::pool::resolve_threads(args.threads),
        store.is_some().then_some(&out.cache),
    );

    if let Some(dir) = &args.out {
        let cache = store.is_some().then_some(out.cache);
        if let Err(e) = write_static_outputs(dir, &report, cache) {
            return fail(format!("writing aggregates failed: {e}"));
        }
        eprintln!(
            "fleet: wrote {}/trials.jsonl, aggregates.json, aggregates.csv{}",
            dir.display(),
            if cache.is_some() { ", cache_stats.json" } else { "" },
        );
    }
    // Protocol flight recorder: a separate engine replay AFTER the
    // measured run, so the artifacts above are already on disk (and
    // byte-identical) before any recording happens. Host-level spans
    // live here, not in the recorder (crates/fleet/src/scope.rs is in
    // the lint `pure` zone).
    if args.round_timeline {
        let dir = args.out.as_deref().expect("checked in parse_args");
        let path = dir.join("round_timeline.jsonl");
        let _span = sleepy_telemetry::span!("scope", "round_timeline");
        match sleepy_fleet::write_round_timeline(&plan, args.threads, &path) {
            Ok(trials) => {
                eprintln!("fleet: wrote {} ({trials} trials)", path.display());
            }
            Err(e) => return fail(format!("round timeline failed: {e}")),
        }
    }
    if let Some(path) = &args.protocol_trace {
        let _span = sleepy_telemetry::span!("scope", "protocol_trace");
        if let Err(e) = sleepy_fleet::write_protocol_trace(&plan, path) {
            return fail(format!("protocol trace failed: {e}"));
        }
        eprintln!("fleet: wrote protocol trace {}", path.display());
    }
    if let Err(e) =
        finish_telemetry(args.out.as_deref(), args.trace_out.as_deref(), "fleet", !args.progress)
    {
        return fail(e);
    }
    ExitCode::SUCCESS
}
