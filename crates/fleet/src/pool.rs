//! The worker pool: dynamic (work-stealing) shard claiming with
//! deterministic result ordering.
//!
//! Scheduling is dynamic — each worker claims the next unclaimed shard
//! from a shared atomic counter, so fast workers steal work the slow
//! ones never reach — but *results* are totally ordered by shard index:
//! the collector releases shard outputs strictly in order, holding at
//! most a bounded number of out-of-order shards in flight. Determinism
//! therefore never depends on thread count or timing.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

/// Resolves a thread-count request: 0 means "all available cores".
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    }
}

/// Applies `f` to every index in `0..count` on `threads` workers
/// (0 = auto), returning results in index order and the smallest-index
/// error if any trial fails. This is the shared low-level primitive for
/// experiments whose trial bodies don't fit the declarative
/// [`TrialPlan`](crate::TrialPlan) form; the first error wins by *index*
/// (not by wall-clock), so error reporting is deterministic too.
///
/// # Errors
///
/// The error produced by the smallest failing index.
pub fn deterministic_map<T, E, F>(count: usize, threads: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    let mut out = Vec::with_capacity(count);
    let window = 2 * resolve_threads(threads);
    run_shards_ordered(count, threads, window, f, |_, v| {
        out.push(v);
        Ok(())
    })?;
    Ok(out)
}

/// A sliding-window gate bounding how far ahead of the in-order
/// emission frontier workers may run: shard `i` may start only once
/// `i < emitted + window`. The head shard (`i == emitted`) always
/// satisfies the predicate, so the pipeline can never deadlock, and at
/// most `window` shard outputs ever sit buffered ahead of the collector.
struct WindowGate {
    state: Mutex<GateState>,
    advanced: Condvar,
    window: usize,
}

struct GateState {
    emitted: usize,
    cancelled: bool,
}

impl WindowGate {
    fn new(window: usize) -> Self {
        WindowGate {
            state: Mutex::new(GateState { emitted: 0, cancelled: false }),
            advanced: Condvar::new(),
            window,
        }
    }

    /// Blocks until `shard` enters the window; `false` means the run
    /// was cancelled.
    fn wait_for(&self, shard: usize) -> bool {
        let mut s = self.state.lock().expect("gate poisoned");
        while !s.cancelled && shard >= s.emitted + self.window {
            s = self.advanced.wait(s).expect("gate poisoned");
        }
        !s.cancelled
    }

    /// Advances the emission frontier by one shard.
    fn advance(&self) {
        self.state.lock().expect("gate poisoned").emitted += 1;
        self.advanced.notify_all();
    }

    /// Cancels the run, releasing every waiting worker.
    fn cancel(&self) {
        self.state.lock().expect("gate poisoned").cancelled = true;
        self.advanced.notify_all();
    }
}

/// Runs `shard_count` shards on a worker pool and feeds each shard's
/// output to `collect` **in shard-index order**, regardless of which
/// worker finished it when. `run_shard` executes on worker threads;
/// `collect` executes on the calling thread. At most `max_in_flight`
/// shard outputs are buffered waiting for their turn; workers block
/// once the budget is exhausted, bounding memory.
///
/// # Errors
///
/// The error of the smallest-index failing shard.
pub fn run_shards_ordered<T, E, F, C>(
    shard_count: usize,
    threads: usize,
    max_in_flight: usize,
    run_shard: F,
    mut collect: C,
) -> Result<(), E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
    C: FnMut(usize, T) -> Result<(), E>,
{
    let workers = resolve_threads(threads).min(shard_count.max(1));
    sleepy_telemetry::gauge_max("pool.workers", workers as u64);
    if workers <= 1 || shard_count <= 1 {
        for i in 0..shard_count {
            let r = {
                let _span = sleepy_telemetry::span!("pool", "shard", {"shard": i});
                sleepy_telemetry::counter_add("pool.shards", 1);
                run_shard(i)
            };
            collect(i, r?)?;
        }
        return Ok(());
    }
    let gate = WindowGate::new(max_in_flight.max(workers));
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<(usize, Result<T, E>)>();
    let mut collect_err: Option<E> = None;
    let mut worker_err: Option<E> = None;
    std::thread::scope(|scope| {
        for w in 0..workers {
            let tx = tx.clone();
            let gate = &gate;
            let next = &next;
            let stop = &stop;
            let run_shard = &run_shard;
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= shard_count {
                    break;
                }
                if !gate.wait_for(i) {
                    break;
                }
                let _span = sleepy_telemetry::span!("pool", "shard", {"shard": i, "worker": w});
                sleepy_telemetry::counter_add("pool.shards", 1);
                // A "steal": dynamic claiming handed this shard to a
                // different worker than static round-robin would have.
                if i % workers != w {
                    sleepy_telemetry::counter_add("pool.steals", 1);
                }
                let r = run_shard(i);
                if r.is_err() {
                    stop.store(true, Ordering::Relaxed);
                }
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // In-order collection: hold out-of-order shards until their
        // predecessors arrive.
        let mut pending: BTreeMap<usize, Result<T, E>> = BTreeMap::new();
        let mut next_emit = 0usize;
        for (i, r) in rx {
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next_emit) {
                gate.advance();
                match r {
                    Ok(v) => {
                        if worker_err.is_none() && collect_err.is_none() {
                            if let Err(e) = collect(next_emit, v) {
                                collect_err = Some(e);
                                stop.store(true, Ordering::Relaxed);
                                gate.cancel();
                            }
                        }
                    }
                    Err(e) => {
                        // Smallest failing index wins deterministically:
                        // shards before it were already emitted in order.
                        // A collect error always has a smaller index than
                        // any worker error still draining (the collector
                        // stops consuming once it fails), so don't let a
                        // later worker error mask it.
                        if worker_err.is_none() && collect_err.is_none() {
                            worker_err = Some(e);
                        }
                        stop.store(true, Ordering::Relaxed);
                        gate.cancel();
                    }
                }
                next_emit += 1;
            }
        }
    });
    // collect_err first: it was recorded at a smaller shard index than
    // any worker error that drained afterwards.
    if let Some(e) = collect_err {
        return Err(e);
    }
    if let Some(e) = worker_err {
        return Err(e);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_map_orders_and_errors() {
        let ok: Result<Vec<usize>, ()> = deterministic_map(50, 4, |i| Ok(i * 2));
        assert_eq!(ok.unwrap(), (0..50).map(|i| i * 2).collect::<Vec<_>>());
        let err: Result<Vec<usize>, usize> =
            deterministic_map(50, 4, |i| if i == 30 { Err(i) } else { Ok(i) });
        assert_eq!(err.unwrap_err(), 30);
    }

    #[test]
    fn deterministic_map_single_threaded_and_empty() {
        let one: Result<Vec<usize>, ()> = deterministic_map(1, 8, Ok);
        assert_eq!(one.unwrap(), vec![0]);
        let none: Result<Vec<usize>, ()> = deterministic_map(0, 8, Ok);
        assert_eq!(none.unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn shards_collect_in_order_across_thread_counts() {
        for threads in [1, 2, 4, 8] {
            let mut seen = Vec::new();
            run_shards_ordered::<usize, (), _, _>(
                20,
                threads,
                4,
                |i| {
                    // Perturb completion order: earlier shards take longer.
                    std::thread::sleep(std::time::Duration::from_micros(
                        ((20 - i) % 5) as u64 * 50,
                    ));
                    Ok(i * i)
                },
                |i, v| {
                    seen.push((i, v));
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(seen, (0..20).map(|i| (i, i * i)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn shard_error_is_smallest_failing_index() {
        for threads in [2, 8] {
            let err = run_shards_ordered::<usize, usize, _, _>(
                30,
                threads,
                4,
                |i| if i % 7 == 5 { Err(i) } else { Ok(i) },
                |_, _| Ok(()),
            )
            .unwrap_err();
            assert_eq!(err, 5);
        }
    }

    #[test]
    fn collector_error_propagates() {
        let err = run_shards_ordered::<usize, String, _, _>(10, 2, 4, Ok, |i, _| {
            if i == 3 {
                Err("sink broke".to_string())
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        assert_eq!(err, "sink broke");
    }
}
