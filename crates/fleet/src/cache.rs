//! Result-cache glue between the fleet runner and [`sleepy_store`]:
//! trial keys, the trial-payload codec, and cache-hit accounting.
//!
//! A trial is addressed by `(job content key, trial seed)` — see
//! [`JobSpec::key`] for why the *seed*, not the trial index, is the
//! trial half of the address. The payload is the full
//! [`ComplexityReport`], encoded field-by-field so the on-disk format
//! is an explicit contract. Every numeric field round-trips exactly
//! (floats are serialized in shortest-round-trip form), which is what
//! makes a warm-cache rerun's aggregates byte-identical to the cold
//! run's.

use crate::measure::ComplexityReport;
use crate::spec::JobSpec;
use serde::{Serialize, Value};
use sleepy_net::ComplexitySummary;

/// Cache-hit accounting for one run. Serialized to
/// `cache_stats.json` by the CLI — deliberately *not* part of
/// [`FleetReport`](crate::FleetReport), whose bytes must not differ
/// between a cold and a warm run of the same plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Trials served from the store without executing.
    pub hits: u64,
    /// Trials actually executed.
    pub executed: u64,
    /// Freshly executed results written back to the store.
    pub stored: u64,
}

impl CacheStats {
    /// Fraction of trials served from the cache (1.0 for an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.executed;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The serializable JSON document (`hits`, `executed`, `stored`,
    /// `hit_rate`).
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "hits": self.hits,
            "executed": self.executed,
            "stored": self.stored,
            "hit_rate": self.hit_rate()
        })
    }
}

/// The store key of one trial: the job's content key plus the trial
/// seed in fixed-width hex.
pub fn trial_key(job_key: &str, seed: u64) -> String {
    format!("{job_key}/t{seed:016x}")
}

/// The store key of trial `seed` of `job` in a plan rooted at
/// `base_seed` (convenience over [`trial_key`]).
pub fn job_trial_key(job: &JobSpec, base_seed: u64, seed: u64) -> String {
    trial_key(&job.key(base_seed), seed)
}

/// Encodes a trial report as the store payload.
pub fn report_to_value(r: &ComplexityReport) -> Value {
    serde_json::to_value(r).expect("report serializes")
}

/// Decodes a store payload back into a trial report. `None` means the
/// payload does not have the expected shape (e.g. a store written by an
/// incompatible version) — callers treat that as a cache miss.
pub fn report_from_value(v: &Value) -> Option<ComplexityReport> {
    let s = v.get("summary")?;
    Some(ComplexityReport {
        algo: v.get("algo")?.as_str()?.to_string(),
        n: v.get("n")?.as_u64()? as usize,
        summary: ComplexitySummary {
            n: s.get("n")?.as_u64()? as usize,
            node_avg_awake: s.get("node_avg_awake")?.as_f64()?,
            worst_awake: s.get("worst_awake")?.as_u64()?,
            worst_round: s.get("worst_round")?.as_u64()?,
            node_avg_round: s.get("node_avg_round")?.as_f64()?,
            active_rounds: s.get("active_rounds")?.as_u64()?,
            total_messages: s.get("total_messages")?.as_u64()?,
            dropped_messages: s.get("dropped_messages")?.as_u64()?,
            total_bits: s.get("total_bits")?.as_u64()?,
        },
        mis_size: v.get("mis_size")?.as_u64()? as usize,
        valid: match v.get("valid")? {
            Value::Bool(b) => *b,
            _ => return None,
        },
        base_timeouts: v.get("base_timeouts")?.as_u64()? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure_once, AlgoKind, Execution};
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    #[test]
    fn report_round_trips_exactly() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 64).instance(5).unwrap();
        let r = measure_once(&g, AlgoKind::SleepingMis, 11, Execution::Auto).unwrap();
        let v = report_to_value(&r);
        // Through text, as the store does.
        let text = serde_json::to_string(&v).unwrap();
        let back = report_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.algo, r.algo);
        assert_eq!(back.n, r.n);
        assert_eq!(back.mis_size, r.mis_size);
        assert_eq!(back.valid, r.valid);
        assert_eq!(back.base_timeouts, r.base_timeouts);
        assert_eq!(back.summary.node_avg_awake.to_bits(), r.summary.node_avg_awake.to_bits());
        assert_eq!(back.summary.node_avg_round.to_bits(), r.summary.node_avg_round.to_bits());
        assert_eq!(back.summary.worst_awake, r.summary.worst_awake);
        assert_eq!(back.summary.worst_round, r.summary.worst_round);
        assert_eq!(back.summary.total_messages, r.summary.total_messages);
        assert_eq!(back.summary.total_bits, r.summary.total_bits);
    }

    #[test]
    fn malformed_payload_is_a_miss() {
        assert!(report_from_value(&serde_json::json!({"algo": "x"})).is_none());
        assert!(report_from_value(&serde_json::json!(null)).is_none());
        assert!(report_from_value(&serde_json::json!(3u64)).is_none());
    }

    #[test]
    fn trial_keys_discriminate() {
        let job = JobSpec::new(Workload::new(GraphFamily::Cycle, 32), AlgoKind::SleepingMis, 4);
        let k = job_trial_key(&job, 7, 0xAB);
        assert!(k.ends_with("/t00000000000000ab"));
        assert_ne!(k, job_trial_key(&job, 7, 0xAC));
        assert_ne!(k, job_trial_key(&job, 8, 0xAB));
    }

    #[test]
    fn hit_rate_edge_cases() {
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
        let s = CacheStats { hits: 3, executed: 1, stored: 1 };
        assert_eq!(s.hit_rate(), 0.75);
        assert!(serde_json::to_string(&s.to_json()).unwrap().contains("\"hit_rate\":0.75"));
    }
}
