//! Result-cache glue between the fleet runner and [`sleepy_store`]:
//! trial keys, the trial- and phase-payload codecs, and cache-hit
//! accounting.
//!
//! A static trial is addressed by `(job content key, trial seed)` — see
//! [`JobSpec::key`] for why the *seed*, not the trial index, is the
//! trial half of the address. A dynamic trial stores one record **per
//! phase**, addressed by `(dynamic job key, trial seed, phase index)`;
//! a warm lookup only hits when *every* phase of the trial is present
//! (phases can't resume mid-trial — membership state isn't stored).
//!
//! Static and dynamic records are **namespaced** (`s/` vs `d/` key
//! prefixes) so both kinds can share one store directory — mixed
//! stores GC, merge, and dedup without any possibility of a static
//! trial key colliding with a dynamic phase key.
//!
//! Payloads are encoded field-by-field so the on-disk format is an
//! explicit contract. Every numeric field round-trips exactly (floats
//! are serialized in shortest-round-trip form), which is what makes a
//! warm-cache rerun's aggregates byte-identical to the cold run's.

use crate::measure::{ComplexityReport, DynamicReport, PhaseReport, UpdateKind, UpdateRecord};
use crate::spec::JobSpec;
use serde::{Serialize, Value};
use sleepy_net::ComplexitySummary;
use sleepy_store::Store;

/// Cache-hit accounting for one key namespace (`s/` static trials or
/// `d/` dynamic trials) of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct NamespaceStats {
    /// Trials served from the store without executing.
    pub hits: u64,
    /// Trials actually executed.
    pub executed: u64,
    /// Freshly executed results written back to the store.
    pub stored: u64,
}

impl NamespaceStats {
    /// Fraction of trials served from the cache (1.0 for an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.executed;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The serializable JSON document (`hits`, `executed`, `stored`,
    /// `hit_rate`).
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "hits": self.hits,
            "executed": self.executed,
            "stored": self.stored,
            "hit_rate": self.hit_rate()
        })
    }
}

/// Cache-hit accounting for one run. Serialized to
/// `cache_stats.json` by the CLI — deliberately *not* part of
/// [`FleetReport`](crate::FleetReport), whose bytes must not differ
/// between a cold and a warm run of the same plan.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Trials served from the store without executing.
    pub hits: u64,
    /// Trials actually executed.
    pub executed: u64,
    /// Freshly executed results written back to the store.
    pub stored: u64,
    /// The static (`s/`) namespace's share of the totals.
    pub static_ns: NamespaceStats,
    /// The dynamic (`d/`) namespace's share of the totals.
    pub dynamic_ns: NamespaceStats,
}

impl CacheStats {
    /// Fraction of trials served from the cache (1.0 for an empty run).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.executed;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counts a cache hit in namespace `ns` ([`STATIC_NS`] or
    /// [`DYNAMIC_NS`]) and in the totals.
    pub fn count_hit(&mut self, ns: &str) {
        self.hits += 1;
        self.ns_mut(ns).hits += 1;
    }

    /// Counts an executed trial in namespace `ns` and in the totals.
    pub fn count_executed(&mut self, ns: &str) {
        self.executed += 1;
        self.ns_mut(ns).executed += 1;
    }

    /// Counts `n` freshly stored records in namespace `ns` and in the
    /// totals.
    pub fn count_stored(&mut self, ns: &str, n: u64) {
        self.stored += n;
        self.ns_mut(ns).stored += n;
    }

    fn ns_mut(&mut self, ns: &str) -> &mut NamespaceStats {
        if ns == DYNAMIC_NS {
            &mut self.dynamic_ns
        } else {
            &mut self.static_ns
        }
    }

    /// The serializable JSON document: the global `hits`, `executed`,
    /// `stored`, `hit_rate`, plus a `namespaces` section breaking the
    /// same numbers down by key namespace (`s/` static vs `d/`
    /// dynamic).
    pub fn to_json(&self) -> Value {
        serde_json::json!({
            "hits": self.hits,
            "executed": self.executed,
            "stored": self.stored,
            "hit_rate": self.hit_rate(),
            "namespaces": serde_json::json!({
                "s/": self.static_ns.to_json(),
                "d/": self.dynamic_ns.to_json()
            })
        })
    }

    /// Publishes the per-namespace numbers as telemetry counters
    /// (`cache.static.*`, `cache.dynamic.*`). No-op when telemetry is
    /// off.
    pub fn publish(&self) {
        if !sleepy_telemetry::enabled() {
            return;
        }
        for (label, ns) in [("static", &self.static_ns), ("dynamic", &self.dynamic_ns)] {
            sleepy_telemetry::counter_add(&format!("cache.{label}.hits"), ns.hits);
            sleepy_telemetry::counter_add(&format!("cache.{label}.executed"), ns.executed);
            sleepy_telemetry::counter_add(&format!("cache.{label}.stored"), ns.stored);
        }
    }
}

/// Key-namespace prefix of static trial records in a store.
pub const STATIC_NS: &str = "s/";

/// Key-namespace prefix of dynamic per-phase records in a store.
pub const DYNAMIC_NS: &str = "d/";

/// The store key of one static trial: the `s/` namespace, the job's
/// content key, and the trial seed in fixed-width hex.
pub fn trial_key(job_key: &str, seed: u64) -> String {
    format!("{STATIC_NS}{job_key}/t{seed:016x}")
}

/// The store key of trial `seed` of `job` in a plan rooted at
/// `base_seed` (convenience over [`trial_key`]).
pub fn job_trial_key(job: &JobSpec, base_seed: u64, seed: u64) -> String {
    trial_key(&job.key(base_seed), seed)
}

/// The store key of one phase of a dynamic trial: the `d/` namespace,
/// the dynamic job's content key ([`DynamicJobSpec::key`]), the trial
/// seed, and the phase index.
///
/// [`DynamicJobSpec::key`]: crate::DynamicJobSpec::key
pub fn dynamic_phase_key(job_key: &str, seed: u64, phase: usize) -> String {
    format!("{DYNAMIC_NS}{job_key}/t{seed:016x}/p{phase}")
}

/// Encodes a trial report as the store payload.
pub fn report_to_value(r: &ComplexityReport) -> Value {
    serde_json::to_value(r).expect("report serializes")
}

/// Decodes a store payload back into a trial report. `None` means the
/// payload does not have the expected shape (e.g. a store written by an
/// incompatible version) — callers treat that as a cache miss.
pub fn report_from_value(v: &Value) -> Option<ComplexityReport> {
    let s = v.get("summary")?;
    Some(ComplexityReport {
        algo: v.get("algo")?.as_str()?.to_string(),
        n: v.get("n")?.as_u64()? as usize,
        summary: ComplexitySummary {
            n: s.get("n")?.as_u64()? as usize,
            node_avg_awake: s.get("node_avg_awake")?.as_f64()?,
            worst_awake: s.get("worst_awake")?.as_u64()?,
            worst_round: s.get("worst_round")?.as_u64()?,
            node_avg_round: s.get("node_avg_round")?.as_f64()?,
            active_rounds: s.get("active_rounds")?.as_u64()?,
            total_messages: s.get("total_messages")?.as_u64()?,
            dropped_messages: s.get("dropped_messages")?.as_u64()?,
            // Serde-defaulted: absent in records written before the field
            // existed and omitted when zero.
            lost_messages: s.get("lost_messages").and_then(Value::as_u64).unwrap_or(0),
            total_bits: s.get("total_bits")?.as_u64()?,
        },
        mis_size: v.get("mis_size")?.as_u64()? as usize,
        valid: match v.get("valid")? {
            Value::Bool(b) => *b,
            _ => return None,
        },
        base_timeouts: v.get("base_timeouts")?.as_u64()? as usize,
    })
}

/// Encodes one phase of a dynamic trial as the store payload.
pub fn phase_to_value(p: &PhaseReport) -> Value {
    serde_json::to_value(p).expect("phase report serializes")
}

/// Decodes a store payload back into a phase report (`None` = cache
/// miss, as [`report_from_value`]).
pub fn phase_from_value(v: &Value) -> Option<PhaseReport> {
    let updates_v = v.get("updates")?.as_array()?;
    let mut updates = Vec::with_capacity(updates_v.len());
    for u in updates_v {
        updates.push(update_from_value(u)?);
    }
    Some(PhaseReport {
        phase: v.get("phase")?.as_u64()? as usize,
        report: report_from_value(v.get("report")?)?,
        m: v.get("m")?.as_u64()? as usize,
        repair_scope: v.get("repair_scope")?.as_u64()? as usize,
        carried: v.get("carried")?.as_u64()? as usize,
        updates,
    })
}

fn update_from_value(v: &Value) -> Option<UpdateRecord> {
    let kind = match v.get("kind")?.as_str()? {
        "EdgeDelete" => UpdateKind::EdgeDelete,
        "EdgeInsert" => UpdateKind::EdgeInsert,
        "NodeDeparture" => UpdateKind::NodeDeparture,
        "NodeArrival" => UpdateKind::NodeArrival,
        _ => return None,
    };
    Some(UpdateRecord {
        kind,
        scope: v.get("scope")?.as_u64()? as usize,
        awake_sum: v.get("awake_sum")?.as_f64()?,
    })
}

/// Reassembles a whole dynamic trial from its per-phase store records.
/// `None` unless **every** phase `0..phases` is present, decodes, and
/// carries its own index — a partially stored trial is a miss (the
/// runner re-executes it whole and re-stores all phases).
pub fn dynamic_report_from_store(
    store: &Store,
    job_key: &str,
    seed: u64,
    phases: usize,
) -> Option<DynamicReport> {
    let mut out = Vec::with_capacity(phases);
    for phase in 0..phases {
        let p = phase_from_value(store.get(&dynamic_phase_key(job_key, seed, phase))?)?;
        if p.phase != phase {
            return None;
        }
        out.push(p);
    }
    Some(DynamicReport { phases: out })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{measure_once, AlgoKind, Execution};
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    #[test]
    fn report_round_trips_exactly() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 64).instance(5).unwrap();
        let r = measure_once(&g, AlgoKind::SleepingMis, 11, Execution::Auto).unwrap();
        let v = report_to_value(&r);
        // Through text, as the store does.
        let text = serde_json::to_string(&v).unwrap();
        let back = report_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
        assert_eq!(back.algo, r.algo);
        assert_eq!(back.n, r.n);
        assert_eq!(back.mis_size, r.mis_size);
        assert_eq!(back.valid, r.valid);
        assert_eq!(back.base_timeouts, r.base_timeouts);
        assert_eq!(back.summary.node_avg_awake.to_bits(), r.summary.node_avg_awake.to_bits());
        assert_eq!(back.summary.node_avg_round.to_bits(), r.summary.node_avg_round.to_bits());
        assert_eq!(back.summary.worst_awake, r.summary.worst_awake);
        assert_eq!(back.summary.worst_round, r.summary.worst_round);
        assert_eq!(back.summary.total_messages, r.summary.total_messages);
        assert_eq!(back.summary.total_bits, r.summary.total_bits);
    }

    #[test]
    fn malformed_payload_is_a_miss() {
        assert!(report_from_value(&serde_json::json!({"algo": "x"})).is_none());
        assert!(report_from_value(&serde_json::json!(null)).is_none());
        assert!(report_from_value(&serde_json::json!(3u64)).is_none());
    }

    #[test]
    fn trial_keys_discriminate() {
        let job = JobSpec::new(Workload::new(GraphFamily::Cycle, 32), AlgoKind::SleepingMis, 4);
        let k = job_trial_key(&job, 7, 0xAB);
        assert!(k.starts_with(STATIC_NS));
        assert!(k.ends_with("/t00000000000000ab"));
        assert_ne!(k, job_trial_key(&job, 7, 0xAC));
        assert_ne!(k, job_trial_key(&job, 8, 0xAB));
    }

    #[test]
    fn static_and_dynamic_keys_are_namespaced_apart() {
        // Regression for the shared-store collision audit: even a
        // pathological job key that *textually embeds* a full static
        // trial key cannot collide across namespaces, because the first
        // path segment differs.
        let static_key = trial_key("job", 1);
        let dynamic_key = dynamic_phase_key("job", 1, 0);
        assert!(static_key.starts_with(STATIC_NS));
        assert!(dynamic_key.starts_with(DYNAMIC_NS));
        assert_ne!(static_key, dynamic_key);
        // Phases of one trial and trials of one job stay distinct.
        assert_ne!(dynamic_phase_key("job", 1, 0), dynamic_phase_key("job", 1, 1));
        assert_ne!(dynamic_phase_key("job", 1, 0), dynamic_phase_key("job", 2, 0));
    }

    #[test]
    fn phase_report_round_trips_exactly() {
        use crate::measure::{measure_dynamic, RepairStrategy};
        use crate::workload::DynamicWorkload;
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::GnpAvgDeg(6.0), 80),
            3,
            sleepy_graph::ChurnSpec::edges(0.1),
        );
        let r = measure_dynamic(
            &w,
            AlgoKind::SleepingMis,
            4,
            Execution::Auto,
            RepairStrategy::Incremental,
        )
        .unwrap();
        for p in &r.phases {
            // Through text, as the store does.
            let text = serde_json::to_string(&phase_to_value(p)).unwrap();
            let back = phase_from_value(&serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(back.phase, p.phase);
            assert_eq!(back.m, p.m);
            assert_eq!(back.repair_scope, p.repair_scope);
            assert_eq!(back.carried, p.carried);
            assert_eq!(back.updates.len(), p.updates.len());
            for (a, b) in back.updates.iter().zip(&p.updates) {
                assert_eq!(a.kind, b.kind);
                assert_eq!(a.scope, b.scope);
                assert_eq!(a.awake_sum.to_bits(), b.awake_sum.to_bits());
            }
            assert_eq!(
                back.report.summary.node_avg_awake.to_bits(),
                p.report.summary.node_avg_awake.to_bits()
            );
            assert_eq!(back.report.mis_size, p.report.mis_size);
        }
        assert!(phase_from_value(&serde_json::json!({"phase": 0})).is_none());
    }

    #[test]
    fn hit_rate_edge_cases() {
        assert_eq!(CacheStats::default().hit_rate(), 1.0);
        let s = CacheStats { hits: 3, executed: 1, stored: 1, ..CacheStats::default() };
        assert_eq!(s.hit_rate(), 0.75);
        assert!(serde_json::to_string(&s.to_json()).unwrap().contains("\"hit_rate\":0.75"));
    }

    #[test]
    fn namespace_counting_splits_static_from_dynamic() {
        let mut s = CacheStats::default();
        s.count_hit(STATIC_NS);
        s.count_executed(STATIC_NS);
        s.count_stored(STATIC_NS, 1);
        s.count_hit(DYNAMIC_NS);
        s.count_hit(DYNAMIC_NS);
        s.count_executed(DYNAMIC_NS);
        s.count_stored(DYNAMIC_NS, 3);
        assert_eq!((s.hits, s.executed, s.stored), (3, 2, 4));
        assert_eq!(s.static_ns, NamespaceStats { hits: 1, executed: 1, stored: 1 });
        assert_eq!(s.dynamic_ns, NamespaceStats { hits: 2, executed: 1, stored: 3 });
        let text = serde_json::to_string(&s.to_json()).unwrap();
        assert!(text.contains("\"namespaces\""));
        assert!(text.contains("\"s/\""));
        assert!(text.contains("\"d/\""));
        assert_eq!(s.dynamic_ns.hit_rate(), 2.0 / 3.0);
    }
}
