//! Plan files: serialize a [`TrialPlan`] to JSON and read it back.
//!
//! The multi-process coordinator hands each worker process the *exact*
//! plan (job order included — trial seeds depend on job position), via
//! a `plan.json` written next to the store. Writing uses the derived
//! serializer; reading is a hand-rolled decoder over the JSON value
//! tree, because the vendored offline `serde` stand-in has no typed
//! deserialization. Floats (graph-family parameters) round-trip
//! bit-exactly: they are printed in shortest-round-trip form.

use crate::error::FleetError;
use crate::measure::{AlgoKind, Execution};
use crate::spec::{JobSpec, TrialPlan};
use crate::workload::Workload;
use serde::Value;
use sleepy_baselines::BaselineKind;
use sleepy_graph::GraphFamily;

/// Renders a plan as pretty JSON (the `plan.json` format).
pub fn plan_to_json(plan: &TrialPlan) -> String {
    serde_json::to_string_pretty(plan).expect("plan serializes")
}

/// Parses a `plan.json` document back into a [`TrialPlan`].
///
/// # Errors
///
/// [`FleetError::Config`] describing the first malformed element.
pub fn plan_from_json(text: &str) -> Result<TrialPlan, FleetError> {
    let bad = |what: &str| FleetError::Config(format!("plan file: bad or missing {what}"));
    let v = serde_json::from_str(text)
        .map_err(|e| FleetError::Config(format!("plan file is not JSON: {e}")))?;
    let base_seed = v.get("base_seed").and_then(Value::as_u64).ok_or_else(|| bad("base_seed"))?;
    let jobs_v = v.get("jobs").and_then(Value::as_array).ok_or_else(|| bad("jobs"))?;
    let mut jobs = Vec::with_capacity(jobs_v.len());
    for (i, j) in jobs_v.iter().enumerate() {
        jobs.push(job_from_value(j).ok_or_else(|| bad(&format!("jobs[{i}]")))?);
    }
    Ok(TrialPlan { jobs, base_seed })
}

fn job_from_value(v: &Value) -> Option<JobSpec> {
    let w = v.get("workload")?;
    let workload = Workload {
        family: family_from_value(w.get("family")?)?,
        n: w.get("n")?.as_u64()? as usize,
    };
    Some(JobSpec {
        workload,
        algo: algo_from_value(v.get("algo")?)?,
        trials: v.get("trials")?.as_u64()? as usize,
        execution: match v.get("execution")?.as_str()? {
            "Auto" => Execution::Auto,
            "ForceEngine" => Execution::ForceEngine,
            _ => return None,
        },
    })
}

/// Decodes the derived enum encoding: unit variants are their name as a
/// string, tuple variants are a single-key object.
fn family_from_value(v: &Value) -> Option<GraphFamily> {
    if let Some(name) = v.as_str() {
        return match name {
            "Tree" => Some(GraphFamily::Tree),
            "Cycle" => Some(GraphFamily::Cycle),
            "Path" => Some(GraphFamily::Path),
            "Star" => Some(GraphFamily::Star),
            "Clique" => Some(GraphFamily::Clique),
            "Grid2d" => Some(GraphFamily::Grid2d),
            "Hypercube" => Some(GraphFamily::Hypercube),
            "Empty" => Some(GraphFamily::Empty),
            _ => None,
        };
    }
    let float = |name: &str| v.get(name).and_then(Value::as_f64);
    let int = |name: &str| v.get(name).and_then(Value::as_u64).map(|u| u as usize);
    if let Some(d) = float("GnpAvgDeg") {
        Some(GraphFamily::GnpAvgDeg(d))
    } else if let Some(c) = float("GnpLogDensity") {
        Some(GraphFamily::GnpLogDensity(c))
    } else if let Some(d) = float("GeometricAvgDeg") {
        Some(GraphFamily::GeometricAvgDeg(d))
    } else if let Some(d) = int("RandomRegular") {
        Some(GraphFamily::RandomRegular(d))
    } else {
        int("BarabasiAlbert").map(GraphFamily::BarabasiAlbert)
    }
}

fn algo_from_value(v: &Value) -> Option<AlgoKind> {
    if let Some(name) = v.as_str() {
        return match name {
            "SleepingMis" => Some(AlgoKind::SleepingMis),
            "FastSleepingMis" => Some(AlgoKind::FastSleepingMis),
            _ => None,
        };
    }
    match v.get("Baseline")?.as_str()? {
        "LubyA" => Some(AlgoKind::Baseline(BaselineKind::LubyA)),
        "LubyB" => Some(AlgoKind::Baseline(BaselineKind::LubyB)),
        "GreedyCrt" => Some(AlgoKind::Baseline(BaselineKind::GreedyCrt)),
        "Ghaffari" => Some(AlgoKind::Baseline(BaselineKind::Ghaffari)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ALL_ALGOS;

    fn full_plan() -> TrialPlan {
        // Every family (including awkward f64 params) × every algorithm.
        let families = [
            GraphFamily::GnpAvgDeg(8.0 + f64::EPSILON * 8.0),
            GraphFamily::GnpLogDensity(1.5),
            GraphFamily::RandomRegular(4),
            GraphFamily::GeometricAvgDeg(7.25),
            GraphFamily::BarabasiAlbert(3),
            GraphFamily::Tree,
            GraphFamily::Cycle,
            GraphFamily::Path,
            GraphFamily::Star,
            GraphFamily::Clique,
            GraphFamily::Grid2d,
            GraphFamily::Hypercube,
            GraphFamily::Empty,
        ];
        let mut plan = TrialPlan::new(0xFEED_BEEF_1234_5678);
        for (i, &family) in families.iter().enumerate() {
            let mut job =
                JobSpec::new(Workload::new(family, 16 + i), ALL_ALGOS[i % ALL_ALGOS.len()], i);
            if i % 2 == 0 {
                job.execution = Execution::ForceEngine;
            }
            plan.push(job);
        }
        plan
    }

    #[test]
    fn plan_round_trips_with_identical_keys() {
        let plan = full_plan();
        let text = plan_to_json(&plan);
        let back = plan_from_json(&text).unwrap();
        assert_eq!(back.base_seed, plan.base_seed);
        assert_eq!(back.jobs.len(), plan.jobs.len());
        for (a, b) in plan.jobs.iter().zip(&back.jobs) {
            // Content keys cover family (bit-exact f64 params), n, algo,
            // execution, and base seed.
            assert_eq!(a.key(plan.base_seed), b.key(back.base_seed));
            assert_eq!(a.trials, b.trials);
        }
        // And a second round trip is textually stable.
        assert_eq!(plan_to_json(&back), text);
    }

    #[test]
    fn malformed_plans_are_rejected() {
        assert!(plan_from_json("not json").is_err());
        assert!(plan_from_json("{}").is_err());
        assert!(plan_from_json("{\"base_seed\": 1, \"jobs\": 3}").is_err());
        assert!(plan_from_json("{\"base_seed\": 1, \"jobs\": [{\"trials\": 1}]}").is_err());
        let err = plan_from_json("{\"jobs\": [], \"base_seed\": -1}").unwrap_err();
        assert!(err.to_string().contains("base_seed"), "{err}");
    }
}
