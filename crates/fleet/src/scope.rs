//! sleepy-scope: the protocol-level flight recorder.
//!
//! Where `sleepy-telemetry` observes the *host* (thread pools, store
//! I/O, wall-clock), this module observes the *simulated protocol*:
//! which nodes were awake in which round, who slept, who decided, and
//! what every message did. It records by re-running a trial on the
//! message-passing engine with a [`RoundSeries`] (and optionally a full
//! [`Trace`]) streamed out of [`run_protocol_with_sink`]'s observer
//! hook, then cross-checks everything the trace says against the
//! engine's own [`RunMetrics`] accounting — any disagreement is a
//! [`FleetError::ScheduleDrift`], not a silently wrong plot.
//!
//! The recorder is a **pure side channel**: it runs *after* the normal
//! measured plan, on its own engine runs with the plan's own per-trial
//! seeds (the engine and the combinatorial executor are bit-identical,
//! so the recorded schedule is the schedule the reported numbers came
//! from). It never touches trial records, aggregates, or store
//! contents, and its own outputs are produced by an in-order
//! [`deterministic_map`], so they are byte-identical across thread
//! counts. The module sits in the `pure` sleepy-lint zone: no telemetry
//! calls, clocks, or hash collections here — host-level spans around
//! recording belong to the callers (the `fleet` CLI).
//!
//! [`run_protocol_with_sink`]: sleepy_net::run_protocol_with_sink

use crate::error::FleetError;
use crate::measure::AlgoKind;
use crate::pool::deterministic_map;
use crate::seed::SeedStream;
use crate::spec::TrialPlan;
use serde::Value;
use sleepy_baselines::run_baseline_with_sink;
use sleepy_graph::Graph;
use sleepy_mis::{run_sleeping_mis_with_sink, MisConfig};
use sleepy_net::{
    validate_series_against_metrics, validate_series_against_trace, validate_trace_against_metrics,
    EngineConfig, RoundRow, RoundSeries, RunMetrics, Tee, Trace, TraceBuffer, TraceEvent,
};
// sleepy-lint: allow(telemetry-purity): pure trace-document types and their exporter — plain
// functions of their arguments, no clocks, no global registry; the recording side channel
// (spans/counters/gauges) stays out of this module.
use sleepy_telemetry::{protocol_trace_value, ProtoCounter, ProtoProcess, ProtoTrack};
use std::io::Write as _;
use std::path::Path;

/// Per-node Chrome tracks are emitted only up to this node count; above
/// it a run's protocol trace degrades to counter series (a 10⁵-node
/// run would otherwise mean 10⁵ viewer threads).
pub const MAX_TRACK_NODES: usize = 128;

/// One recorded (and validated) trial: the per-round timeline, the
/// engine's metrics, and — when requested — the full event trace.
#[derive(Debug)]
pub struct RecordedTrial {
    /// One row per active round, in round order.
    pub rows: Vec<RoundRow>,
    /// The engine's own accounting, already cross-checked against the
    /// rows (and the trace, when present).
    pub metrics: RunMetrics,
    /// The full message-level event trace, if `full_trace` was set.
    pub trace: Option<Trace>,
}

/// Runs `algo` on `graph` through the message-passing engine with the
/// flight recorder attached, then validates the recording against the
/// engine's metrics. With `full_trace` the complete event trace is kept
/// and additionally cross-checked row by row against the timeline.
///
/// # Errors
///
/// Execution errors, or [`FleetError::ScheduleDrift`] if any validator
/// finds the trace and the metrics disagreeing.
pub fn record_round_series(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    full_trace: bool,
) -> Result<RecordedTrial, FleetError> {
    let engine = EngineConfig::default();
    let mut series = RoundSeries::new();
    let (metrics, trace) = if full_trace {
        let mut buffer = TraceBuffer::new(true);
        let mut tee = Tee::new(&mut buffer, &mut series);
        let metrics = run_recorded(graph, algo, seed, &engine, &mut tee)?;
        (metrics, Some(buffer.into_trace()))
    } else {
        (run_recorded(graph, algo, seed, &engine, &mut series)?, None)
    };
    let rows = series.into_rows();
    let drift = |what: &str, e: String| {
        FleetError::ScheduleDrift(format!("{algo} seed {seed:#x}: {what}: {e}"))
    };
    validate_series_against_metrics(&rows, &metrics)
        .map_err(|e| drift("timeline vs metrics", e))?;
    if let Some(trace) = &trace {
        validate_trace_against_metrics(trace, &metrics, true)
            .map_err(|e| drift("trace vs metrics", e))?;
        validate_series_against_trace(&rows, trace).map_err(|e| drift("timeline vs trace", e))?;
    }
    Ok(RecordedTrial { rows, metrics, trace })
}

fn run_recorded(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    engine: &EngineConfig,
    sink: &mut dyn sleepy_net::TraceSink,
) -> Result<RunMetrics, FleetError> {
    Ok(match algo {
        AlgoKind::SleepingMis => {
            run_sleeping_mis_with_sink(graph, MisConfig::alg1(seed), engine, sink)?.metrics
        }
        AlgoKind::FastSleepingMis => {
            run_sleeping_mis_with_sink(graph, MisConfig::alg2(seed), engine, sink)?.metrics
        }
        AlgoKind::Baseline(kind) => {
            run_baseline_with_sink(graph, kind, seed, engine, sink)?.metrics
        }
    })
}

/// Serializes one trial's timeline as JSONL: one object per active
/// round, each carrying the trial coordinates (`job`, `algo`,
/// `workload`, `trial`, `seed`) followed by the [`RoundRow`] fields.
fn timeline_lines(
    job: usize,
    algo: AlgoKind,
    workload_label: &str,
    trial: usize,
    seed: u64,
    rows: &[RoundRow],
) -> String {
    use serde::Serialize as _;
    let mut out = String::new();
    for row in rows {
        let mut fields = vec![
            ("job".to_string(), Value::UInt(job as u64)),
            ("algo".to_string(), Value::String(algo.to_string())),
            ("workload".to_string(), Value::String(workload_label.to_string())),
            ("trial".to_string(), Value::UInt(trial as u64)),
            ("seed".to_string(), Value::UInt(seed)),
        ];
        if let Value::Object(row_fields) = row.to_value() {
            fields.extend(row_fields);
        }
        out.push_str(&serde::value::to_compact_string(&Value::Object(fields)));
        out.push('\n');
    }
    out
}

/// Records every trial of `plan` and writes the per-round timeline to
/// `path` as `round_timeline.jsonl`-style JSONL, in plan order.
/// Recording runs on `threads` workers through [`deterministic_map`],
/// so the file is byte-identical for every thread count. Returns the
/// number of trials recorded.
///
/// # Errors
///
/// Execution, validation ([`FleetError::ScheduleDrift`]) and I/O
/// errors.
pub fn write_round_timeline(
    plan: &TrialPlan,
    threads: usize,
    path: &Path,
) -> Result<usize, FleetError> {
    let coords: Vec<(usize, usize)> = plan
        .jobs
        .iter()
        .enumerate()
        .flat_map(|(j, job)| (0..job.trials).map(move |t| (j, t)))
        .collect();
    let seeds = SeedStream::new(plan.base_seed);
    let chunks: Vec<String> = deterministic_map(coords.len(), threads, |i| {
        let (j, t) = coords[i];
        let job = &plan.jobs[j];
        let seed = seeds.trial_seed(j as u64, t as u64);
        let graph = job.workload.instance(seed)?;
        let recorded = record_round_series(&graph, job.algo, seed, false)?;
        Ok::<String, FleetError>(timeline_lines(
            j,
            job.algo,
            &job.workload.label(),
            t,
            seed,
            &recorded.rows,
        ))
    })?;
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for chunk in &chunks {
        file.write_all(chunk.as_bytes())?;
    }
    file.flush()?;
    Ok(coords.len())
}

/// Per-node awake intervals in rounds, replayed from a full trace:
/// `(first_awake_round, last_awake_round)` per contiguous awake
/// stretch, per node. Every node starts awake at round 0 and closes
/// its last interval at termination.
fn awake_intervals(trace: &Trace, n: usize) -> Vec<Vec<(u64, u64)>> {
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    let mut since: Vec<Option<u64>> = vec![Some(0); n];
    for e in &trace.events {
        match *e {
            TraceEvent::Sleep { round, node, .. } | TraceEvent::Terminate { round, node } => {
                if let Some(s) = since[node as usize].take() {
                    intervals[node as usize].push((s, round));
                }
            }
            TraceEvent::Wake { round, node } => since[node as usize] = Some(round),
            _ => {}
        }
    }
    intervals
}

/// Records trial 0 of every job in `plan` with a full trace and writes
/// one Chrome trace-event document to `path`: one process per job
/// (pid = job index + 1, so protocol pids stay clear of real host
/// pids), per-node awake tracks for runs up to [`MAX_TRACK_NODES`]
/// nodes, and `awake`/`sent` counter series for every run. Simulated
/// time maps 1 round to 1 µs. The file passes
/// [`sleepy_telemetry::validate_trace`] and loads in Perfetto alongside
/// the PR-6 host traces.
///
/// # Errors
///
/// Execution, validation ([`FleetError::ScheduleDrift`]) and I/O
/// errors.
pub fn write_protocol_trace(plan: &TrialPlan, path: &Path) -> Result<(), FleetError> {
    let seeds = SeedStream::new(plan.base_seed);
    let mut processes = Vec::with_capacity(plan.jobs.len());
    for (j, job) in plan.jobs.iter().enumerate() {
        if job.trials == 0 {
            continue;
        }
        let seed = seeds.trial_seed(j as u64, 0);
        let graph = job.workload.instance(seed)?;
        let recorded = record_round_series(&graph, job.algo, seed, true)?;
        let trace = recorded.trace.as_ref().expect("full_trace recordings keep the trace");
        let mut tracks = Vec::new();
        if graph.n() <= MAX_TRACK_NODES {
            for (v, spans) in awake_intervals(trace, graph.n()).into_iter().enumerate() {
                tracks.push(ProtoTrack {
                    tid: v as u64 + 1,
                    name: format!("node {v}"),
                    // 1 round = 1 µs; the +1 renders a 1-round stretch
                    // 1 µs wide instead of invisible.
                    spans: spans.into_iter().map(|(s, e)| (s, e + 1)).collect(),
                });
            }
        }
        let series = |f: fn(&RoundRow) -> u64| -> Vec<(u64, u64)> {
            let mut points: Vec<(u64, u64)> =
                recorded.rows.iter().map(|r| (r.round, f(r))).collect();
            points.push((recorded.metrics.total_rounds, 0));
            points
        };
        processes.push(ProtoProcess {
            pid: j as u64 + 1,
            name: job.label(),
            tracks,
            counters: vec![
                ProtoCounter { name: "awake".to_string(), points: series(|r| r.awake) },
                ProtoCounter { name: "sent".to_string(), points: series(|r| r.sent) },
            ],
        });
    }
    let doc = protocol_trace_value(&processes);
    let mut text = serde::value::to_compact_string(&doc);
    text.push('\n');
    std::fs::write(path, text)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::ALL_ALGOS;
    use crate::spec::JobSpec;
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    #[test]
    fn every_algorithm_records_and_validates() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 60).instance(11).unwrap();
        for algo in ALL_ALGOS {
            let rec =
                record_round_series(&g, algo, 11, true).unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert_eq!(rec.rows.len() as u64, rec.metrics.active_rounds, "{algo}");
            let awake_sum: u64 = rec.metrics.per_node.iter().map(|m| m.awake_rounds).sum();
            assert_eq!(rec.rows.last().unwrap().cum_awake, awake_sum, "{algo}");
            assert!(rec.trace.is_some());
        }
    }

    #[test]
    fn awake_intervals_cover_exactly_the_awake_rounds() {
        let g = Workload::new(GraphFamily::Tree, 40).instance(3).unwrap();
        let rec = record_round_series(&g, AlgoKind::SleepingMis, 3, true).unwrap();
        let intervals = awake_intervals(rec.trace.as_ref().unwrap(), g.n());
        for (v, m) in rec.metrics.per_node.iter().enumerate() {
            let covered: u64 = intervals[v].iter().map(|&(s, e)| e - s + 1).sum();
            assert_eq!(covered, m.awake_rounds, "node {v}");
            // Intervals are ascending and disjoint.
            for w in intervals[v].windows(2) {
                assert!(w[0].1 < w[1].0, "node {v}: {:?}", intervals[v]);
            }
        }
    }

    #[test]
    fn timeline_lines_are_one_json_object_per_round() {
        let g = Workload::new(GraphFamily::Cycle, 24).instance(1).unwrap();
        let rec = record_round_series(&g, AlgoKind::FastSleepingMis, 1, false).unwrap();
        let text = timeline_lines(2, AlgoKind::FastSleepingMis, "cycle/n=24", 0, 1, &rec.rows);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), rec.rows.len());
        for (line, row) in lines.iter().zip(&rec.rows) {
            let v: Value = serde_json::from_str(line).unwrap();
            assert_eq!(v.get("job").and_then(Value::as_u64), Some(2));
            assert_eq!(v.get("algo").and_then(Value::as_str), Some("Fast-SleepingMIS"));
            assert_eq!(v.get("round").and_then(Value::as_u64), Some(row.round));
            assert_eq!(v.get("awake").and_then(Value::as_u64), Some(row.awake));
            assert_eq!(v.get("cum_awake").and_then(Value::as_u64), Some(row.cum_awake));
        }
    }

    #[test]
    fn protocol_trace_file_validates() {
        let dir = std::env::temp_dir().join(format!("sleepy-scope-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let plan = TrialPlan::new(0xC0FFEE).with_job(JobSpec::new(
            Workload::new(GraphFamily::GnpAvgDeg(5.0), 32),
            AlgoKind::SleepingMis,
            2,
        ));
        let path = dir.join("proto.json");
        write_protocol_trace(&plan, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let check = sleepy_telemetry::validate_trace(&text).unwrap(); // sleepy-lint: allow(telemetry-purity): pure parser in a test
        assert!(check.spans > 0, "per-node tracks expected at n=32");
        assert!(check.counters > 0);
        assert_eq!(check.categories, vec!["proto"]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
