//! Standard workload suite used across experiments and fleet plans,
//! plus the dynamic (churn) workload variant.

use crate::seed;
use serde::{Deserialize, Serialize};
use sleepy_graph::{churn_delta_with_mis, ChurnSpec, DeltaOutcome, Graph, GraphError, GraphFamily};

/// A named workload: a graph family at a given size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The graph family.
    pub family: GraphFamily,
    /// Target node count.
    pub n: usize,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(family: GraphFamily, n: usize) -> Self {
        Workload { family, n }
    }

    /// Generates the trial instance for a seed. The graph seed is put
    /// through the fleet's SplitMix64 domain separation
    /// ([`seed::graph_seed`]) so graph and algorithm coins are
    /// independent — and, unlike the old 32-bit multiplicative
    /// derivation, trial seeds differing only above bit 32 cannot
    /// collide.
    ///
    /// # Errors
    ///
    /// Propagates generator failures.
    pub fn instance(&self, trial_seed: u64) -> Result<Graph, GraphError> {
        self.family.generate(self.n, seed::graph_seed(trial_seed))
    }

    /// Stable label for reports.
    pub fn label(&self) -> String {
        format!("{}/n={}", self.family.label(), self.n)
    }

    /// Stable content key for deduplication and result caching.
    ///
    /// `Workload` carries f64 family parameters, so it cannot derive
    /// `Eq`/`Hash`; this key is the hashable stand-in. Two workloads
    /// with the same key generate identical instances for every seed
    /// (family parameters are rendered exactly via [`f64` bits]).
    ///
    /// [`f64` bits]: f64::to_bits
    pub fn key(&self) -> String {
        // The label formats f64 params via Display, which can collide
        // (e.g. after arithmetic producing 8.000000000000001 rendering
        // context-dependently); encode the raw bits alongside it.
        let param_bits = match self.family {
            GraphFamily::GnpAvgDeg(d) => d.to_bits(),
            GraphFamily::GnpLogDensity(c) => c.to_bits(),
            GraphFamily::GeometricAvgDeg(d) => d.to_bits(),
            GraphFamily::RandomRegular(d) => d as u64,
            GraphFamily::BarabasiAlbert(m) => m as u64,
            _ => 0,
        };
        format!("{}:{param_bits:016x}/n={}", self.family.label(), self.n)
    }
}

/// A workload whose instance mutates between phases: the base graph is
/// generated as in the static case, then each subsequent phase applies
/// one seeded churn batch ([`churn_delta_with_mis`]). A `phases == 1` dynamic
/// workload is exactly its static [`Workload`] — same graph, same
/// measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicWorkload {
    /// The phase-0 workload.
    pub base: Workload,
    /// Total number of phases (≥ 1); phase 0 is the freshly generated
    /// instance, each later phase applies one churn batch.
    pub phases: usize,
    /// Per-phase churn intensities.
    pub churn: ChurnSpec,
}

impl DynamicWorkload {
    /// Creates a dynamic workload description.
    pub fn new(base: Workload, phases: usize, churn: ChurnSpec) -> Self {
        DynamicWorkload { base, phases: phases.max(1), churn }
    }

    /// The static degenerate case: one phase, no churn.
    pub fn from_static(base: Workload) -> Self {
        DynamicWorkload { base, phases: 1, churn: ChurnSpec::none() }
    }

    /// The phase-0 instance (identical to the static workload's).
    ///
    /// # Errors
    ///
    /// Propagates generator failures.
    pub fn initial_instance(&self, trial_seed: u64) -> Result<Graph, GraphError> {
        self.base.instance(trial_seed)
    }

    /// The churn batch entering `phase` (≥ 1), sampled — but not yet
    /// applied — from the domain-separated seed stream, so every
    /// mutation sequence is a pure function of `(workload, trial_seed)`
    /// plus, under the adversarial churn model, the MIS the adversary
    /// is aiming at. Incremental repair decomposes this batch into
    /// single events ([`GraphDelta::events`](sleepy_graph::GraphDelta::events)).
    ///
    /// # Errors
    ///
    /// Propagates churn-spec validation failures.
    pub fn churn_batch(
        &self,
        graph: &Graph,
        trial_seed: u64,
        phase: usize,
        in_mis: Option<&[bool]>,
    ) -> Result<sleepy_graph::GraphDelta, GraphError> {
        churn_delta_with_mis(graph, &self.churn, seed::churn_seed(trial_seed, phase as u64), in_mis)
    }

    /// Samples and applies the churn batch entering `phase` (≥ 1). The
    /// uniform-model equivalent of
    /// [`advance_with_mis`](DynamicWorkload::advance_with_mis).
    ///
    /// # Errors
    ///
    /// Propagates churn-spec validation failures.
    pub fn advance(
        &self,
        graph: &Graph,
        trial_seed: u64,
        phase: usize,
    ) -> Result<DeltaOutcome, GraphError> {
        self.advance_with_mis(graph, trial_seed, phase, None)
    }

    /// [`advance`](DynamicWorkload::advance) with the current MIS
    /// membership, which the adversarial churn model uses to pick its
    /// deletion targets.
    ///
    /// # Errors
    ///
    /// Propagates churn-spec validation failures.
    pub fn advance_with_mis(
        &self,
        graph: &Graph,
        trial_seed: u64,
        phase: usize,
        in_mis: Option<&[bool]>,
    ) -> Result<DeltaOutcome, GraphError> {
        self.churn_batch(graph, trial_seed, phase, in_mis)?.apply(graph)
    }

    /// Stable label for reports, e.g. `gnp-avg8/n=256~4ph[e-0.05+0.05/...]`.
    pub fn label(&self) -> String {
        if self.phases == 1 {
            self.base.label()
        } else {
            format!("{}~{}ph[{}]", self.base.label(), self.phases, self.churn.label())
        }
    }

    /// Stable content key (see [`Workload::key`]).
    pub fn key(&self) -> String {
        format!(
            "{}~{}ph[{:016x}:{:016x}:{:016x}:{:016x}:{}:{}]",
            self.base.key(),
            self.phases,
            self.churn.edge_delete_frac.to_bits(),
            self.churn.edge_insert_frac.to_bits(),
            self.churn.node_delete_frac.to_bits(),
            self.churn.node_insert_frac.to_bits(),
            self.churn.arrival_degree,
            self.churn.model.label(),
        )
    }
}

/// The default family mix used by the experiments: sparse G(n,p), a
/// connected-regime G(n,p), random regular, random geometric (the paper's
/// sensor-network motivation), power-law, and trees.
pub fn standard_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::GnpAvgDeg(8.0),
        GraphFamily::GnpLogDensity(1.5),
        GraphFamily::RandomRegular(4),
        GraphFamily::GeometricAvgDeg(8.0),
        GraphFamily::BarabasiAlbert(3),
        GraphFamily::Tree,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_deterministic() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        assert_eq!(w.instance(3).unwrap(), w.instance(3).unwrap());
        assert_ne!(w.instance(3).unwrap(), w.instance(4).unwrap());
        assert!(w.label().contains("n=64"));
    }

    #[test]
    fn high_bit_seeds_give_distinct_instances() {
        // Regression: the old derivation multiplied by a 32-bit constant,
        // so seeds differing only above bit 32 yielded the same graph.
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        let a = w.instance(7).unwrap();
        let b = w.instance(7 | (1 << 40)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn standard_suite_generates() {
        for fam in standard_families() {
            let g = Workload::new(fam, 100).instance(1).unwrap();
            assert!(g.n() >= 90, "{fam}");
        }
    }

    #[test]
    fn content_keys_are_stable_and_discriminating() {
        let a = Workload::new(GraphFamily::GnpAvgDeg(8.0), 256);
        assert_eq!(a.key(), a.key());
        assert_ne!(a.key(), Workload::new(GraphFamily::GnpAvgDeg(8.5), 256).key());
        assert_ne!(a.key(), Workload::new(GraphFamily::GnpAvgDeg(8.0), 255).key());
        assert_ne!(a.key(), Workload::new(GraphFamily::GeometricAvgDeg(8.0), 256).key());
        // Keys discriminate f64 params that Display might conflate.
        let near = 8.0 + f64::EPSILON * 8.0;
        assert_ne!(a.key(), Workload::new(GraphFamily::GnpAvgDeg(near), 256).key());
    }

    #[test]
    fn dynamic_workload_degenerates_to_static() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        let d = DynamicWorkload::from_static(w);
        assert_eq!(d.phases, 1);
        assert_eq!(d.label(), w.label());
        assert_eq!(d.initial_instance(5).unwrap(), w.instance(5).unwrap());
        // phases.max(1) guards degenerate construction.
        assert_eq!(DynamicWorkload::new(w, 0, ChurnSpec::none()).phases, 1);
    }

    #[test]
    fn dynamic_advance_is_deterministic_and_labelled() {
        let d = DynamicWorkload::new(
            Workload::new(GraphFamily::GnpAvgDeg(6.0), 80),
            3,
            ChurnSpec::edges(0.1),
        );
        let g = d.initial_instance(2).unwrap();
        let a = d.advance(&g, 2, 1).unwrap();
        let b = d.advance(&g, 2, 1).unwrap();
        assert_eq!(a, b);
        let c = d.advance(&g, 2, 2).unwrap();
        assert_ne!(a.graph, c.graph, "distinct phases get distinct churn");
        assert!(d.label().contains("~3ph["));
        assert_ne!(d.key(), DynamicWorkload::new(d.base, 4, d.churn).key());
    }
}
