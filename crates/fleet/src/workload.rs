//! Standard workload suite used across experiments and fleet plans.

use crate::seed;
use serde::{Deserialize, Serialize};
use sleepy_graph::{Graph, GraphError, GraphFamily};

/// A named workload: a graph family at a given size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// The graph family.
    pub family: GraphFamily,
    /// Target node count.
    pub n: usize,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(family: GraphFamily, n: usize) -> Self {
        Workload { family, n }
    }

    /// Generates the trial instance for a seed. The graph seed is put
    /// through the fleet's SplitMix64 domain separation
    /// ([`seed::graph_seed`]) so graph and algorithm coins are
    /// independent — and, unlike the old 32-bit multiplicative
    /// derivation, trial seeds differing only above bit 32 cannot
    /// collide.
    ///
    /// # Errors
    ///
    /// Propagates generator failures.
    pub fn instance(&self, trial_seed: u64) -> Result<Graph, GraphError> {
        self.family.generate(self.n, seed::graph_seed(trial_seed))
    }

    /// Stable label for reports.
    pub fn label(&self) -> String {
        format!("{}/n={}", self.family.label(), self.n)
    }
}

/// The default family mix used by the experiments: sparse G(n,p), a
/// connected-regime G(n,p), random regular, random geometric (the paper's
/// sensor-network motivation), power-law, and trees.
pub fn standard_families() -> Vec<GraphFamily> {
    vec![
        GraphFamily::GnpAvgDeg(8.0),
        GraphFamily::GnpLogDensity(1.5),
        GraphFamily::RandomRegular(4),
        GraphFamily::GeometricAvgDeg(8.0),
        GraphFamily::BarabasiAlbert(3),
        GraphFamily::Tree,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_generation_deterministic() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        assert_eq!(w.instance(3).unwrap(), w.instance(3).unwrap());
        assert_ne!(w.instance(3).unwrap(), w.instance(4).unwrap());
        assert!(w.label().contains("n=64"));
    }

    #[test]
    fn high_bit_seeds_give_distinct_instances() {
        // Regression: the old derivation multiplied by a 32-bit constant,
        // so seeds differing only above bit 32 yielded the same graph.
        let w = Workload::new(GraphFamily::GnpAvgDeg(4.0), 64);
        let a = w.instance(7).unwrap();
        let b = w.instance(7 | (1 << 40)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn standard_suite_generates() {
        for fam in standard_families() {
            let g = Workload::new(fam, 100).instance(1).unwrap();
            assert!(g.n() >= 90, "{fam}");
        }
    }
}
