//! Engine-tape orchestration for the fleet CLI: record one algorithm run
//! as a versioned [`Tape`] and replay committed tapes as a conformance
//! check (`fleet record-tape` / `fleet replay`).
//!
//! A tape pins the *sans-io* engine contract: the exact
//! [`EngineInput`](sleepy_net::EngineInput) sequence a protocol produced,
//! plus an FNV-1a digest of every [`EngineOutput`](sleepy_net::EngineOutput)
//! the engine emitted in response. Replaying feeds the inputs back through
//! a fresh [`SleepyEngine`](sleepy_net::SleepyEngine) — no protocol code
//! involved — and fails on any byte-level divergence, so a committed tape
//! corpus detects accidental engine semantic drift across refactors.

use crate::{AlgoKind, Workload};
use sleepy_baselines::run_baseline_taped;
use sleepy_graph::GraphFamily;
use sleepy_mis::{run_sleeping_mis_taped, MisConfig};
use sleepy_net::{replay_tape, EngineConfig, Tape, TraceSink};

/// A sink that asks for message-level events and drops everything: at
/// record time the tape itself is the artifact, so no trace buffering is
/// needed, but `wants_messages` must be `true` for the tape's output
/// digest to cover `Message`/`MessageLost` events.
struct MessageHungryNull;

impl TraceSink for MessageHungryNull {
    fn wants_messages(&self) -> bool {
        true
    }

    fn event(&mut self, _event: &sleepy_net::TraceEvent) {}
}

/// Short stable slug for an algorithm, used in tape labels and default
/// file names (`alg1`, `alg2`, `luby-a`, `luby-b`, `greedy`, `ghaffari`).
pub fn algo_slug(algo: AlgoKind) -> &'static str {
    use sleepy_baselines::BaselineKind;
    match algo {
        AlgoKind::SleepingMis => "alg1",
        AlgoKind::FastSleepingMis => "alg2",
        AlgoKind::Baseline(BaselineKind::LubyA) => "luby-a",
        AlgoKind::Baseline(BaselineKind::LubyB) => "luby-b",
        AlgoKind::Baseline(BaselineKind::GreedyCrt) => "greedy",
        AlgoKind::Baseline(BaselineKind::Ghaffari) => "ghaffari",
    }
}

/// Records one run of `algo` on a fresh [`Workload`] instance as a tape.
///
/// The graph is generated exactly like a fleet trial
/// ([`Workload::instance`] with `seed` as the trial seed), the algorithm
/// seed is `seed` itself, and the returned tape is stamped with a
/// deterministic label. Engine errors (round caps, CONGEST violations)
/// are *recorded in the tape*, not returned — a failing run is a valid
/// conformance artifact. Only configuration errors (bad family
/// parameters, MIS parameter rejection) fail.
///
/// # Errors
///
/// Graph generation or algorithm configuration failure, as a message.
pub fn record_tape(
    algo: AlgoKind,
    family: GraphFamily,
    n: usize,
    seed: u64,
    engine_config: &EngineConfig,
) -> Result<Tape, String> {
    let workload = Workload::new(family, n);
    let graph = workload.instance(seed).map_err(|e| format!("generating {n}-node graph: {e}"))?;
    let mut sink = MessageHungryNull;
    let mut tape = match algo {
        AlgoKind::SleepingMis => {
            let (_, tape) =
                run_sleeping_mis_taped(&graph, MisConfig::alg1(seed), engine_config, &mut sink);
            tape.ok_or_else(|| format!("alg1 config rejected for n={n}"))?
        }
        AlgoKind::FastSleepingMis => {
            let (_, tape) =
                run_sleeping_mis_taped(&graph, MisConfig::alg2(seed), engine_config, &mut sink);
            tape.ok_or_else(|| format!("alg2 config rejected for n={n}"))?
        }
        AlgoKind::Baseline(kind) => {
            let (_, tape) = run_baseline_taped(&graph, kind, seed, engine_config, &mut sink);
            tape
        }
    };
    tape.header.label = format!("{}/{}/seed={}", algo_slug(algo), workload.label(), seed);
    tape.header.seed = seed;
    Ok(tape)
}

/// Parses and replays one serialized tape, returning a one-line
/// human-readable report on success.
///
/// # Errors
///
/// Parse failures and replay divergences, as a message (already
/// prefixed with `origin` for context).
pub fn replay_text(origin: &str, text: &str) -> Result<String, String> {
    let tape = Tape::from_jsonl(text).map_err(|e| format!("{origin}: {e}"))?;
    let outcome = replay_tape(&tape).map_err(|e| format!("{origin}: {e}"))?;
    let status = match &outcome.error {
        Some(e) => format!("recorded error reproduced ({e})"),
        None => "OK".to_string(),
    };
    Ok(format!(
        "replay {origin}: {status}  label={}  inputs={}  outputs={}  fnv={:016x}",
        if tape.header.label.is_empty() { "(unlabeled)" } else { &tape.header.label },
        tape.inputs.len(),
        outcome.output_count,
        outcome.outputs_fnv,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_replay_every_algorithm() {
        for algo in crate::ALL_ALGOS {
            let tape = record_tape(algo, GraphFamily::Star, 6, 3, &EngineConfig::default())
                .unwrap_or_else(|e| panic!("{algo}: {e}"));
            assert!(tape.header.label.starts_with(algo_slug(algo)), "{}", tape.header.label);
            assert_eq!(tape.header.seed, 3);
            assert!(tape.error.is_none(), "{algo}: {:?}", tape.error);
            let line = replay_text("mem", &tape.to_jsonl()).unwrap();
            assert!(line.contains("OK"), "{line}");
        }
    }

    #[test]
    fn recorded_engine_error_is_a_valid_tape() {
        let cfg = EngineConfig { max_rounds: 1, ..EngineConfig::default() };
        let tape = record_tape(
            AlgoKind::Baseline(sleepy_baselines::BaselineKind::Ghaffari),
            GraphFamily::Clique,
            8,
            1,
            &cfg,
        )
        .unwrap();
        assert!(tape.error.is_some());
        let line = replay_text("mem", &tape.to_jsonl()).unwrap();
        assert!(line.contains("recorded error reproduced"), "{line}");
    }

    #[test]
    fn replay_rejects_tampering() {
        let tape =
            record_tape(AlgoKind::SleepingMis, GraphFamily::Cycle, 5, 9, &EngineConfig::default())
                .unwrap();
        let text = tape.to_jsonl().replace("\"seed\":9", "\"seed\":10");
        // Header seed is a stamp, not replay state — tampering with it
        // still parses and replays (the engine only reads loss fields).
        assert!(replay_text("mem", &text).is_ok());
        // Tampering with the output digest must fail.
        let tampered = tape.to_jsonl().replacen("\"fnv\":\"", "\"fnv\":\"f", 1);
        let err = replay_text("mem", &tampered).unwrap_err();
        assert!(err.contains("divergence") || err.contains("parse error"), "{err}");
    }
}
