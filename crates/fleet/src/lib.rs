//! # sleepy-fleet
//!
//! The parallel batch-execution runtime for large-scale sleeping-model
//! experiments. Validating the paper's headline claim — O(1) *expected*
//! node-averaged awake complexity — is a statement about distributions,
//! so it takes thousands of trials across many graph families and sizes.
//! This crate turns that into a declarative, deterministic, parallel
//! pipeline:
//!
//! * [`JobSpec`] / [`TrialPlan`] — a declarative description of a batch:
//!   algorithm × workload × trial count. Per-trial seeds come from a
//!   SplitMix64 [`SeedStream`], so trial `t` of job `j` sees the same
//!   randomness regardless of how trials are scheduled onto threads.
//! * [`run_plan`] — a work-stealing thread-pool executor. Trials are
//!   grouped into fixed shards claimed dynamically by workers; a bounded
//!   in-flight budget keeps memory flat while an in-order collector
//!   merges shard aggregates in shard-index order, making every output
//!   **byte-identical across thread counts**.
//! * [`JobAggregate`] — mergeable streaming aggregates
//!   (count/mean/M2/min/max plus exact p50/p99) per metric, built on
//!   [`sleepy_stats::StreamingMoments`].
//! * [`sink`] — result sinks: a JSONL per-trial log and aggregate
//!   JSON/CSV writers, all emitting in deterministic trial order.
//! * [`DynamicWorkload`] / [`DynamicPlan`] / [`run_dynamic_plan`] — the
//!   dynamic-workload subsystem: graphs that mutate between phases
//!   (seeded node churn and edge flips via
//!   [`sleepy_graph::churn_delta`], uniformly sampled or
//!   adversarially aimed at the current MIS via
//!   [`sleepy_graph::ChurnModel`]), with per-phase MIS recomputation,
//!   restricted-neighborhood batched *repair*, or per-event
//!   *incremental* repair ([`RepairStrategy`], [`IncrementalRepairer`])
//!   that restores validity after every single update and records its
//!   amortized per-update awake cost ([`UpdateRecord`],
//!   [`sleepy_stats::UpdateSeries`]). Per-phase validity re-checking
//!   and aggregation throughout; a static [`Workload`] is the
//!   degenerate 1-phase case.
//! * [`run_plan_cached`] / [`run_dynamic_plan_cached`] / [`cache`] —
//!   the persistent result cache: every static trial is
//!   content-addressed by `(job key, trial seed)` and every dynamic
//!   trial by one record per `(job key, trial seed, phase)` in a
//!   [`sleepy_store::Store`] (namespaced `s/` vs `d/`, so one store
//!   serves both); warm reruns serve hits instead of executing and
//!   stay byte-identical to cold runs.
//! * [`procs`] / [`run_plan_sharded_procs`] — multi-process sharding:
//!   a plan splits into contiguous per-process trial ranges
//!   ([`shard_bounds`]), worker processes fill per-shard stores, and
//!   the coordinator merges the stores and replays the plan warm —
//!   recovering aggregates byte-identical to a single-process run.
//! * a `fleet` CLI binary with progress reporting and `worker` /
//!   `merge` / `gc` subcommands (see `--help`).
//! * telemetry throughout (via [`sleepy_telemetry`]): pool scheduling,
//!   trial execution, store I/O, worker supervision, and dynamic
//!   repair all emit spans and counters. Strictly side-channel — see
//!   `docs/observability.md`; `--trace-out` exports a Chrome trace.
//!
//! The experiment harness (`sleepy-harness`) expresses all its trial
//! loops as plans submitted here; [`deterministic_map`] is the shared
//! low-level primitive for experiments whose trial bodies don't fit the
//! declarative form.
//!
//! ## Example
//!
//! ```
//! use sleepy_fleet::{run_plan, AlgoKind, Execution, FleetConfig, TrialPlan};
//! use sleepy_graph::GraphFamily;
//!
//! let plan = TrialPlan::sweep(
//!     &[GraphFamily::Cycle],
//!     &[32],
//!     &[AlgoKind::SleepingMis],
//!     3,          // trials per job
//!     7,          // base seed
//!     Execution::Auto,
//! );
//! let out = run_plan(&plan, &FleetConfig::with_threads(2))?;
//! assert_eq!(out.total_trials, 3);
//! assert_eq!(out.aggregates[0].valid_fraction(), 1.0);
//! # Ok::<(), sleepy_fleet::FleetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod cache;
pub mod chaos;
mod error;
mod measure;
pub mod planio;
pub mod pool;
pub mod procs;
pub mod run;
pub mod scope;
pub mod seed;
pub mod sink;
mod spec;
pub mod tape;
mod workload;

pub use agg::{DynamicJobAggregate, JobAggregate, MetricAggregate, MetricStats};
pub use cache::{CacheStats, NamespaceStats};
pub use error::{FleetError, WorkerStatus};
pub use measure::{
    measure_dynamic, measure_once, AlgoKind, ComplexityReport, DynamicReport, Execution,
    IncrementalPhase, IncrementalRepairer, PhaseReport, RebuildRepairer, RepairStrategy,
    UpdateKind, UpdateRecord, ALL_ALGOS, ALL_STRATEGIES, SLEEPING_ALGOS,
};
pub use planio::{plan_from_json, plan_to_json};
pub use pool::deterministic_map;
pub use procs::{
    run_plan_sharded_procs, run_plan_sharded_procs_supervised, ProcsConfig, SupervisionReport,
    WorkerFailure,
};
pub use run::{
    run_dynamic_plan, run_dynamic_plan_cached, run_dynamic_plan_with_sinks, run_plan,
    run_plan_cached, run_plan_shard, run_plan_with_sinks, shard_bounds, DynamicFleetOutput,
    DynamicFleetReport, DynamicJobReport, FleetConfig, FleetOutput, FleetReport, PhaseJobReport,
    UpdateStats, STORE_FLUSH_BATCH,
};
pub use scope::{
    record_round_series, write_protocol_trace, write_round_timeline, RecordedTrial, MAX_TRACK_NODES,
};
pub use seed::{splitmix64, SeedStream};
pub use spec::{DynamicJobSpec, DynamicPlan, JobSpec, TrialPlan};
pub use workload::{standard_families, DynamicWorkload, Workload};
