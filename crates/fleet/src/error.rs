//! Fleet error type.

use sleepy_graph::GraphError;
use sleepy_mis::MisError;
use sleepy_net::EngineError;
use std::error::Error;
use std::fmt;

/// Any failure inside a fleet run: workload generation, algorithm
/// configuration/execution, or sink I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// Workload generation failed.
    Graph(GraphError),
    /// SleepingMIS configuration or execution failed.
    Mis(MisError),
    /// Engine failure from a baseline run.
    Engine(EngineError),
    /// A result sink failed to write.
    Io(std::io::Error),
    /// The result store failed.
    Store(sleepy_store::StoreError),
    /// An invalid plan or configuration.
    Config(String),
    /// The protocol recorder's trace-derived totals disagree with the
    /// engine's own accounting (see [`crate::scope`]).
    ScheduleDrift(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Graph(e) => write!(f, "workload generation failed: {e}"),
            FleetError::Mis(e) => write!(f, "sleeping MIS failed: {e}"),
            FleetError::Engine(e) => write!(f, "engine failed: {e}"),
            FleetError::Io(e) => write!(f, "result sink failed: {e}"),
            FleetError::Store(e) => write!(f, "result store failed: {e}"),
            FleetError::Config(msg) => write!(f, "invalid fleet configuration: {msg}"),
            FleetError::ScheduleDrift(msg) => write!(f, "schedule accounting drift: {msg}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Graph(e) => Some(e),
            FleetError::Mis(e) => Some(e),
            FleetError::Engine(e) => Some(e),
            FleetError::Io(e) => Some(e),
            FleetError::Store(e) => Some(e),
            FleetError::Config(_) | FleetError::ScheduleDrift(_) => None,
        }
    }
}

impl From<GraphError> for FleetError {
    fn from(e: GraphError) -> Self {
        FleetError::Graph(e)
    }
}

impl From<MisError> for FleetError {
    fn from(e: MisError) -> Self {
        FleetError::Mis(e)
    }
}

impl From<EngineError> for FleetError {
    fn from(e: EngineError) -> Self {
        FleetError::Engine(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<sleepy_store::StoreError> for FleetError {
    fn from(e: sleepy_store::StoreError) -> Self {
        FleetError::Store(e)
    }
}
