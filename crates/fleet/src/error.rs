//! Fleet error type.

use sleepy_graph::GraphError;
use sleepy_mis::MisError;
use sleepy_net::EngineError;
use std::error::Error;
use std::fmt;

/// How a worker process failed, as classified by the sharded-run
/// supervisor (see
/// [`run_plan_sharded_procs_supervised`](crate::run_plan_sharded_procs_supervised)).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkerStatus {
    /// The worker process could not be spawned — including the
    /// `Stdio` pipe setup, which fails before the child exists.
    SpawnFailed(String),
    /// The worker outlived the supervisor's wait timeout and was
    /// killed (the silent-hang guard: a wedged worker can no longer
    /// block the coordinator forever).
    TimedOut {
        /// The timeout that elapsed, in seconds.
        timeout_secs: u64,
    },
    /// The worker exited with a failure status (`None` when it was
    /// killed by a signal and has no exit code).
    Exited {
        /// The exit code, if any.
        code: Option<i32>,
    },
    /// Waiting on the worker failed at the OS level.
    WaitFailed(String),
}

impl fmt::Display for WorkerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerStatus::SpawnFailed(msg) => write!(f, "spawn failed: {msg}"),
            WorkerStatus::TimedOut { timeout_secs } => {
                write!(f, "stalled past the {timeout_secs}s wait timeout and was killed")
            }
            WorkerStatus::Exited { code: Some(c) } => write!(f, "exited with code {c}"),
            WorkerStatus::Exited { code: None } => write!(f, "was killed by a signal"),
            WorkerStatus::WaitFailed(msg) => write!(f, "wait failed: {msg}"),
        }
    }
}

/// Any failure inside a fleet run: workload generation, algorithm
/// configuration/execution, or sink I/O.
#[derive(Debug)]
#[non_exhaustive]
pub enum FleetError {
    /// Workload generation failed.
    Graph(GraphError),
    /// SleepingMIS configuration or execution failed.
    Mis(MisError),
    /// Engine failure from a baseline run.
    Engine(EngineError),
    /// A result sink failed to write.
    Io(std::io::Error),
    /// The result store failed.
    Store(sleepy_store::StoreError),
    /// An invalid plan or configuration.
    Config(String),
    /// A worker process failed for good: its classified status after
    /// the supervisor exhausted the configured retries.
    Worker {
        /// Worker index (shard `id` of `procs`).
        id: usize,
        /// The global trial range `[start, end)` the worker owned, so
        /// the error names exactly which slice of the plan stalled.
        range: (usize, usize),
        /// The classified failure of the final attempt.
        status: WorkerStatus,
    },
    /// The protocol recorder's trace-derived totals disagree with the
    /// engine's own accounting (see [`crate::scope`]).
    ScheduleDrift(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Graph(e) => write!(f, "workload generation failed: {e}"),
            FleetError::Mis(e) => write!(f, "sleeping MIS failed: {e}"),
            FleetError::Engine(e) => write!(f, "engine failed: {e}"),
            FleetError::Io(e) => write!(f, "result sink failed: {e}"),
            FleetError::Store(e) => write!(f, "result store failed: {e}"),
            FleetError::Config(msg) => write!(f, "invalid fleet configuration: {msg}"),
            FleetError::Worker { id, range, status } => {
                write!(f, "worker {id} (trials {}..{}) {status}", range.0, range.1)
            }
            FleetError::ScheduleDrift(msg) => write!(f, "schedule accounting drift: {msg}"),
        }
    }
}

impl Error for FleetError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FleetError::Graph(e) => Some(e),
            FleetError::Mis(e) => Some(e),
            FleetError::Engine(e) => Some(e),
            FleetError::Io(e) => Some(e),
            FleetError::Store(e) => Some(e),
            FleetError::Config(_) | FleetError::Worker { .. } | FleetError::ScheduleDrift(_) => {
                None
            }
        }
    }
}

impl From<GraphError> for FleetError {
    fn from(e: GraphError) -> Self {
        FleetError::Graph(e)
    }
}

impl From<MisError> for FleetError {
    fn from(e: MisError) -> Self {
        FleetError::Mis(e)
    }
}

impl From<EngineError> for FleetError {
    fn from(e: EngineError) -> Self {
        FleetError::Engine(e)
    }
}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e)
    }
}

impl From<sleepy_store::StoreError> for FleetError {
    fn from(e: sleepy_store::StoreError) -> Self {
        FleetError::Store(e)
    }
}
