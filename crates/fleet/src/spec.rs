//! Declarative batch descriptions: what to run, not how.

use crate::measure::{AlgoKind, Execution, RepairStrategy};
use crate::workload::{DynamicWorkload, Workload};
use serde::{Deserialize, Serialize};
use sleepy_graph::{ChurnSpec, GraphFamily};

/// One batch of identical trials: an algorithm on a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// The workload every trial generates an instance of.
    pub workload: Workload,
    /// The algorithm to measure.
    pub algo: AlgoKind,
    /// Number of trials.
    pub trials: usize,
    /// Execution mode.
    pub execution: Execution,
}

impl JobSpec {
    /// A job with the default (Auto) execution mode.
    pub fn new(workload: Workload, algo: AlgoKind, trials: usize) -> Self {
        JobSpec { workload, algo, trials, execution: Execution::Auto }
    }

    /// Stable label for reports: `<algo> @ <family>/n=<n>`.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.algo, self.workload.label())
    }

    /// Stable content key over `(algo, workload, execution, base_seed)`.
    ///
    /// `Workload` carries f64 family parameters and therefore blocks
    /// `Eq`/`Hash` on `JobSpec`; this key is the hashable identity used
    /// to dedup jobs ([`TrialPlan::dedup_jobs`]) and as the job half of
    /// a result-cache key. Trial count is deliberately excluded: a
    /// job's trials are a prefix of a longer job's.
    ///
    /// Note that a trial's *seed* additionally depends on the job's
    /// position in its plan ([`SeedStream::trial_seed`] mixes the job
    /// index), so a cache must address trial results by `(job key,
    /// trial seed)` — the seed is recorded in every JSONL line — never
    /// by `(job key, trial index)`.
    ///
    /// [`SeedStream::trial_seed`]: crate::SeedStream::trial_seed
    pub fn key(&self, base_seed: u64) -> String {
        format!("{}@{}#x{:?}#s{base_seed:016x}", self.algo, self.workload.key(), self.execution)
    }
}

/// An ordered collection of jobs sharing one base seed.
///
/// Trial `t` of job `j` always receives seed
/// [`SeedStream::trial_seed(j, t)`](crate::SeedStream::trial_seed) —
/// reordering jobs changes seeds, but scheduling never does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialPlan {
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// The base seed all trial seeds derive from.
    pub base_seed: u64,
}

impl TrialPlan {
    /// An empty plan.
    pub fn new(base_seed: u64) -> Self {
        TrialPlan { jobs: Vec::new(), base_seed }
    }

    /// Appends a job, returning `self` for chaining.
    #[must_use]
    pub fn with_job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Appends a job in place.
    pub fn push(&mut self, job: JobSpec) {
        self.jobs.push(job);
    }

    /// The full cross product `families × sizes × algos`, each cell with
    /// `trials` trials — the shape of every sweep experiment.
    pub fn sweep(
        families: &[GraphFamily],
        sizes: &[usize],
        algos: &[AlgoKind],
        trials: usize,
        base_seed: u64,
        execution: Execution,
    ) -> Self {
        let mut plan = TrialPlan::new(base_seed);
        for &family in families {
            for &n in sizes {
                for &algo in algos {
                    plan.push(JobSpec {
                        workload: Workload::new(family, n),
                        algo,
                        trials,
                        execution,
                    });
                }
            }
        }
        plan
    }

    /// Total trials across all jobs.
    pub fn total_trials(&self) -> u64 {
        self.jobs.iter().map(|j| j.trials as u64).sum()
    }

    /// Removes duplicate jobs (same content key, see [`JobSpec::key`]),
    /// keeping the first occurrence of each and, among duplicates, the
    /// largest trial count. Job order is otherwise preserved — but note
    /// that jobs *after* a removed duplicate shift position and
    /// therefore receive different trial seeds, exactly as any other
    /// reordering would (see
    /// [`SeedStream::trial_seed`](crate::SeedStream::trial_seed)).
    pub fn dedup_jobs(&mut self) {
        let base_seed = self.base_seed;
        dedup_keyed(&mut self.jobs, |j| j.key(base_seed), |j| &mut j.trials);
    }
}

/// Shared dedup body of [`TrialPlan::dedup_jobs`] and
/// [`DynamicPlan::dedup_jobs`]: keep the first job per key, give it the
/// maximum trial count among its duplicates.
fn dedup_keyed<J>(
    jobs: &mut Vec<J>,
    key_of: impl Fn(&J) -> String,
    trials_of: impl Fn(&mut J) -> &mut usize,
) {
    use std::collections::btree_map::Entry;
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    let mut kept: Vec<J> = Vec::with_capacity(jobs.len());
    for mut job in jobs.drain(..) {
        match seen.entry(key_of(&job)) {
            Entry::Occupied(e) => {
                let trials = *trials_of(&mut job);
                let kept_trials = trials_of(&mut kept[*e.get()]);
                *kept_trials = (*kept_trials).max(trials);
            }
            Entry::Vacant(e) => {
                e.insert(kept.len());
                kept.push(job);
            }
        }
    }
    *jobs = kept;
}

/// One batch of identical *dynamic* trials: an algorithm and repair
/// strategy on a churning workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicJobSpec {
    /// The dynamic workload every trial runs through its phases.
    pub workload: DynamicWorkload,
    /// The algorithm to measure.
    pub algo: AlgoKind,
    /// How each churn batch is absorbed.
    pub strategy: RepairStrategy,
    /// Number of trials.
    pub trials: usize,
    /// Execution mode.
    pub execution: Execution,
}

impl DynamicJobSpec {
    /// A dynamic job with the default (Auto) execution mode.
    pub fn new(
        workload: DynamicWorkload,
        algo: AlgoKind,
        strategy: RepairStrategy,
        trials: usize,
    ) -> Self {
        DynamicJobSpec { workload, algo, strategy, trials, execution: Execution::Auto }
    }

    /// Stable label: `<algo>/<strategy> @ <workload>`.
    pub fn label(&self) -> String {
        format!("{}/{} @ {}", self.algo, self.strategy, self.workload.label())
    }

    /// Stable content key (see [`JobSpec::key`]).
    pub fn key(&self, base_seed: u64) -> String {
        format!(
            "{}/{}@{}#x{:?}#s{base_seed:016x}",
            self.algo,
            self.strategy,
            self.workload.key(),
            self.execution
        )
    }
}

/// An ordered collection of dynamic jobs sharing one base seed, with
/// the same seed discipline as [`TrialPlan`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicPlan {
    /// The jobs, in submission order.
    pub jobs: Vec<DynamicJobSpec>,
    /// The base seed all trial seeds derive from.
    pub base_seed: u64,
}

impl DynamicPlan {
    /// An empty plan.
    pub fn new(base_seed: u64) -> Self {
        DynamicPlan { jobs: Vec::new(), base_seed }
    }

    /// Appends a job, returning `self` for chaining.
    #[must_use]
    pub fn with_job(mut self, job: DynamicJobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Appends a job in place.
    pub fn push(&mut self, job: DynamicJobSpec) {
        self.jobs.push(job);
    }

    /// The full cross product `families × sizes × algos × strategies`
    /// under one churn schedule — the shape of every churn sweep.
    #[allow(clippy::too_many_arguments)]
    pub fn sweep(
        families: &[GraphFamily],
        sizes: &[usize],
        algos: &[AlgoKind],
        strategies: &[RepairStrategy],
        phases: usize,
        churn: ChurnSpec,
        trials: usize,
        base_seed: u64,
        execution: Execution,
    ) -> Self {
        let mut plan = DynamicPlan::new(base_seed);
        for &family in families {
            for &n in sizes {
                for &algo in algos {
                    for &strategy in strategies {
                        plan.push(DynamicJobSpec {
                            workload: DynamicWorkload::new(Workload::new(family, n), phases, churn),
                            algo,
                            strategy,
                            trials,
                            execution,
                        });
                    }
                }
            }
        }
        plan
    }

    /// Total trials across all jobs.
    pub fn total_trials(&self) -> u64 {
        self.jobs.iter().map(|j| j.trials as u64).sum()
    }

    /// Removes duplicate jobs by content key, as
    /// [`TrialPlan::dedup_jobs`] — e.g. a sweep over both strategies
    /// with `phases == 1` makes recompute and repair identical runs,
    /// but their keys still differ, so only *exact* duplicates (same
    /// algo, workload, strategy, execution) collapse.
    pub fn dedup_jobs(&mut self) {
        let base_seed = self.base_seed;
        dedup_keyed(&mut self.jobs, |j| j.key(base_seed), |j| &mut j.trials);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_full_cross_product() {
        let plan = TrialPlan::sweep(
            &[GraphFamily::Cycle, GraphFamily::Tree],
            &[32, 64, 128],
            &crate::SLEEPING_ALGOS,
            5,
            1,
            Execution::Auto,
        );
        assert_eq!(plan.jobs.len(), 2 * 3 * 2);
        assert_eq!(plan.total_trials(), 60);
        assert!(plan.jobs[0].label().contains("SleepingMIS"));
    }

    #[test]
    fn job_keys_dedup_plans() {
        let w = Workload::new(GraphFamily::GnpAvgDeg(8.0), 128);
        let mut plan = TrialPlan::new(3)
            .with_job(JobSpec::new(w, AlgoKind::SleepingMis, 5))
            .with_job(JobSpec::new(w, AlgoKind::FastSleepingMis, 5))
            .with_job(JobSpec::new(w, AlgoKind::SleepingMis, 9));
        plan.dedup_jobs();
        assert_eq!(plan.jobs.len(), 2);
        // The duplicate kept its first position and the larger trial count.
        assert_eq!(plan.jobs[0].algo, AlgoKind::SleepingMis);
        assert_eq!(plan.jobs[0].trials, 9);
        // Keys discriminate the base seed (a different seed is a
        // different cache entry) but not the trial count.
        let job = JobSpec::new(w, AlgoKind::SleepingMis, 5);
        assert_ne!(job.key(3), job.key(4));
        assert_eq!(job.key(3), JobSpec::new(w, AlgoKind::SleepingMis, 50).key(3));
    }

    #[test]
    fn dynamic_sweep_and_dedup() {
        let churn = ChurnSpec::edges(0.1);
        let mut plan = DynamicPlan::sweep(
            &[GraphFamily::Cycle, GraphFamily::Tree],
            &[64],
            &[AlgoKind::SleepingMis],
            &[RepairStrategy::Recompute, RepairStrategy::Repair],
            3,
            churn,
            4,
            7,
            Execution::Auto,
        );
        assert_eq!(plan.jobs.len(), 4);
        assert_eq!(plan.total_trials(), 16);
        assert!(plan.jobs[0].label().contains("recompute"));
        assert!(plan.jobs[1].label().contains("repair"));
        // Strategies differ, so nothing collapses...
        plan.dedup_jobs();
        assert_eq!(plan.jobs.len(), 4);
        // ...but a literal duplicate does.
        let dup = plan.jobs[0].clone();
        plan.push(dup);
        plan.dedup_jobs();
        assert_eq!(plan.jobs.len(), 4);
    }

    #[test]
    fn builder_chains() {
        let plan = TrialPlan::new(9).with_job(JobSpec::new(
            Workload::new(GraphFamily::Cycle, 16),
            AlgoKind::SleepingMis,
            2,
        ));
        assert_eq!(plan.base_seed, 9);
        assert_eq!(plan.total_trials(), 2);
    }
}
