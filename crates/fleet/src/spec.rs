//! Declarative batch descriptions: what to run, not how.

use crate::measure::{AlgoKind, Execution};
use crate::workload::Workload;
use serde::{Deserialize, Serialize};
use sleepy_graph::GraphFamily;

/// One batch of identical trials: an algorithm on a workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct JobSpec {
    /// The workload every trial generates an instance of.
    pub workload: Workload,
    /// The algorithm to measure.
    pub algo: AlgoKind,
    /// Number of trials.
    pub trials: usize,
    /// Execution mode.
    pub execution: Execution,
}

impl JobSpec {
    /// A job with the default (Auto) execution mode.
    pub fn new(workload: Workload, algo: AlgoKind, trials: usize) -> Self {
        JobSpec { workload, algo, trials, execution: Execution::Auto }
    }

    /// Stable label for reports: `<algo> @ <family>/n=<n>`.
    pub fn label(&self) -> String {
        format!("{} @ {}", self.algo, self.workload.label())
    }
}

/// An ordered collection of jobs sharing one base seed.
///
/// Trial `t` of job `j` always receives seed
/// [`SeedStream::trial_seed(j, t)`](crate::SeedStream::trial_seed) —
/// reordering jobs changes seeds, but scheduling never does.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialPlan {
    /// The jobs, in submission order.
    pub jobs: Vec<JobSpec>,
    /// The base seed all trial seeds derive from.
    pub base_seed: u64,
}

impl TrialPlan {
    /// An empty plan.
    pub fn new(base_seed: u64) -> Self {
        TrialPlan { jobs: Vec::new(), base_seed }
    }

    /// Appends a job, returning `self` for chaining.
    #[must_use]
    pub fn with_job(mut self, job: JobSpec) -> Self {
        self.jobs.push(job);
        self
    }

    /// Appends a job in place.
    pub fn push(&mut self, job: JobSpec) {
        self.jobs.push(job);
    }

    /// The full cross product `families × sizes × algos`, each cell with
    /// `trials` trials — the shape of every sweep experiment.
    pub fn sweep(
        families: &[GraphFamily],
        sizes: &[usize],
        algos: &[AlgoKind],
        trials: usize,
        base_seed: u64,
        execution: Execution,
    ) -> Self {
        let mut plan = TrialPlan::new(base_seed);
        for &family in families {
            for &n in sizes {
                for &algo in algos {
                    plan.push(JobSpec {
                        workload: Workload::new(family, n),
                        algo,
                        trials,
                        execution,
                    });
                }
            }
        }
        plan
    }

    /// Total trials across all jobs.
    pub fn total_trials(&self) -> u64 {
        self.jobs.iter().map(|j| j.trials as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_full_cross_product() {
        let plan = TrialPlan::sweep(
            &[GraphFamily::Cycle, GraphFamily::Tree],
            &[32, 64, 128],
            &crate::SLEEPING_ALGOS,
            5,
            1,
            Execution::Auto,
        );
        assert_eq!(plan.jobs.len(), 2 * 3 * 2);
        assert_eq!(plan.total_trials(), 60);
        assert!(plan.jobs[0].label().contains("SleepingMIS"));
    }

    #[test]
    fn builder_chains() {
        let plan = TrialPlan::new(9).with_job(JobSpec::new(
            Workload::new(GraphFamily::Cycle, 16),
            AlgoKind::SleepingMis,
            2,
        ));
        assert_eq!(plan.base_seed, 9);
        assert_eq!(plan.total_trials(), 2);
    }
}
