//! Deterministic per-trial seed streams.
//!
//! Every trial's seed is a pure function of `(base seed, job index,
//! trial index)` through SplitMix64 finalization, so results are
//! reproducible regardless of scheduling, thread count, or which subset
//! of a plan is re-run. SplitMix64's full-avalanche mix also fixes the
//! collision the old harness derivation had, where two trial seeds
//! differing only above bit 32 produced identical graph seeds after a
//! 32-bit multiplicative hash.

// The single splitmix64 definition lives in sleepy_mis (it derives the
// per-node coins there); re-exporting it keeps the fleet's seed streams
// and the algorithms' coin derivation on one mixing function forever.
pub use sleepy_mis::splitmix64;

/// Domain-separation constants so the graph generator, the algorithm's
/// coins, the per-phase churn sampler, and the per-phase re-run coins
/// never share a seed even for adjacent inputs.
const DOMAIN_TRIAL: u64 = 0x51EE_9F1E_E700_0001;
const DOMAIN_GRAPH: u64 = 0x51EE_9F1E_E700_0002;
const DOMAIN_CHURN: u64 = 0x51EE_9F1E_E700_0003;
const DOMAIN_PHASE: u64 = 0x51EE_9F1E_E700_0004;
const DOMAIN_UPDATE: u64 = 0x51EE_9F1E_E700_0005;

/// A deterministic stream of trial seeds rooted at a base seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedStream {
    base: u64,
}

impl SeedStream {
    /// A stream rooted at `base_seed`.
    pub fn new(base_seed: u64) -> Self {
        SeedStream { base: base_seed }
    }

    /// The base seed this stream was rooted at.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The seed for trial `trial` of job `job` — independent of
    /// scheduling by construction.
    pub fn trial_seed(&self, job: u64, trial: u64) -> u64 {
        let job_root =
            splitmix64(self.base ^ DOMAIN_TRIAL ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        splitmix64(job_root.wrapping_add(trial))
    }

    /// A single-job stream's trial seed (job index 0).
    pub fn seed(&self, trial: u64) -> u64 {
        self.trial_seed(0, trial)
    }
}

/// Derives the graph-generation seed from a trial seed (the algorithm's
/// coins use the trial seed itself, so graph and algorithm randomness
/// are independent).
pub fn graph_seed(trial_seed: u64) -> u64 {
    splitmix64(trial_seed ^ DOMAIN_GRAPH)
}

/// Derives the churn-sampling seed of phase `phase` (≥ 1) of a dynamic
/// trial. Separate from both the graph and the coin domains, so the
/// mutation sequence is reproducible and independent of everything
/// else the trial does.
pub fn churn_seed(trial_seed: u64, phase: u64) -> u64 {
    splitmix64(splitmix64(trial_seed ^ DOMAIN_CHURN).wrapping_add(phase))
}

/// Derives the algorithm-coin seed of phase `phase` of a dynamic trial.
/// Phase 0 returns the trial seed itself, so a 1-phase dynamic run is
/// measurement-identical to its static [`Workload`](crate::Workload)
/// counterpart.
pub fn phase_seed(trial_seed: u64, phase: u64) -> u64 {
    if phase == 0 {
        trial_seed
    } else {
        splitmix64(splitmix64(trial_seed ^ DOMAIN_PHASE).wrapping_add(phase))
    }
}

/// Derives the algorithm-coin seed of update event `update` inside a
/// phase of an incremental dynamic trial. Domain-separated from the
/// phase coins so a per-event repair sequence never reuses the seed a
/// batched repair of the same phase would.
pub fn update_seed(phase_seed: u64, update: u64) -> u64 {
    splitmix64(splitmix64(phase_seed ^ DOMAIN_UPDATE).wrapping_add(update))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_domain_is_separated() {
        let trial = SeedStream::new(3).seed(1);
        let phase = phase_seed(trial, 2);
        for k in 0..30u64 {
            let u = update_seed(phase, k);
            assert_ne!(u, phase);
            assert_ne!(u, trial);
            assert_ne!(u, update_seed(phase, k + 1));
            assert_ne!(u, churn_seed(trial, 2));
        }
    }

    #[test]
    fn splitmix_is_bijective_on_samples() {
        // Distinct inputs (including ones differing only in high bits)
        // give distinct outputs.
        let inputs = [0u64, 1, 2, 1 << 32, 1 | (1 << 32), u64::MAX, 0xDEAD_BEEF];
        let outputs: Vec<u64> = inputs.iter().map(|&x| splitmix64(x)).collect();
        for i in 0..outputs.len() {
            for j in i + 1..outputs.len() {
                assert_ne!(outputs[i], outputs[j], "collision {} vs {}", inputs[i], inputs[j]);
            }
        }
    }

    #[test]
    fn high_bit_trial_seeds_do_not_collide_in_graph_seed() {
        // The regression the old 32-bit multiplicative derivation had:
        // seeds differing only above bit 32 collided.
        let a = 7u64;
        let b = 7u64 | (1 << 40);
        assert_ne!(graph_seed(a), graph_seed(b));
    }

    #[test]
    fn stream_is_deterministic_and_spread() {
        let s = SeedStream::new(42);
        assert_eq!(s.trial_seed(3, 9), s.trial_seed(3, 9));
        assert_ne!(s.trial_seed(3, 9), s.trial_seed(3, 10));
        assert_ne!(s.trial_seed(3, 9), s.trial_seed(4, 9));
        assert_ne!(SeedStream::new(42).seed(0), SeedStream::new(43).seed(0));
        // Job/trial transposition must not collide.
        assert_ne!(s.trial_seed(1, 2), s.trial_seed(2, 1));
    }

    #[test]
    fn graph_and_trial_domains_are_separated() {
        let s = SeedStream::new(0);
        for t in 0..100 {
            let seed = s.seed(t);
            assert_ne!(seed, graph_seed(seed));
        }
    }

    #[test]
    fn churn_and_phase_domains_are_separated() {
        let trial = SeedStream::new(7).seed(3);
        // Phase 0 coins are the trial seed (static equivalence) ...
        assert_eq!(phase_seed(trial, 0), trial);
        // ... later phases are fresh and distinct from every other domain.
        for p in 1..50u64 {
            let c = churn_seed(trial, p);
            let a = phase_seed(trial, p);
            assert_ne!(c, a);
            assert_ne!(c, trial);
            assert_ne!(a, trial);
            assert_ne!(c, graph_seed(trial));
            assert_ne!(churn_seed(trial, p), churn_seed(trial, p + 1));
            assert_ne!(phase_seed(trial, p), phase_seed(trial, p + 1));
        }
    }
}
