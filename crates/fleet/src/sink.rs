//! Result sinks: per-trial JSONL logs and aggregate JSON/CSV writers.
//!
//! The runner feeds sinks in global trial order (and, within a dynamic
//! trial, phase order), so every sink's output is byte-identical across
//! thread counts.

use crate::measure::{ComplexityReport, PhaseReport};
use crate::run::{DynamicFleetReport, FleetReport};
use crate::spec::{DynamicJobSpec, JobSpec};
use std::io::{self, Write};

/// Context for one finished trial, as handed to sinks.
pub struct TrialRecord<'a> {
    /// Index of the job in the plan.
    pub job_index: usize,
    /// The job spec.
    pub job: &'a JobSpec,
    /// Trial index within the job.
    pub trial: usize,
    /// The trial's seed.
    pub seed: u64,
    /// The trial's measurements.
    pub report: &'a ComplexityReport,
}

/// Receives finished trials in deterministic global order.
pub trait TrialSink {
    /// Records one trial.
    ///
    /// # Errors
    ///
    /// I/O failures abort the run.
    fn record(&mut self, trial: &TrialRecord<'_>) -> io::Result<()>;

    /// Flushes buffered output at the end of the run.
    ///
    /// # Errors
    ///
    /// I/O failures abort the run.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one compact JSON object per trial (JSON Lines).
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps a writer (callers typically pass a `BufWriter`).
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> TrialSink for JsonlSink<W> {
    fn record(&mut self, t: &TrialRecord<'_>) -> io::Result<()> {
        let s = &t.report.summary;
        // Assembled field by field (not via to_value) to keep the line
        // format an explicit, stable contract.
        let line = serde_json::json!({
            "job": t.job_index,
            "trial": t.trial,
            "seed": t.seed,
            "algo": t.report.algo,
            "workload": t.job.workload.label(),
            "n": t.report.n,
            "node_avg_awake": s.node_avg_awake,
            "worst_awake": s.worst_awake,
            "worst_round": s.worst_round,
            "node_avg_round": s.node_avg_round,
            "messages": s.total_messages,
            "mis_size": t.report.mis_size,
            "valid": t.report.valid,
            "base_timeouts": t.report.base_timeouts
        });
        writeln!(self.writer, "{line}")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Context for one finished phase of a dynamic trial, as handed to
/// phase sinks.
pub struct PhaseRecord<'a> {
    /// Index of the job in the dynamic plan.
    pub job_index: usize,
    /// The dynamic job spec.
    pub job: &'a DynamicJobSpec,
    /// Trial index within the job.
    pub trial: usize,
    /// The trial's seed.
    pub seed: u64,
    /// The phase's measurements.
    pub report: &'a PhaseReport,
}

/// Receives finished phases of dynamic trials in deterministic global
/// order (trials in plan order, phases in phase order within a trial).
pub trait PhaseSink {
    /// Records one phase.
    ///
    /// # Errors
    ///
    /// I/O failures abort the run.
    fn record(&mut self, phase: &PhaseRecord<'_>) -> io::Result<()>;

    /// Flushes buffered output at the end of the run.
    ///
    /// # Errors
    ///
    /// I/O failures abort the run.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Writes one compact JSON object per phase (JSON Lines).
pub struct PhaseJsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> PhaseJsonlSink<W> {
    /// Wraps a writer (callers typically pass a `BufWriter`).
    pub fn new(writer: W) -> Self {
        PhaseJsonlSink { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> PhaseSink for PhaseJsonlSink<W> {
    fn record(&mut self, t: &PhaseRecord<'_>) -> io::Result<()> {
        let r = &t.report.report;
        let s = &r.summary;
        let line = serde_json::json!({
            "job": t.job_index,
            "trial": t.trial,
            "seed": t.seed,
            "phase": t.report.phase,
            "algo": r.algo,
            "strategy": t.job.strategy.to_string(),
            "workload": t.job.workload.label(),
            "n": r.n,
            "m": t.report.m,
            "repair_scope": t.report.repair_scope,
            "carried": t.report.carried,
            "updates": t.report.updates.len(),
            "node_avg_awake": s.node_avg_awake,
            "worst_awake": s.worst_awake,
            "worst_round": s.worst_round,
            "node_avg_round": s.node_avg_round,
            "messages": s.total_messages,
            "mis_size": r.mis_size,
            "valid": r.valid,
            "base_timeouts": r.base_timeouts
        });
        writeln!(self.writer, "{line}")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// Counts trials (cheap sink for tests and progress cross-checks).
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Trials recorded.
    pub trials: u64,
}

impl TrialSink for CountingSink {
    fn record(&mut self, _t: &TrialRecord<'_>) -> io::Result<()> {
        self.trials += 1;
        Ok(())
    }
}

/// Serializes the aggregate report as pretty JSON.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_aggregate_json<W: Write>(mut w: W, report: &FleetReport) -> io::Result<()> {
    let text = serde_json::to_string_pretty(report).expect("report serializes");
    writeln!(w, "{text}")?;
    // Callers pass owned BufWriters; flushing here keeps deferred write
    // errors from being swallowed by Drop.
    w.flush()
}

/// Serializes a dynamic run's aggregate report as pretty JSON.
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_dynamic_aggregate_json<W: Write>(
    mut w: W,
    report: &DynamicFleetReport,
) -> io::Result<()> {
    let text = serde_json::to_string_pretty(report).expect("report serializes");
    writeln!(w, "{text}")?;
    w.flush()
}

const CSV_HEADER: &str = "label,algo,workload,n,trials,valid_fraction,base_timeouts,\
avg_awake_mean,avg_awake_std,avg_awake_p50,avg_awake_p99,\
worst_awake_mean,worst_awake_p99,worst_round_mean,worst_round_p99,\
avg_round_mean,avg_round_p99,messages_mean,mis_size_mean";

/// Serializes the aggregate report as CSV (one row per job).
///
/// # Errors
///
/// Propagates writer failures.
pub fn write_aggregate_csv<W: Write>(mut w: W, report: &FleetReport) -> io::Result<()> {
    writeln!(w, "{CSV_HEADER}")?;
    for j in &report.jobs {
        writeln!(
            w,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            csv_escape(&j.label),
            csv_escape(&j.algo),
            csv_escape(&j.workload),
            j.n,
            j.trials,
            j.valid_fraction,
            j.base_timeouts,
            j.node_avg_awake.mean,
            j.node_avg_awake.std_dev,
            j.node_avg_awake.p50,
            j.node_avg_awake.p99,
            j.worst_awake.mean,
            j.worst_awake.p99,
            j.worst_round.mean,
            j.worst_round.p99,
            j.node_avg_round.mean,
            j.node_avg_round.p99,
            j.messages.mean,
            j.mis_size.mean,
        )?;
    }
    w.flush()
}

fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{AlgoKind, Execution};
    use crate::run::{run_plan_with_sinks, FleetConfig};
    use crate::spec::TrialPlan;
    use sleepy_graph::GraphFamily;

    fn plan() -> TrialPlan {
        TrialPlan::sweep(
            &[GraphFamily::Cycle],
            &[32],
            &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
            4,
            77,
            Execution::Auto,
        )
    }

    #[test]
    fn jsonl_lines_are_ordered_and_thread_invariant() {
        let render = |threads: usize| {
            let mut sink = JsonlSink::new(Vec::new());
            let cfg = FleetConfig { threads, shard_size: 1, ..FleetConfig::default() };
            run_plan_with_sinks(&plan(), &cfg, &mut [&mut sink]).unwrap();
            String::from_utf8(sink.into_inner()).unwrap()
        };
        let a = render(1);
        let b = render(4);
        assert_eq!(a, b);
        assert_eq!(a.lines().count(), 8);
        assert!(a.lines().next().unwrap().contains("\"job\":0,\"trial\":0"));
        assert!(a.lines().last().unwrap().contains("\"job\":1,\"trial\":3"));
    }

    #[test]
    fn phase_jsonl_is_ordered_valid_and_thread_invariant() {
        use crate::measure::RepairStrategy;
        use crate::run::run_dynamic_plan_with_sinks;
        use crate::spec::DynamicPlan;
        use crate::workload::{DynamicWorkload, Workload};
        let plan = DynamicPlan::sweep(
            &[GraphFamily::Cycle],
            &[48],
            &[AlgoKind::SleepingMis],
            &[RepairStrategy::Repair],
            3,
            sleepy_graph::ChurnSpec::edges(0.1),
            2,
            99,
            Execution::Auto,
        );
        let render = |threads: usize| {
            let mut sink = PhaseJsonlSink::new(Vec::new());
            let cfg = FleetConfig { threads, shard_size: 1, ..FleetConfig::default() };
            run_dynamic_plan_with_sinks(&plan, &cfg, &mut [&mut sink]).unwrap();
            String::from_utf8(sink.into_inner()).unwrap()
        };
        let a = render(1);
        assert_eq!(a, render(4));
        // 1 job x 2 trials x 3 phases.
        assert_eq!(a.lines().count(), 6);
        assert!(a.lines().next().unwrap().contains("\"phase\":0"));
        assert!(a.lines().all(|l| l.contains("\"valid\":true")));
        assert!(a.contains("\"strategy\":\"repair\""));
        // The degenerate static case also flows through the sink.
        let w = DynamicWorkload::from_static(Workload::new(GraphFamily::Cycle, 16));
        assert_eq!(w.phases, 1);
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        run_plan_with_sinks(&plan(), &FleetConfig::default(), &mut [&mut sink]).unwrap();
        assert_eq!(sink.trials, 8);
    }

    #[test]
    fn csv_shape_and_escaping() {
        let p = plan();
        let out = crate::run::run_plan(&p, &FleetConfig::default()).unwrap();
        let mut buf = Vec::new();
        write_aggregate_csv(&mut buf, &out.report(&p)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().next().unwrap().starts_with("label,algo"));
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("a\"b"), "\"a\"\"b\"");
        assert_eq!(csv_escape("plain"), "plain");
    }
}
