//! Unified measurement of any MIS algorithm on any workload (the trial
//! body every fleet job runs), both static and dynamic: a dynamic trial
//! runs one phase per churn batch, either recomputing the MIS from
//! scratch or repairing it on the restricted damaged neighborhood.

use crate::error::FleetError;
use crate::seed;
use crate::workload::DynamicWorkload;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_graph::Graph;
use sleepy_mis::{execute_sleeping_mis, run_sleeping_mis, MisConfig};
use sleepy_net::{ComplexitySummary, EngineConfig};
use sleepy_verify::verify_mis;

/// Every algorithm the fleet can measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoKind {
    /// Algorithm 1 (SleepingMIS).
    SleepingMis,
    /// Algorithm 2 (Fast-SleepingMIS).
    FastSleepingMis,
    /// A traditional-model baseline.
    Baseline(BaselineKind),
}

impl std::fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoKind::SleepingMis => f.write_str("SleepingMIS"),
            AlgoKind::FastSleepingMis => f.write_str("Fast-SleepingMIS"),
            AlgoKind::Baseline(b) => write!(f, "{b}"),
        }
    }
}

/// The paper's two algorithms.
pub const SLEEPING_ALGOS: [AlgoKind; 2] = [AlgoKind::SleepingMis, AlgoKind::FastSleepingMis];

/// All algorithms: the paper's two plus all four baselines.
pub const ALL_ALGOS: [AlgoKind; 6] = [
    AlgoKind::SleepingMis,
    AlgoKind::FastSleepingMis,
    AlgoKind::Baseline(BaselineKind::LubyA),
    AlgoKind::Baseline(BaselineKind::LubyB),
    AlgoKind::Baseline(BaselineKind::GreedyCrt),
    AlgoKind::Baseline(BaselineKind::Ghaffari),
];

/// How to execute a sleeping-model algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Execution {
    /// Sleeping algorithms run on the fast combinatorial executor
    /// (bit-identical to the engine); baselines run on the engine.
    Auto,
    /// Everything runs on the message-passing engine (slower; used for
    /// cross-validation and when message/energy accounting is needed).
    ForceEngine,
}

/// One run's complexity measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// Algorithm label.
    pub algo: String,
    /// Node count of the instance.
    pub n: usize,
    /// The four paper measures plus communication totals.
    pub summary: ComplexitySummary,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a maximal independent set.
    pub valid: bool,
    /// Algorithm 2 base-case timeouts in this run.
    pub base_timeouts: usize,
}

/// Runs `algo` once on `graph` with the given seed.
///
/// # Errors
///
/// Propagates configuration, generation and engine errors.
pub fn measure_once(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    execution: Execution,
) -> Result<ComplexityReport, FleetError> {
    let (in_mis, summary, base_timeouts) = run_algo(graph, algo, seed, execution)?;
    let valid = verify_mis(graph, &in_mis).is_ok();
    Ok(ComplexityReport {
        algo: algo.to_string(),
        n: graph.n(),
        summary,
        mis_size: in_mis.iter().filter(|&&b| b).count(),
        valid,
        base_timeouts,
    })
}

/// Executes `algo` on `graph`, returning the raw membership vector along
/// with the complexity summary (the shared body of [`measure_once`] and
/// the dynamic per-phase path, which must carry membership across
/// phases).
fn run_algo(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    execution: Execution,
) -> Result<(Vec<bool>, ComplexitySummary, usize), FleetError> {
    let out = match (algo, execution) {
        (AlgoKind::SleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg1(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::FastSleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg2(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::SleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg1(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::FastSleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg2(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::Baseline(kind), _) => {
            let run = run_baseline(graph, kind, seed, &EngineConfig::default())?;
            (run.in_mis, run.metrics.summary(), 0)
        }
    };
    Ok(out)
}

/// How a dynamic trial reacts to each churn batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// Rerun the algorithm from scratch on the mutated graph.
    Recompute,
    /// Keep the surviving MIS, evict one endpoint of every newly
    /// conflicting edge, and rerun the algorithm only on the induced
    /// subgraph of *undecided* nodes (not in the set and not dominated
    /// by it) — everyone else stays asleep through the whole phase.
    Repair,
}

impl std::fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairStrategy::Recompute => f.write_str("recompute"),
            RepairStrategy::Repair => f.write_str("repair"),
        }
    }
}

/// One phase's measurements in a dynamic trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseReport {
    /// 0-based phase index (phase 0 is the initial full run).
    pub phase: usize,
    /// The phase's complexity measurements. For repair phases the
    /// averages are taken over the *whole* phase graph: nodes outside
    /// the repair scope sleep through the phase and contribute zero
    /// awake rounds — the quantity of interest for churn workloads.
    pub report: ComplexityReport,
    /// Edge count of the phase graph.
    pub m: usize,
    /// Nodes the algorithm actually ran on this phase (the whole graph
    /// for phase 0 and for [`RepairStrategy::Recompute`]).
    pub repair_scope: usize,
    /// MIS members carried over unchanged from the previous phase.
    pub carried: usize,
}

/// The full result of one dynamic trial: one report per phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicReport {
    /// Per-phase reports, in phase order.
    pub phases: Vec<PhaseReport>,
}

impl DynamicReport {
    /// Whether every phase's output verified as an MIS of its graph.
    pub fn all_valid(&self) -> bool {
        self.phases.iter().all(|p| p.report.valid)
    }
}

/// Runs one dynamic trial: generates the phase-0 instance, runs `algo`
/// in full, then alternates seeded churn batches with per-phase
/// recompute or repair, re-verifying validity on every mutated graph.
///
/// Phase randomness is domain-separated: graph generation, churn
/// sampling, and per-phase coins come from independent SplitMix64
/// streams rooted at `trial_seed`, so the whole trial is a pure function
/// of `(workload, algo, trial_seed, execution, strategy)`.
///
/// # Errors
///
/// Propagates generation, churn-spec, and execution errors.
pub fn measure_dynamic(
    workload: &DynamicWorkload,
    algo: AlgoKind,
    trial_seed: u64,
    execution: Execution,
    strategy: RepairStrategy,
) -> Result<DynamicReport, FleetError> {
    let mut graph = workload.initial_instance(trial_seed)?;
    let mut phases = Vec::with_capacity(workload.phases);
    let (mut in_mis, summary, timeouts) =
        run_algo(&graph, algo, seed::phase_seed(trial_seed, 0), execution)?;
    phases.push(phase_report(0, &graph, algo, &in_mis, summary, timeouts, graph.n(), 0));

    for phase in 1..workload.phases {
        let outcome = workload.advance(&graph, trial_seed, phase)?;
        let phase_seed = seed::phase_seed(trial_seed, phase as u64);
        // Carry membership through the id mapping (departed members drop).
        let mut carried_set = vec![false; outcome.graph.n()];
        for (old, new) in outcome.old_to_new.iter().enumerate() {
            if let Some(new) = new {
                carried_set[*new as usize] = in_mis[old];
            }
        }
        graph = outcome.graph;
        let (set, summary, timeouts, scope, carried) = match strategy {
            RepairStrategy::Recompute => {
                let (set, summary, timeouts) = run_algo(&graph, algo, phase_seed, execution)?;
                (set, summary, timeouts, graph.n(), 0)
            }
            RepairStrategy::Repair => {
                repair_phase(&graph, carried_set, algo, phase_seed, execution)?
            }
        };
        phases.push(phase_report(phase, &graph, algo, &set, summary, timeouts, scope, carried));
        in_mis = set;
    }
    Ok(DynamicReport { phases })
}

/// The repair step of one phase: conflict eviction, then a restricted
/// re-run on the undecided neighborhood only.
fn repair_phase(
    graph: &Graph,
    mut set: Vec<bool>,
    algo: AlgoKind,
    phase_seed: u64,
    execution: Execution,
) -> Result<(Vec<bool>, ComplexitySummary, usize, usize, usize), FleetError> {
    let n = graph.n();
    // Inserted edges can join two carried members; evict the larger
    // endpoint of each conflict (a single lexicographic pass leaves the
    // set independent, since membership only ever shrinks here).
    for (u, v) in graph.edges() {
        if set[u as usize] && set[v as usize] {
            set[v as usize] = false;
        }
    }
    let carried = set.iter().filter(|&&b| b).count();
    // Undecided: outside the carried set and not dominated by it —
    // evictees, arrivals, and nodes whose only dominator departed.
    let undecided: Vec<bool> = (0..n)
        .map(|v| {
            !set[v] && !graph.neighbors(v as sleepy_graph::NodeId).iter().any(|&w| set[w as usize])
        })
        .collect();
    let (sub, orig) = graph.induced_subgraph(&undecided);
    let scope = sub.n();
    let (sub_summary, timeouts) = if scope == 0 {
        (zero_summary(0), 0)
    } else {
        let (sub_mis, sub_summary, timeouts) = run_algo(&sub, algo, phase_seed, execution)?;
        for (i, &o) in orig.iter().enumerate() {
            if sub_mis[i] {
                set[o as usize] = true;
            }
        }
        (sub_summary, timeouts)
    };
    // Re-express the subgraph run over the whole phase graph: the n −
    // scope untouched nodes slept through the phase, so sums are
    // unchanged and averages re-divide by n.
    let scale = |avg: f64| if n == 0 { 0.0 } else { avg * scope as f64 / n as f64 };
    let summary = ComplexitySummary {
        n,
        node_avg_awake: scale(sub_summary.node_avg_awake),
        worst_awake: sub_summary.worst_awake,
        worst_round: sub_summary.worst_round,
        node_avg_round: scale(sub_summary.node_avg_round),
        active_rounds: sub_summary.active_rounds,
        total_messages: sub_summary.total_messages,
        dropped_messages: sub_summary.dropped_messages,
        total_bits: sub_summary.total_bits,
    };
    Ok((set, summary, timeouts, scope, carried))
}

/// An all-zero summary for phases whose repair scope is empty.
fn zero_summary(n: usize) -> ComplexitySummary {
    ComplexitySummary {
        n,
        node_avg_awake: 0.0,
        worst_awake: 0,
        worst_round: 0,
        node_avg_round: 0.0,
        active_rounds: 0,
        total_messages: 0,
        dropped_messages: 0,
        total_bits: 0,
    }
}

#[allow(clippy::too_many_arguments)]
fn phase_report(
    phase: usize,
    graph: &Graph,
    algo: AlgoKind,
    set: &[bool],
    summary: ComplexitySummary,
    base_timeouts: usize,
    repair_scope: usize,
    carried: usize,
) -> PhaseReport {
    let valid = verify_mis(graph, set).is_ok();
    PhaseReport {
        phase,
        report: ComplexityReport {
            algo: algo.to_string(),
            n: graph.n(),
            summary,
            mis_size: set.iter().filter(|&&b| b).count(),
            valid,
            base_timeouts,
        },
        m: graph.m(),
        repair_scope,
        carried,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    #[test]
    fn measure_once_all_algorithms() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 80).instance(1).unwrap();
        for algo in ALL_ALGOS {
            let r = measure_once(&g, algo, 7, Execution::Auto).unwrap();
            assert!(r.valid, "{algo} invalid");
            assert!(r.mis_size > 0);
            assert!(r.summary.node_avg_awake > 0.0);
        }
    }

    #[test]
    fn measure_once_on_degenerate_graphs() {
        // The dynamic path can empty a graph or isolate every node;
        // measurement must stay well-defined for every algorithm.
        for family in [GraphFamily::Empty, GraphFamily::Grid2d, GraphFamily::Hypercube] {
            for n in [0usize, 1, 2] {
                let g = Workload::new(family, n).instance(1).unwrap();
                for algo in ALL_ALGOS {
                    let r = measure_once(&g, algo, 3, Execution::Auto)
                        .unwrap_or_else(|e| panic!("{algo} on {family} n={n}: {e}"));
                    assert!(r.valid, "{algo} on {family} n={n}");
                    assert_eq!(r.n, g.n());
                    if g.n() == 0 {
                        assert_eq!(r.mis_size, 0);
                        assert_eq!(r.summary.node_avg_awake, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn dynamic_phases_all_valid_under_both_strategies() {
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::GnpAvgDeg(6.0), 120),
            4,
            sleepy_graph::ChurnSpec {
                edge_delete_frac: 0.1,
                edge_insert_frac: 0.1,
                node_delete_frac: 0.05,
                node_insert_frac: 0.05,
                arrival_degree: 3,
            },
        );
        for strategy in [RepairStrategy::Recompute, RepairStrategy::Repair] {
            let r =
                measure_dynamic(&w, AlgoKind::SleepingMis, 9, Execution::Auto, strategy).unwrap();
            assert_eq!(r.phases.len(), 4);
            assert!(r.all_valid(), "{strategy}");
            for p in &r.phases {
                assert_eq!(p.report.algo, "SleepingMIS");
                assert!(p.report.mis_size > 0);
            }
        }
    }

    #[test]
    fn repair_scope_is_restricted_and_cheaper() {
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::GnpAvgDeg(6.0), 400),
            5,
            sleepy_graph::ChurnSpec::edges(0.02),
        );
        let repair =
            measure_dynamic(&w, AlgoKind::SleepingMis, 4, Execution::Auto, RepairStrategy::Repair)
                .unwrap();
        assert!(repair.all_valid());
        // Phase 0 runs everywhere; later phases must touch far fewer nodes.
        assert_eq!(repair.phases[0].repair_scope, 400);
        for p in &repair.phases[1..] {
            assert!(p.repair_scope < 150, "phase {} scope {}", p.phase, p.repair_scope);
            assert!(p.carried > 0);
            assert!(
                p.report.summary.node_avg_awake <= repair.phases[0].report.summary.node_avg_awake,
                "repair phase should cost no more per node than the full run"
            );
        }
    }

    #[test]
    fn single_phase_dynamic_matches_static_measurement() {
        let base = Workload::new(GraphFamily::GeometricAvgDeg(6.0), 90);
        let w = DynamicWorkload::from_static(base);
        let seed = 0xA11CE;
        let dynamic = measure_dynamic(
            &w,
            AlgoKind::FastSleepingMis,
            seed,
            Execution::Auto,
            RepairStrategy::Repair,
        )
        .unwrap();
        let g = base.instance(seed).unwrap();
        let stat = measure_once(&g, AlgoKind::FastSleepingMis, seed, Execution::Auto).unwrap();
        let p0 = &dynamic.phases[0].report;
        assert_eq!(p0.mis_size, stat.mis_size);
        assert_eq!(p0.summary.worst_round, stat.summary.worst_round);
        assert_eq!(p0.summary.node_avg_awake, stat.summary.node_avg_awake);
    }

    #[test]
    fn churn_that_empties_the_graph_is_handled() {
        // 100% node departure, no arrivals: phase 1 onward is the empty
        // graph; both strategies must report valid zero-cost phases.
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::Cycle, 24),
            3,
            sleepy_graph::ChurnSpec { node_delete_frac: 1.0, ..sleepy_graph::ChurnSpec::none() },
        );
        for strategy in [RepairStrategy::Recompute, RepairStrategy::Repair] {
            let r =
                measure_dynamic(&w, AlgoKind::SleepingMis, 1, Execution::Auto, strategy).unwrap();
            assert!(r.all_valid(), "{strategy}");
            assert_eq!(r.phases[1].report.n, 0);
            assert_eq!(r.phases[1].report.mis_size, 0);
            assert_eq!(r.phases[2].report.summary.node_avg_awake, 0.0);
        }
    }

    #[test]
    fn engine_and_auto_agree_for_sleeping_algos() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(5.0), 60).instance(2).unwrap();
        for algo in SLEEPING_ALGOS {
            let a = measure_once(&g, algo, 3, Execution::Auto).unwrap();
            let b = measure_once(&g, algo, 3, Execution::ForceEngine).unwrap();
            assert_eq!(a.mis_size, b.mis_size, "{algo}");
            assert_eq!(a.summary.worst_round, b.summary.worst_round, "{algo}");
            assert!((a.summary.node_avg_awake - b.summary.node_avg_awake).abs() < 1e-9);
        }
    }
}
