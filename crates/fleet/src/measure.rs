//! Unified measurement of any MIS algorithm on any workload (the trial
//! body every fleet job runs).

use crate::error::FleetError;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_graph::Graph;
use sleepy_mis::{execute_sleeping_mis, run_sleeping_mis, MisConfig};
use sleepy_net::{ComplexitySummary, EngineConfig};
use sleepy_verify::verify_mis;

/// Every algorithm the fleet can measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoKind {
    /// Algorithm 1 (SleepingMIS).
    SleepingMis,
    /// Algorithm 2 (Fast-SleepingMIS).
    FastSleepingMis,
    /// A traditional-model baseline.
    Baseline(BaselineKind),
}

impl std::fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoKind::SleepingMis => f.write_str("SleepingMIS"),
            AlgoKind::FastSleepingMis => f.write_str("Fast-SleepingMIS"),
            AlgoKind::Baseline(b) => write!(f, "{b}"),
        }
    }
}

/// The paper's two algorithms.
pub const SLEEPING_ALGOS: [AlgoKind; 2] = [AlgoKind::SleepingMis, AlgoKind::FastSleepingMis];

/// All algorithms: the paper's two plus all four baselines.
pub const ALL_ALGOS: [AlgoKind; 6] = [
    AlgoKind::SleepingMis,
    AlgoKind::FastSleepingMis,
    AlgoKind::Baseline(BaselineKind::LubyA),
    AlgoKind::Baseline(BaselineKind::LubyB),
    AlgoKind::Baseline(BaselineKind::GreedyCrt),
    AlgoKind::Baseline(BaselineKind::Ghaffari),
];

/// How to execute a sleeping-model algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Execution {
    /// Sleeping algorithms run on the fast combinatorial executor
    /// (bit-identical to the engine); baselines run on the engine.
    Auto,
    /// Everything runs on the message-passing engine (slower; used for
    /// cross-validation and when message/energy accounting is needed).
    ForceEngine,
}

/// One run's complexity measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// Algorithm label.
    pub algo: String,
    /// Node count of the instance.
    pub n: usize,
    /// The four paper measures plus communication totals.
    pub summary: ComplexitySummary,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a maximal independent set.
    pub valid: bool,
    /// Algorithm 2 base-case timeouts in this run.
    pub base_timeouts: usize,
}

/// Runs `algo` once on `graph` with the given seed.
///
/// # Errors
///
/// Propagates configuration, generation and engine errors.
pub fn measure_once(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    execution: Execution,
) -> Result<ComplexityReport, FleetError> {
    let (in_mis, summary, base_timeouts) = match (algo, execution) {
        (AlgoKind::SleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg1(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::FastSleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg2(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::SleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg1(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::FastSleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg2(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::Baseline(kind), _) => {
            let run = run_baseline(graph, kind, seed, &EngineConfig::default())?;
            (run.in_mis, run.metrics.summary(), 0)
        }
    };
    let valid = verify_mis(graph, &in_mis).is_ok();
    Ok(ComplexityReport {
        algo: algo.to_string(),
        n: graph.n(),
        summary,
        mis_size: in_mis.iter().filter(|&&b| b).count(),
        valid,
        base_timeouts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    #[test]
    fn measure_once_all_algorithms() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 80).instance(1).unwrap();
        for algo in ALL_ALGOS {
            let r = measure_once(&g, algo, 7, Execution::Auto).unwrap();
            assert!(r.valid, "{algo} invalid");
            assert!(r.mis_size > 0);
            assert!(r.summary.node_avg_awake > 0.0);
        }
    }

    #[test]
    fn engine_and_auto_agree_for_sleeping_algos() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(5.0), 60).instance(2).unwrap();
        for algo in SLEEPING_ALGOS {
            let a = measure_once(&g, algo, 3, Execution::Auto).unwrap();
            let b = measure_once(&g, algo, 3, Execution::ForceEngine).unwrap();
            assert_eq!(a.mis_size, b.mis_size, "{algo}");
            assert_eq!(a.summary.worst_round, b.summary.worst_round, "{algo}");
            assert!((a.summary.node_avg_awake - b.summary.node_avg_awake).abs() < 1e-9);
        }
    }
}
