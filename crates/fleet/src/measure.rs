//! Unified measurement of any MIS algorithm on any workload (the trial
//! body every fleet job runs), both static and dynamic: a dynamic trial
//! runs one phase per churn batch, either recomputing the MIS from
//! scratch, repairing it on the restricted damaged neighborhood in one
//! batched pass, or absorbing the batch *incrementally* — one update
//! event at a time, with per-update awake-cost accounting
//! ([`UpdateRecord`], [`IncrementalRepairer`]).

use crate::error::FleetError;
use crate::seed;
use crate::workload::DynamicWorkload;
use serde::{Deserialize, Serialize};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_graph::{DeltaEvent, DynGraph, Graph, GraphError, NodeId};
use sleepy_mis::{execute_sleeping_mis, run_sleeping_mis, MisConfig};
use sleepy_net::{ComplexitySummary, EngineConfig};
use sleepy_verify::verify_mis;

/// Every algorithm the fleet can measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgoKind {
    /// Algorithm 1 (SleepingMIS).
    SleepingMis,
    /// Algorithm 2 (Fast-SleepingMIS).
    FastSleepingMis,
    /// A traditional-model baseline.
    Baseline(BaselineKind),
}

impl std::fmt::Display for AlgoKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgoKind::SleepingMis => f.write_str("SleepingMIS"),
            AlgoKind::FastSleepingMis => f.write_str("Fast-SleepingMIS"),
            AlgoKind::Baseline(b) => write!(f, "{b}"),
        }
    }
}

/// The paper's two algorithms.
pub const SLEEPING_ALGOS: [AlgoKind; 2] = [AlgoKind::SleepingMis, AlgoKind::FastSleepingMis];

/// All algorithms: the paper's two plus all four baselines.
pub const ALL_ALGOS: [AlgoKind; 6] = [
    AlgoKind::SleepingMis,
    AlgoKind::FastSleepingMis,
    AlgoKind::Baseline(BaselineKind::LubyA),
    AlgoKind::Baseline(BaselineKind::LubyB),
    AlgoKind::Baseline(BaselineKind::GreedyCrt),
    AlgoKind::Baseline(BaselineKind::Ghaffari),
];

/// How to execute a sleeping-model algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Execution {
    /// Sleeping algorithms run on the fast combinatorial executor
    /// (bit-identical to the engine); baselines run on the engine.
    Auto,
    /// Everything runs on the message-passing engine (slower; used for
    /// cross-validation and when message/energy accounting is needed).
    ForceEngine,
}

/// One run's complexity measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComplexityReport {
    /// Algorithm label.
    pub algo: String,
    /// Node count of the instance.
    pub n: usize,
    /// The four paper measures plus communication totals.
    pub summary: ComplexitySummary,
    /// Size of the computed MIS.
    pub mis_size: usize,
    /// Whether the output verified as a maximal independent set.
    pub valid: bool,
    /// Algorithm 2 base-case timeouts in this run.
    pub base_timeouts: usize,
}

/// Runs `algo` once on `graph` with the given seed.
///
/// # Errors
///
/// Propagates configuration, generation and engine errors.
pub fn measure_once(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    execution: Execution,
) -> Result<ComplexityReport, FleetError> {
    let (in_mis, summary, base_timeouts) = run_algo(graph, algo, seed, execution)?;
    let valid = verify_mis(graph, &in_mis).is_ok();
    Ok(ComplexityReport {
        algo: algo.to_string(),
        n: graph.n(),
        summary,
        mis_size: in_mis.iter().filter(|&&b| b).count(),
        valid,
        base_timeouts,
    })
}

/// Executes `algo` on `graph`, returning the raw membership vector along
/// with the complexity summary (the shared body of [`measure_once`] and
/// the dynamic per-phase path, which must carry membership across
/// phases).
fn run_algo(
    graph: &Graph,
    algo: AlgoKind,
    seed: u64,
    execution: Execution,
) -> Result<(Vec<bool>, ComplexitySummary, usize), FleetError> {
    let out = match (algo, execution) {
        (AlgoKind::SleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg1(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::FastSleepingMis, Execution::Auto) => {
            let out = execute_sleeping_mis(graph, MisConfig::alg2(seed))?;
            let timeouts = out.base_timeout.iter().filter(|&&t| t).count();
            (out.in_mis.clone(), out.summary(), timeouts)
        }
        (AlgoKind::SleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg1(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::FastSleepingMis, Execution::ForceEngine) => {
            let run = run_sleeping_mis(graph, MisConfig::alg2(seed), &EngineConfig::default())?;
            let t = run.base_timeouts.len();
            (run.in_mis, run.metrics.summary(), t)
        }
        (AlgoKind::Baseline(kind), _) => {
            let run = run_baseline(graph, kind, seed, &EngineConfig::default())?;
            (run.in_mis, run.metrics.summary(), 0)
        }
    };
    Ok(out)
}

/// How a dynamic trial reacts to each churn batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RepairStrategy {
    /// Rerun the algorithm from scratch on the mutated graph.
    Recompute,
    /// Keep the surviving MIS, evict one endpoint of every newly
    /// conflicting edge, and rerun the algorithm only on the induced
    /// subgraph of *undecided* nodes (not in the set and not dominated
    /// by it) — everyone else stays asleep through the whole phase.
    Repair,
    /// Absorb the churn batch one update event at a time
    /// ([`GraphDelta::events`](sleepy_graph::GraphDelta::events)): after
    /// every single edge flip or node arrival/departure the MIS is made
    /// valid again by evicting at most one conflicting member and
    /// re-running only on the event's undecided frontier. Records one
    /// [`UpdateRecord`] per event — the measurement granularity of
    /// Ghaffari–Portmann-style amortized per-update awake bounds.
    Incremental,
}

impl std::fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairStrategy::Recompute => f.write_str("recompute"),
            RepairStrategy::Repair => f.write_str("repair"),
            RepairStrategy::Incremental => f.write_str("incremental"),
        }
    }
}

/// All repair strategies, in canonical sweep order.
pub const ALL_STRATEGIES: [RepairStrategy; 3] =
    [RepairStrategy::Recompute, RepairStrategy::Repair, RepairStrategy::Incremental];

/// The kind of one absorbed update event (mirrors
/// [`DeltaEvent`], without the ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateKind {
    /// An edge was deleted.
    EdgeDelete,
    /// An edge was inserted.
    EdgeInsert,
    /// A node departed with its incident edges.
    NodeDeparture,
    /// An isolated node arrived.
    NodeArrival,
}

impl UpdateKind {
    /// The kind of a [`DeltaEvent`].
    pub fn of(event: &DeltaEvent) -> Self {
        match event {
            DeltaEvent::RemoveEdge(..) => UpdateKind::EdgeDelete,
            DeltaEvent::AddEdge(..) => UpdateKind::EdgeInsert,
            DeltaEvent::RemoveNode(..) => UpdateKind::NodeDeparture,
            DeltaEvent::AddNode => UpdateKind::NodeArrival,
        }
    }

    /// Short stable label, identical to [`DeltaEvent::label`].
    pub fn label(&self) -> &'static str {
        match self {
            UpdateKind::EdgeDelete => "edge-del",
            UpdateKind::EdgeInsert => "edge-ins",
            UpdateKind::NodeDeparture => "node-dep",
            UpdateKind::NodeArrival => "node-arr",
        }
    }
}

impl std::fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The cost of absorbing one update event in an incremental phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateRecord {
    /// What kind of mutation this update was.
    pub kind: UpdateKind,
    /// Nodes the algorithm re-ran on to absorb it (0 = free update).
    pub scope: usize,
    /// Total awake rounds spent absorbing it, summed over those nodes.
    pub awake_sum: f64,
}

/// One phase's measurements in a dynamic trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseReport {
    /// 0-based phase index (phase 0 is the initial full run).
    pub phase: usize,
    /// The phase's complexity measurements. For repair phases the
    /// averages are taken over the *whole* phase graph: nodes outside
    /// the repair scope sleep through the phase and contribute zero
    /// awake rounds — the quantity of interest for churn workloads.
    pub report: ComplexityReport,
    /// Edge count of the phase graph.
    pub m: usize,
    /// Nodes the algorithm actually ran on this phase (the whole graph
    /// for phase 0 and for [`RepairStrategy::Recompute`]; for
    /// [`RepairStrategy::Incremental`] the *sum* of per-update scopes).
    pub repair_scope: usize,
    /// MIS members carried over unchanged from the previous phase.
    pub carried: usize,
    /// Per-update cost records, in absorption order — populated only by
    /// [`RepairStrategy::Incremental`] (empty for phase 0 and for the
    /// batched strategies).
    pub updates: Vec<UpdateRecord>,
}

/// The full result of one dynamic trial: one report per phase.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicReport {
    /// Per-phase reports, in phase order.
    pub phases: Vec<PhaseReport>,
}

impl DynamicReport {
    /// Whether every phase's output verified as an MIS of its graph.
    pub fn all_valid(&self) -> bool {
        self.phases.iter().all(|p| p.report.valid)
    }
}

/// Runs one dynamic trial: generates the phase-0 instance, runs `algo`
/// in full, then alternates seeded churn batches with per-phase
/// recompute or repair, re-verifying validity on every mutated graph.
///
/// Phase randomness is domain-separated: graph generation, churn
/// sampling, and per-phase coins come from independent SplitMix64
/// streams rooted at `trial_seed`, so the whole trial is a pure function
/// of `(workload, algo, trial_seed, execution, strategy)`.
///
/// # Errors
///
/// Propagates generation, churn-spec, and execution errors.
///
/// # Example
///
/// ```
/// use sleepy_fleet::{
///     measure_dynamic, AlgoKind, DynamicWorkload, Execution, RepairStrategy, Workload,
/// };
/// use sleepy_graph::{ChurnSpec, GraphFamily};
///
/// let w = DynamicWorkload::new(
///     Workload::new(GraphFamily::Cycle, 32),
///     3,                      // phases (phase 0 = initial full run)
///     ChurnSpec::edges(0.2),  // 20% edge churn per phase
/// );
/// let r = measure_dynamic(&w, AlgoKind::SleepingMis, 1, Execution::Auto,
///     RepairStrategy::Incremental)?;
/// assert_eq!(r.phases.len(), 3);
/// assert!(r.all_valid());
/// // The incremental strategy recorded one cost entry per update event.
/// assert!(!r.phases[1].updates.is_empty());
/// # Ok::<(), sleepy_fleet::FleetError>(())
/// ```
pub fn measure_dynamic(
    workload: &DynamicWorkload,
    algo: AlgoKind,
    trial_seed: u64,
    execution: Execution,
    strategy: RepairStrategy,
) -> Result<DynamicReport, FleetError> {
    let mut graph = workload.initial_instance(trial_seed)?;
    let mut phases = Vec::with_capacity(workload.phases);
    let (mut in_mis, summary, timeouts) =
        run_algo(&graph, algo, seed::phase_seed(trial_seed, 0), execution)?;
    phases.push(phase_report(
        0,
        &graph,
        algo,
        &in_mis,
        summary,
        timeouts,
        graph.n(),
        0,
        Vec::new(),
    ));

    for phase in 1..workload.phases {
        let _phase_span = sleepy_telemetry::span!("repair", "phase", {
            "phase": phase,
            "strategy": strategy.to_string(),
        });
        // The churn batch is sampled against the *current* MIS so the
        // adversarial model can aim; strategies then differ only in how
        // they absorb it.
        let delta = workload.churn_batch(&graph, trial_seed, phase, Some(&in_mis))?;
        let phase_seed = seed::phase_seed(trial_seed, phase as u64);
        let (set, summary, timeouts, scope, carried, updates) = match strategy {
            // The batched strategies share a single delta application —
            // the outcome (graph + id mapping) is computed once and both
            // arms reuse it.
            RepairStrategy::Recompute | RepairStrategy::Repair => {
                let outcome = delta.apply(&graph)?;
                if strategy == RepairStrategy::Recompute {
                    graph = outcome.graph;
                    let (set, summary, timeouts) = run_algo(&graph, algo, phase_seed, execution)?;
                    (set, summary, timeouts, graph.n(), 0, Vec::new())
                } else {
                    // Carry membership through the id mapping (departed
                    // members drop).
                    let mut carried_set = vec![false; outcome.graph.n()];
                    for (old, new) in outcome.old_to_new.iter().enumerate() {
                        if let Some(new) = new {
                            carried_set[*new as usize] = in_mis[old];
                        }
                    }
                    graph = outcome.graph;
                    let (set, summary, timeouts, scope, carried) =
                        repair_phase(&graph, carried_set, algo, phase_seed, execution)?;
                    (set, summary, timeouts, scope, carried, Vec::new())
                }
            }
            RepairStrategy::Incremental => {
                let owned = std::mem::replace(&mut graph, empty_graph());
                let mut repairer =
                    IncrementalRepairer::new(owned, std::mem::take(&mut in_mis), algo, execution);
                let mut updates = Vec::new();
                for (k, event) in delta.events().into_iter().enumerate() {
                    updates.push(repairer.absorb(event, seed::update_seed(phase_seed, k as u64))?);
                }
                let done = repairer.finish();
                graph = done.graph;
                (done.set, done.summary, done.base_timeouts, done.scope, done.carried, updates)
            }
        };
        phases.push(phase_report(
            phase, &graph, algo, &set, summary, timeouts, scope, carried, updates,
        ));
        in_mis = set;
    }
    Ok(DynamicReport { phases })
}

/// The zero-node graph (placeholder while a phase owns the real one).
fn empty_graph() -> Graph {
    Graph::from_edges(0, std::iter::empty::<(NodeId, NodeId)>()).expect("empty graph is valid")
}

/// Everything one incremental phase produced, returned by
/// [`IncrementalRepairer::finish`].
#[derive(Debug)]
pub struct IncrementalPhase {
    /// The phase-end graph.
    pub graph: Graph,
    /// The phase-end MIS membership.
    pub set: Vec<bool>,
    /// The phase's complexity summary over the whole phase-end graph
    /// (awake/round averages re-divide the per-update sums by `n`;
    /// `worst_awake`/`worst_round` are per-update maxima).
    pub summary: ComplexitySummary,
    /// Algorithm 2 base-case timeouts across all updates.
    pub base_timeouts: usize,
    /// Sum of per-update repair scopes.
    pub scope: usize,
    /// Members that survived from phase start to phase end untouched.
    pub carried: usize,
}

// sleepy-lint: deny(telemetry-purity): AbsorbTotals is the arithmetic both repair
// paths must agree on bit-for-bit; a telemetry call here would be a side channel
// the in-place-vs-rebuild oracle cannot see. This file legitimately opens spans
// elsewhere, so the purity zone is re-imposed just for this region.
/// The per-update complexity sums an incremental phase accumulates
/// (shared by [`IncrementalRepairer`] and [`RebuildRepairer`], whose
/// records must stay bit-identical).
#[derive(Debug, Default)]
struct AbsorbTotals {
    awake_sum: f64,
    round_sum: f64,
    worst_awake: u64,
    worst_round: u64,
    active_rounds: u64,
    messages: u64,
    dropped: u64,
    lost: u64,
    bits: u64,
    timeouts: usize,
    scope_total: usize,
}

impl AbsorbTotals {
    /// Folds one frontier re-run's summary in, returning the update's
    /// awake-round sum (the [`UpdateRecord::awake_sum`] value).
    fn absorb(&mut self, summary: &ComplexitySummary, scope: usize, timeouts: usize) -> f64 {
        let awake_sum = summary.node_avg_awake * scope as f64;
        self.awake_sum += awake_sum;
        self.round_sum += summary.node_avg_round * scope as f64;
        self.worst_awake = self.worst_awake.max(summary.worst_awake);
        self.worst_round = self.worst_round.max(summary.worst_round);
        self.active_rounds += summary.active_rounds;
        self.messages += summary.total_messages;
        self.dropped += summary.dropped_messages;
        self.lost += summary.lost_messages;
        self.bits += summary.total_bits;
        self.timeouts += timeouts;
        self.scope_total += scope;
        awake_sum
    }

    /// The whole-phase summary over an `n`-node phase-end graph (nodes
    /// that slept through every update contribute zero awake rounds, so
    /// averages re-divide the per-update sums by `n`).
    fn summary(&self, n: usize) -> ComplexitySummary {
        let scale = |sum: f64| if n == 0 { 0.0 } else { sum / n as f64 };
        ComplexitySummary {
            n,
            node_avg_awake: scale(self.awake_sum),
            worst_awake: self.worst_awake,
            worst_round: self.worst_round,
            node_avg_round: scale(self.round_sum),
            active_rounds: self.active_rounds,
            total_messages: self.messages,
            dropped_messages: self.dropped,
            lost_messages: self.lost,
            total_bits: self.bits,
        }
    }
}
// sleepy-lint: end-deny(telemetry-purity)

/// Absorbs [`DeltaEvent`]s one at a time, keeping the MIS valid after
/// *every single update* — the incremental counterpart of the batched
/// [`RepairStrategy::Repair`] pass.
///
/// Per event it: applies the mutation **in place** on a [`DynGraph`]
/// (O(degree · log n), no CSR rebuild), carries membership on stable
/// slot handles (so nothing is remapped when ids compact), evicts (at
/// most) one endpoint of a newly conflicting edge, recomputes
/// decidedness only on the event's *frontier* — the nodes whose
/// dominator could have changed — and re-runs the algorithm on the
/// induced subgraph of undecided frontier nodes, assembled from reused
/// scratch buffers. Everyone else sleeps through the update, which is
/// what makes the per-update awake cost ([`UpdateRecord`]) the
/// Ghaffari–Portmann quantity rather than a whole-graph pass.
///
/// The records and the phase-end graph are bit-identical to
/// [`RebuildRepairer`]'s (the pre-refactor rebuild-per-event path,
/// kept as the benchmark baseline and equivalence oracle); only the
/// wall-clock differs. [`rebuild_count`](Self::rebuild_count) exposes
/// how many CSR materializations happened — zero until
/// [`finish`](Self::finish) snapshots the phase-end graph.
#[derive(Debug)]
pub struct IncrementalRepairer {
    graph: DynGraph,
    /// Membership by slot handle (stable across unrelated events).
    set: Vec<bool>,
    /// Phase-start members never evicted nor departed, by slot.
    carried: Vec<bool>,
    algo: AlgoKind,
    execution: Execution,
    totals: AbsorbTotals,
    // Scratch reused across absorbs (the rebuild path allocated all of
    // these afresh per event).
    /// Slots whose decidedness this event may have changed.
    candidates: Vec<NodeId>,
    /// Undecided frontier as (compact id, slot), sorted by compact id.
    frontier: Vec<(NodeId, NodeId)>,
    /// Slot-indexed frontier-membership marks (cleared after each use).
    in_frontier: Vec<bool>,
    /// Slot-indexed local subgraph index (valid only under the marks).
    local_of: Vec<NodeId>,
    /// Edge list of the frontier-induced subgraph, local ids.
    sub_edges: Vec<(NodeId, NodeId)>,
    // Telemetry tallies for this phase, flushed to the registry by
    // `finish`. Kept out of `AbsorbTotals`, which `RebuildRepairer`
    // shares and whose records must stay bit-identical.
    /// Events absorbed this phase.
    events_absorbed: u64,
    /// Member evictions forced by edge insertions.
    evictions: u64,
    /// Events whose frontier was empty (no re-run needed).
    zero_scope: u64,
}

impl IncrementalRepairer {
    /// Starts a phase from a graph and a valid MIS of it.
    pub fn new(graph: Graph, in_mis: Vec<bool>, algo: AlgoKind, execution: Execution) -> Self {
        let graph = graph.to_dyn();
        let cap = graph.capacity();
        let carried = in_mis.clone();
        IncrementalRepairer {
            graph,
            set: in_mis,
            carried,
            algo,
            execution,
            totals: AbsorbTotals::default(),
            candidates: Vec::new(),
            frontier: Vec::new(),
            in_frontier: vec![false; cap],
            local_of: vec![0; cap],
            sub_edges: Vec::new(),
            events_absorbed: 0,
            evictions: 0,
            zero_scope: 0,
        }
    }

    /// The current graph (slot-handle view; see [`DynGraph`]).
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The current membership by **slot handle** — a valid MIS of
    /// [`graph`](Self::graph) after every [`absorb`](Self::absorb).
    /// For the compact-id view use [`current`](Self::current).
    pub fn in_mis(&self) -> &[bool] {
        &self.set
    }

    /// CSR materializations so far — 0 during absorption; the
    /// phase-end [`finish`](Self::finish) performs exactly one. The
    /// smoke tests pin the incremental path to this invariant.
    pub fn rebuild_count(&self) -> u64 {
        self.graph.rebuild_count()
    }

    /// The CSR snapshot, the compact-space membership, and the carried
    /// count — the one slot→compact projection [`current`](Self::current)
    /// and [`finish`](Self::finish) share.
    fn compact_view(&self) -> (Graph, Vec<bool>, usize) {
        let (snapshot, compact) = self.graph.snapshot_with_ids();
        let mut set = vec![false; snapshot.n()];
        let mut carried = 0usize;
        for (slot, &id) in compact.iter().enumerate() {
            if id != NodeId::MAX {
                set[id as usize] = self.set[slot];
                carried += self.carried[slot] as usize;
            }
        }
        (snapshot, set, carried)
    }

    /// The current graph and membership in compact-id space, for
    /// verification and diagnostics. Materializes a CSR snapshot, so
    /// this *does* count as a rebuild — don't call it per absorbed
    /// event outside tests.
    pub fn current(&self) -> (Graph, Vec<bool>) {
        let (snapshot, set, _) = self.compact_view();
        (snapshot, set)
    }

    /// Grows the slot-indexed state after an arrival extended the slot
    /// space, and resets the new slot's membership.
    fn init_slot(&mut self, slot: NodeId) {
        let cap = self.graph.capacity();
        if self.set.len() < cap {
            self.set.resize(cap, false);
            self.carried.resize(cap, false);
            self.in_frontier.resize(cap, false);
            self.local_of.resize(cap, 0);
        }
        self.set[slot as usize] = false;
        self.carried[slot as usize] = false;
    }

    /// Range-validates a compact id exactly as the delta path would
    /// (delegates to the one shared rule,
    /// [`DynGraph::check_compact`]).
    fn check_compact(&self, id: NodeId) -> Result<(), FleetError> {
        Ok(self.graph.check_compact(id)?)
    }

    /// Absorbs one update event, restoring MIS validity before
    /// returning. `seed` drives the frontier re-run's coins (callers
    /// use [`seed::update_seed`](crate::seed::update_seed)). The
    /// event's node ids are compact ids (the [`DeltaEvent`] contract);
    /// everything past the boundary runs on slot handles.
    ///
    /// # Errors
    ///
    /// Propagates event-validation and execution errors.
    pub fn absorb(&mut self, event: DeltaEvent, seed: u64) -> Result<UpdateRecord, FleetError> {
        let kind = UpdateKind::of(&event);
        let _span = sleepy_telemetry::span!("repair", "event", {"kind": kind.label()});
        self.events_absorbed += 1;
        self.candidates.clear();
        // Apply the mutation in place and gather the candidate slots
        // whose decidedness it can change: the edge endpoints, a
        // departing node's neighborhood (they may lose their only
        // dominator), an evicted member's neighborhood, the arrival.
        match event {
            DeltaEvent::RemoveEdge(u, v) => {
                self.check_compact(u)?;
                self.check_compact(v)?;
                if u != v {
                    let (a, b) = (self.graph.slot_at(u), self.graph.slot_at(v));
                    self.graph.remove_edge(a, b);
                    self.candidates.push(a);
                    self.candidates.push(b);
                }
            }
            DeltaEvent::RemoveNode(v) => {
                self.check_compact(v)?;
                let slot = self.graph.slot_at(v);
                self.candidates.extend_from_slice(self.graph.neighbors(slot));
                self.graph.remove_node(slot);
                self.set[slot as usize] = false;
                self.carried[slot as usize] = false;
            }
            DeltaEvent::AddNode => {
                // The arrival is undecided by construction.
                let slot = self.graph.add_node();
                self.init_slot(slot);
                self.candidates.push(slot);
            }
            DeltaEvent::AddEdge(u, v) => {
                self.check_compact(u)?;
                self.check_compact(v)?;
                if u == v {
                    return Err(GraphError::SelfLoop { node: u }.into());
                }
                let (a, b) = (self.graph.slot_at(u), self.graph.slot_at(v));
                self.graph.add_edge(a, b);
                self.candidates.push(a);
                self.candidates.push(b);
                // The insertion can join two members; evict the larger
                // *compact* id (the same lexicographic rule as the
                // batched repair), whose neighbors may thereby lose
                // their dominator.
                if self.set[a as usize] && self.set[b as usize] {
                    let evicted = if u > v { a } else { b };
                    self.set[evicted as usize] = false;
                    self.carried[evicted as usize] = false;
                    self.candidates.extend_from_slice(self.graph.neighbors(evicted));
                    self.evictions += 1;
                }
            }
        }
        // Undecided frontier: candidates outside the set with no
        // neighbor in it. (All other nodes were decided before the
        // event and nothing about their neighborhood changed.) Sorted
        // by compact id so the induced subgraph is bit-identical to the
        // one the rebuild path extracts.
        self.candidates.sort_unstable();
        self.candidates.dedup();
        self.frontier.clear();
        for i in 0..self.candidates.len() {
            let c = self.candidates[i];
            let decided = self.set[c as usize]
                || self.graph.neighbors(c).iter().any(|&w| self.set[w as usize]);
            if !decided {
                self.frontier.push((self.graph.compact_id(c), c));
            }
        }
        if self.frontier.is_empty() {
            self.zero_scope += 1;
            return Ok(UpdateRecord { kind, scope: 0, awake_sum: 0.0 });
        }
        self.frontier.sort_unstable();
        let scope = self.frontier.len();
        for (local, &(_, slot)) in self.frontier.iter().enumerate() {
            self.in_frontier[slot as usize] = true;
            self.local_of[slot as usize] = local as NodeId;
        }
        self.sub_edges.clear();
        for &(_, slot) in &self.frontier {
            let lu = self.local_of[slot as usize];
            for &w in self.graph.neighbors(slot) {
                if self.in_frontier[w as usize] {
                    let lw = self.local_of[w as usize];
                    if lu < lw {
                        self.sub_edges.push((lu, lw));
                    }
                }
            }
        }
        let sub = Graph::from_edges(scope, self.sub_edges.iter().copied())?;
        for &(_, slot) in &self.frontier {
            self.in_frontier[slot as usize] = false;
        }
        let (sub_mis, summary, timeouts) = run_algo(&sub, self.algo, seed, self.execution)?;
        for (local, &(_, slot)) in self.frontier.iter().enumerate() {
            if sub_mis[local] {
                self.set[slot as usize] = true;
            }
        }
        let awake_sum = self.totals.absorb(&summary, scope, timeouts);
        Ok(UpdateRecord { kind, scope, awake_sum })
    }

    /// Ends the phase, snapshotting the phase-end graph into compact-id
    /// CSR form (the phase's single rebuild) and folding the per-update
    /// sums into one whole-phase-graph summary. Flushes this phase's
    /// telemetry counters (`repair.*`, `graph.*`) to the registry.
    pub fn finish(self) -> IncrementalPhase {
        if sleepy_telemetry::enabled() {
            sleepy_telemetry::counter_add("repair.events", self.events_absorbed);
            sleepy_telemetry::counter_add("repair.evictions", self.evictions);
            sleepy_telemetry::counter_add("repair.zero_scope", self.zero_scope);
            sleepy_telemetry::counter_add("repair.frontier_nodes", self.totals.scope_total as u64);
            // The bench-churn claim, visible in normal runs: absorption
            // itself triggers no CSR rebuilds.
            sleepy_telemetry::counter_add("graph.absorb_rebuilds", self.graph.rebuild_count());
            for (key, buf) in [
                ("repair.scratch_candidates_hw", self.candidates.capacity()),
                ("repair.scratch_frontier_hw", self.frontier.capacity()),
                ("repair.scratch_edges_hw", self.sub_edges.capacity()),
            ] {
                sleepy_telemetry::gauge_max(key, buf as u64);
            }
        }
        let (graph, set, carried) = self.compact_view();
        // After the snapshot: the phase's one rebuild, plus any counted
        // above.
        sleepy_telemetry::counter_add("graph.rebuilds", self.graph.rebuild_count());
        let n = graph.n();
        IncrementalPhase {
            graph,
            set,
            summary: self.totals.summary(n),
            base_timeouts: self.totals.timeouts,
            scope: self.totals.scope_total,
            carried,
        }
    }
}

/// The pre-[`DynGraph`] incremental path: absorbs each event by
/// rebuilding the CSR graph from a one-event [`GraphDelta`] — O(n + m)
/// *per event*. Kept (not as a `RepairStrategy`) as the wall-clock
/// baseline for `fleet bench-churn` / `bench_churn_scaling` and as the
/// oracle the equivalence proptests compare [`IncrementalRepairer`]
/// against: both must produce bit-identical [`UpdateRecord`]s, graphs
/// and memberships for the same event sequence and seeds.
///
/// [`GraphDelta`]: sleepy_graph::GraphDelta
#[derive(Debug)]
pub struct RebuildRepairer {
    graph: Graph,
    set: Vec<bool>,
    carried: Vec<bool>,
    algo: AlgoKind,
    execution: Execution,
    totals: AbsorbTotals,
}

impl RebuildRepairer {
    /// Starts a phase from a graph and a valid MIS of it.
    pub fn new(graph: Graph, in_mis: Vec<bool>, algo: AlgoKind, execution: Execution) -> Self {
        let carried = in_mis.clone();
        RebuildRepairer {
            graph,
            set: in_mis,
            carried,
            algo,
            execution,
            totals: AbsorbTotals::default(),
        }
    }

    /// The current graph (compact-id CSR — rebuilt by every absorb).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current membership in compact-id space.
    pub fn in_mis(&self) -> &[bool] {
        &self.set
    }

    /// Absorbs one update event by full CSR rebuild — semantically
    /// identical to [`IncrementalRepairer::absorb`], O(n + m) slower.
    ///
    /// # Errors
    ///
    /// Propagates delta-application and execution errors.
    pub fn absorb(&mut self, event: DeltaEvent, seed: u64) -> Result<UpdateRecord, FleetError> {
        let kind = UpdateKind::of(&event);
        // Candidate nodes in pre-event ids: the edge endpoints, or a
        // departing node's neighborhood.
        let candidates_old: Vec<NodeId> = match event {
            DeltaEvent::RemoveEdge(u, v) | DeltaEvent::AddEdge(u, v) => vec![u, v],
            DeltaEvent::RemoveNode(v) => self.graph.neighbors(v).to_vec(),
            DeltaEvent::AddNode => Vec::new(),
        };
        let outcome = event.to_delta().apply(&self.graph)?;
        let n = outcome.graph.n();
        let mut set = vec![false; n];
        let mut carried = vec![false; n];
        for (old, new) in outcome.old_to_new.iter().enumerate() {
            if let Some(new) = new {
                set[*new as usize] = self.set[old];
                carried[*new as usize] = self.carried[old];
            }
        }
        let mut candidates: Vec<NodeId> =
            candidates_old.iter().filter_map(|&v| outcome.old_to_new[v as usize]).collect();
        self.graph = outcome.graph;
        match event {
            DeltaEvent::AddNode => candidates.push((n - 1) as NodeId),
            DeltaEvent::AddEdge(u, v) if set[u as usize] && set[v as usize] => {
                let evicted = u.max(v);
                set[evicted as usize] = false;
                carried[evicted as usize] = false;
                candidates.extend_from_slice(self.graph.neighbors(evicted));
            }
            _ => {}
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut undecided = vec![false; n];
        let mut any = false;
        for &c in &candidates {
            let decided =
                set[c as usize] || self.graph.neighbors(c).iter().any(|&w| set[w as usize]);
            if !decided {
                undecided[c as usize] = true;
                any = true;
            }
        }
        self.set = set;
        self.carried = carried;
        if !any {
            return Ok(UpdateRecord { kind, scope: 0, awake_sum: 0.0 });
        }
        let (sub, orig) = self.graph.induced_subgraph(&undecided);
        let scope = sub.n();
        let (sub_mis, summary, timeouts) = run_algo(&sub, self.algo, seed, self.execution)?;
        for (i, &o) in orig.iter().enumerate() {
            if sub_mis[i] {
                self.set[o as usize] = true;
            }
        }
        let awake_sum = self.totals.absorb(&summary, scope, timeouts);
        Ok(UpdateRecord { kind, scope, awake_sum })
    }

    /// Ends the phase; same contract as [`IncrementalRepairer::finish`].
    pub fn finish(self) -> IncrementalPhase {
        let n = self.graph.n();
        let carried = self.carried.iter().filter(|&&b| b).count();
        IncrementalPhase {
            summary: self.totals.summary(n),
            base_timeouts: self.totals.timeouts,
            scope: self.totals.scope_total,
            graph: self.graph,
            set: self.set,
            carried,
        }
    }
}

/// The repair step of one phase: conflict eviction, then a restricted
/// re-run on the undecided neighborhood only.
fn repair_phase(
    graph: &Graph,
    mut set: Vec<bool>,
    algo: AlgoKind,
    phase_seed: u64,
    execution: Execution,
) -> Result<(Vec<bool>, ComplexitySummary, usize, usize, usize), FleetError> {
    let n = graph.n();
    // Inserted edges can join two carried members; evict the larger
    // endpoint of each conflict (a single lexicographic pass leaves the
    // set independent, since membership only ever shrinks here).
    for (u, v) in graph.edges() {
        if set[u as usize] && set[v as usize] {
            set[v as usize] = false;
        }
    }
    let carried = set.iter().filter(|&&b| b).count();
    // Undecided: outside the carried set and not dominated by it —
    // evictees, arrivals, and nodes whose only dominator departed.
    let undecided: Vec<bool> = (0..n)
        .map(|v| {
            !set[v] && !graph.neighbors(v as sleepy_graph::NodeId).iter().any(|&w| set[w as usize])
        })
        .collect();
    let (sub, orig) = graph.induced_subgraph(&undecided);
    let scope = sub.n();
    let (sub_summary, timeouts) = if scope == 0 {
        (zero_summary(0), 0)
    } else {
        let (sub_mis, sub_summary, timeouts) = run_algo(&sub, algo, phase_seed, execution)?;
        for (i, &o) in orig.iter().enumerate() {
            if sub_mis[i] {
                set[o as usize] = true;
            }
        }
        (sub_summary, timeouts)
    };
    // Re-express the subgraph run over the whole phase graph: the n −
    // scope untouched nodes slept through the phase, so sums are
    // unchanged and averages re-divide by n.
    let scale = |avg: f64| if n == 0 { 0.0 } else { avg * scope as f64 / n as f64 };
    let summary = ComplexitySummary {
        n,
        node_avg_awake: scale(sub_summary.node_avg_awake),
        worst_awake: sub_summary.worst_awake,
        worst_round: sub_summary.worst_round,
        node_avg_round: scale(sub_summary.node_avg_round),
        active_rounds: sub_summary.active_rounds,
        total_messages: sub_summary.total_messages,
        dropped_messages: sub_summary.dropped_messages,
        lost_messages: sub_summary.lost_messages,
        total_bits: sub_summary.total_bits,
    };
    Ok((set, summary, timeouts, scope, carried))
}

/// An all-zero summary for phases whose repair scope is empty.
fn zero_summary(n: usize) -> ComplexitySummary {
    ComplexitySummary {
        n,
        node_avg_awake: 0.0,
        worst_awake: 0,
        worst_round: 0,
        node_avg_round: 0.0,
        active_rounds: 0,
        total_messages: 0,
        dropped_messages: 0,
        lost_messages: 0,
        total_bits: 0,
    }
}

#[allow(clippy::too_many_arguments)]
fn phase_report(
    phase: usize,
    graph: &Graph,
    algo: AlgoKind,
    set: &[bool],
    summary: ComplexitySummary,
    base_timeouts: usize,
    repair_scope: usize,
    carried: usize,
    updates: Vec<UpdateRecord>,
) -> PhaseReport {
    let valid = verify_mis(graph, set).is_ok();
    PhaseReport {
        phase,
        report: ComplexityReport {
            algo: algo.to_string(),
            n: graph.n(),
            summary,
            mis_size: set.iter().filter(|&&b| b).count(),
            valid,
            base_timeouts,
        },
        m: graph.m(),
        repair_scope,
        carried,
        updates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use sleepy_graph::GraphFamily;

    #[test]
    fn measure_once_all_algorithms() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(6.0), 80).instance(1).unwrap();
        for algo in ALL_ALGOS {
            let r = measure_once(&g, algo, 7, Execution::Auto).unwrap();
            assert!(r.valid, "{algo} invalid");
            assert!(r.mis_size > 0);
            assert!(r.summary.node_avg_awake > 0.0);
        }
    }

    #[test]
    fn measure_once_on_degenerate_graphs() {
        // The dynamic path can empty a graph or isolate every node;
        // measurement must stay well-defined for every algorithm.
        for family in [GraphFamily::Empty, GraphFamily::Grid2d, GraphFamily::Hypercube] {
            for n in [0usize, 1, 2] {
                let g = Workload::new(family, n).instance(1).unwrap();
                for algo in ALL_ALGOS {
                    let r = measure_once(&g, algo, 3, Execution::Auto)
                        .unwrap_or_else(|e| panic!("{algo} on {family} n={n}: {e}"));
                    assert!(r.valid, "{algo} on {family} n={n}");
                    assert_eq!(r.n, g.n());
                    if g.n() == 0 {
                        assert_eq!(r.mis_size, 0);
                        assert_eq!(r.summary.node_avg_awake, 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn dynamic_phases_all_valid_under_every_strategy() {
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::GnpAvgDeg(6.0), 120),
            4,
            sleepy_graph::ChurnSpec {
                edge_delete_frac: 0.1,
                edge_insert_frac: 0.1,
                node_delete_frac: 0.05,
                node_insert_frac: 0.05,
                arrival_degree: 3,
                ..sleepy_graph::ChurnSpec::none()
            },
        );
        for strategy in ALL_STRATEGIES {
            let r =
                measure_dynamic(&w, AlgoKind::SleepingMis, 9, Execution::Auto, strategy).unwrap();
            assert_eq!(r.phases.len(), 4);
            assert!(r.all_valid(), "{strategy}");
            for p in &r.phases {
                assert_eq!(p.report.algo, "SleepingMIS");
                assert!(p.report.mis_size > 0);
                if strategy == RepairStrategy::Incremental && p.phase > 0 {
                    assert!(!p.updates.is_empty(), "churn phases absorb events");
                    let scope_sum: usize = p.updates.iter().map(|u| u.scope).sum();
                    assert_eq!(scope_sum, p.repair_scope);
                    let awake_sum: f64 = p.updates.iter().map(|u| u.awake_sum).sum();
                    assert!(
                        (awake_sum - p.report.summary.node_avg_awake * p.report.n as f64).abs()
                            < 1e-9
                    );
                } else {
                    assert!(p.updates.is_empty());
                }
            }
        }
    }

    #[test]
    fn update_kind_labels_match_delta_event_labels() {
        // The doc contract: UpdateKind::label is identical to the
        // corresponding DeltaEvent::label. Pin it so the two string
        // tables (fleet vs graph crate) cannot drift apart.
        for event in [
            DeltaEvent::RemoveEdge(0, 1),
            DeltaEvent::AddEdge(0, 1),
            DeltaEvent::RemoveNode(0),
            DeltaEvent::AddNode,
        ] {
            assert_eq!(UpdateKind::of(&event).label(), event.label());
            assert_eq!(UpdateKind::of(&event).to_string(), event.label());
        }
    }

    #[test]
    fn incremental_repairer_keeps_mis_valid_after_every_event() {
        use sleepy_verify::verify_mis;
        let w = Workload::new(GraphFamily::GnpAvgDeg(6.0), 150);
        let g = w.instance(5).unwrap();
        let (in_mis, _, _) =
            super::run_algo(&g, AlgoKind::SleepingMis, 5, Execution::Auto).unwrap();
        let spec = sleepy_graph::ChurnSpec {
            edge_delete_frac: 0.15,
            edge_insert_frac: 0.15,
            node_delete_frac: 0.08,
            node_insert_frac: 0.08,
            arrival_degree: 2,
            ..sleepy_graph::ChurnSpec::none()
        };
        let delta = sleepy_graph::churn_delta_with_mis(&g, &spec, 3, Some(&in_mis)).unwrap();
        let mut rep = IncrementalRepairer::new(g, in_mis, AlgoKind::SleepingMis, Execution::Auto);
        let mut absorbed = 0;
        for (k, event) in delta.events().into_iter().enumerate() {
            rep.absorb(event, seed::update_seed(77, k as u64)).unwrap();
            let (g_now, set_now) = rep.current();
            assert!(verify_mis(&g_now, &set_now).is_ok(), "MIS invalid after event {k}");
            absorbed += 1;
        }
        assert!(absorbed > 10, "the batch must decompose into many events");
        let done = rep.finish();
        assert!(verify_mis(&done.graph, &done.set).is_ok());
        assert!(done.carried > 0);
        assert!(done.scope < done.graph.n(), "incremental repair must not touch everyone");
    }

    #[test]
    fn incremental_under_adversarial_churn_still_valid_and_costlier() {
        let churn = sleepy_graph::ChurnSpec::edges(0.08);
        let base = Workload::new(GraphFamily::GnpAvgDeg(6.0), 200);
        let uniform = DynamicWorkload::new(base, 5, churn);
        let adversarial = DynamicWorkload::new(base, 5, churn.adversarial());
        let run = |w: &DynamicWorkload| {
            measure_dynamic(
                w,
                AlgoKind::SleepingMis,
                8,
                Execution::Auto,
                RepairStrategy::Incremental,
            )
            .unwrap()
        };
        let (u, a) = (run(&uniform), run(&adversarial));
        assert!(u.all_valid() && a.all_valid());
        // The adversary aims every deletion at the MIS, so more updates
        // force a re-run (fewer zero-scope absorptions).
        let busy = |r: &DynamicReport| {
            r.phases[1..].iter().flat_map(|p| &p.updates).filter(|up| up.scope > 0).count() as f64
                / r.phases[1..].iter().map(|p| p.updates.len()).sum::<usize>() as f64
        };
        assert!(
            busy(&a) > busy(&u),
            "adversarial churn should force more non-trivial repairs ({} vs {})",
            busy(&a),
            busy(&u)
        );
        assert_ne!(uniform.key(), adversarial.key(), "model must discriminate content keys");
    }

    #[test]
    fn repair_scope_is_restricted_and_cheaper() {
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::GnpAvgDeg(6.0), 400),
            5,
            sleepy_graph::ChurnSpec::edges(0.02),
        );
        let repair =
            measure_dynamic(&w, AlgoKind::SleepingMis, 4, Execution::Auto, RepairStrategy::Repair)
                .unwrap();
        assert!(repair.all_valid());
        // Phase 0 runs everywhere; later phases must touch far fewer nodes.
        assert_eq!(repair.phases[0].repair_scope, 400);
        for p in &repair.phases[1..] {
            assert!(p.repair_scope < 150, "phase {} scope {}", p.phase, p.repair_scope);
            assert!(p.carried > 0);
            assert!(
                p.report.summary.node_avg_awake <= repair.phases[0].report.summary.node_avg_awake,
                "repair phase should cost no more per node than the full run"
            );
        }
    }

    #[test]
    fn single_phase_dynamic_matches_static_measurement() {
        let base = Workload::new(GraphFamily::GeometricAvgDeg(6.0), 90);
        let w = DynamicWorkload::from_static(base);
        let seed = 0xA11CE;
        let dynamic = measure_dynamic(
            &w,
            AlgoKind::FastSleepingMis,
            seed,
            Execution::Auto,
            RepairStrategy::Repair,
        )
        .unwrap();
        let g = base.instance(seed).unwrap();
        let stat = measure_once(&g, AlgoKind::FastSleepingMis, seed, Execution::Auto).unwrap();
        let p0 = &dynamic.phases[0].report;
        assert_eq!(p0.mis_size, stat.mis_size);
        assert_eq!(p0.summary.worst_round, stat.summary.worst_round);
        assert_eq!(p0.summary.node_avg_awake, stat.summary.node_avg_awake);
    }

    #[test]
    fn churn_that_empties_the_graph_is_handled() {
        // 100% node departure, no arrivals: phase 1 onward is the empty
        // graph; both strategies must report valid zero-cost phases.
        let w = DynamicWorkload::new(
            Workload::new(GraphFamily::Cycle, 24),
            3,
            sleepy_graph::ChurnSpec { node_delete_frac: 1.0, ..sleepy_graph::ChurnSpec::none() },
        );
        for strategy in ALL_STRATEGIES {
            let r =
                measure_dynamic(&w, AlgoKind::SleepingMis, 1, Execution::Auto, strategy).unwrap();
            assert!(r.all_valid(), "{strategy}");
            assert_eq!(r.phases[1].report.n, 0);
            assert_eq!(r.phases[1].report.mis_size, 0);
            assert_eq!(r.phases[2].report.summary.node_avg_awake, 0.0);
        }
    }

    #[test]
    fn engine_and_auto_agree_for_sleeping_algos() {
        let g = Workload::new(GraphFamily::GnpAvgDeg(5.0), 60).instance(2).unwrap();
        for algo in SLEEPING_ALGOS {
            let a = measure_once(&g, algo, 3, Execution::Auto).unwrap();
            let b = measure_once(&g, algo, 3, Execution::ForceEngine).unwrap();
            assert_eq!(a.mis_size, b.mis_size, "{algo}");
            assert_eq!(a.summary.worst_round, b.summary.worst_round, "{algo}");
            assert!((a.summary.node_avg_awake - b.summary.node_avg_awake).abs() < 1e-9);
        }
    }
}
