//! Mergeable per-job aggregates.
//!
//! The in-process runner keeps the strongest invariant — output depends
//! only on the plan — by having its in-order collector [`push`] every
//! trial sequentially in global trial order; neither thread count nor
//! shard size can perturb a single bit. [`merge`] is the associative
//! reduction for the *multi-process sharding* follow-on (ROADMAP),
//! where each process aggregates its plan-fixed trial range and the
//! coordinator merges partials in range order; floating-point rounding
//! then depends on the (plan-fixed) split geometry, but still not on
//! scheduling. Until that lands, `merge` is exercised by unit tests and
//! `sleepy_stats::StreamingMoments`, not by [`run_plan`].
//!
//! Moments stream in O(1) memory ([`StreamingMoments`]); exact p50/p99
//! additionally retain the raw per-trial values (8 bytes per trial per
//! metric — fine at the thousands-of-trials scale; a later PR can swap
//! in a quantile sketch).
//!
//! [`push`]: JobAggregate::push
//! [`merge`]: JobAggregate::merge
//! [`run_plan`]: crate::run_plan

use crate::measure::{ComplexityReport, DynamicReport};
use serde::{Deserialize, Serialize};
use sleepy_stats::{PhaseSeries, QuantileSketch, StreamingMoments, Summary, UpdateSeries};

/// A single metric's mergeable aggregate.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricAggregate {
    /// Streaming count/mean/M2/min/max.
    pub moments: StreamingMoments,
    /// Mergeable approximate quantiles (O(log n) memory). Reports
    /// still quote the exact sample-based p50/p99; the sketch is the
    /// groundwork for dropping raw samples once plans reach millions
    /// of trials — shard merges then ship sketches, not samples.
    pub sketch: QuantileSketch,
    samples: Vec<f64>,
}

impl MetricAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.sketch.push(x);
        self.samples.push(x);
    }

    /// Merges another aggregate that covers the trials *after* this
    /// one's (callers merge in canonical shard order).
    pub fn merge(&mut self, other: &MetricAggregate) {
        self.moments.merge(&other.moments);
        self.sketch.merge(&other.sketch);
        self.samples.extend_from_slice(&other.samples);
    }

    /// The sketch-estimated p-th percentile — what reports will switch
    /// to when raw samples are dropped at million-trial scale. Within
    /// ~1% rank error of [`percentile`](Self::percentile).
    pub fn approx_percentile(&self, p: f64) -> f64 {
        self.sketch.percentile(p)
    }

    /// The retained samples, sorted ascending (one sort feeds every
    /// quantile a caller reads).
    fn sorted_samples(&self) -> Vec<f64> {
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in metrics"));
        sorted
    }

    /// Nearest-rank percentile on an already-sorted sample
    /// (numerically identical to [`Summary::percentile_of`]).
    fn rank_of(sorted: &[f64], p: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }

    /// The p-th percentile (nearest-rank), 0 for an empty aggregate.
    pub fn percentile(&self, p: f64) -> f64 {
        Self::rank_of(&self.sorted_samples(), p)
    }

    /// The median of the retained samples.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Summary-statistics view (serializable).
    pub fn stats(&self) -> MetricStats {
        let sorted = self.sorted_samples();
        MetricStats {
            count: self.moments.count,
            mean: if self.moments.count == 0 { 0.0 } else { self.moments.mean },
            std_dev: self.moments.std_dev(),
            min: self.moments.min_or_zero(),
            max: self.moments.max_or_zero(),
            p50: Self::rank_of(&sorted, 50.0),
            p99: Self::rank_of(&sorted, 99.0),
        }
    }

    /// Converts into the harness's classic [`Summary`] shape.
    pub fn to_summary(&self) -> Summary {
        let sorted = self.sorted_samples();
        // Summary::of's median averages the middle pair for even
        // counts; reproduce that exactly.
        let c = sorted.len();
        let median = if c == 0 {
            0.0
        } else if c % 2 == 1 {
            sorted[c / 2]
        } else {
            (sorted[c / 2 - 1] + sorted[c / 2]) / 2.0
        };
        self.moments.to_summary(median)
    }
}

/// Serializable summary statistics of one metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricStats {
    /// Number of observations.
    pub count: u64,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (nearest-rank).
    pub p50: f64,
    /// 99th percentile (nearest-rank).
    pub p99: f64,
}

/// The mergeable aggregate of one job's trials.
#[derive(Debug, Clone, Default)]
pub struct JobAggregate {
    /// Node-averaged awake complexity per trial.
    pub node_avg_awake: MetricAggregate,
    /// Worst-case awake complexity per trial.
    pub worst_awake: MetricAggregate,
    /// Worst-case round complexity per trial.
    pub worst_round: MetricAggregate,
    /// Node-averaged round complexity per trial.
    pub node_avg_round: MetricAggregate,
    /// Total messages per trial.
    pub messages: MetricAggregate,
    /// MIS size per trial.
    pub mis_size: MetricAggregate,
    /// Trials whose output verified as an MIS.
    pub valid_trials: u64,
    /// Trials aggregated.
    pub trials: u64,
    /// Total Algorithm 2 base-case timeouts observed.
    pub base_timeouts: u64,
}

impl JobAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one trial's report.
    pub fn push(&mut self, r: &ComplexityReport) {
        self.node_avg_awake.push(r.summary.node_avg_awake);
        self.worst_awake.push(r.summary.worst_awake as f64);
        self.worst_round.push(r.summary.worst_round as f64);
        self.node_avg_round.push(r.summary.node_avg_round);
        self.messages.push(r.summary.total_messages as f64);
        self.mis_size.push(r.mis_size as f64);
        self.valid_trials += u64::from(r.valid);
        self.trials += 1;
        self.base_timeouts += r.base_timeouts as u64;
    }

    /// Merges a later shard's aggregate (canonical order: callers merge
    /// in shard-index order).
    pub fn merge(&mut self, other: &JobAggregate) {
        self.node_avg_awake.merge(&other.node_avg_awake);
        self.worst_awake.merge(&other.worst_awake);
        self.worst_round.merge(&other.worst_round);
        self.node_avg_round.merge(&other.node_avg_round);
        self.messages.merge(&other.messages);
        self.mis_size.merge(&other.mis_size);
        self.valid_trials += other.valid_trials;
        self.trials += other.trials;
        self.base_timeouts += other.base_timeouts;
    }

    /// Fraction of trials whose output verified as an MIS.
    pub fn valid_fraction(&self) -> f64 {
        self.valid_trials as f64 / (self.trials.max(1)) as f64
    }
}

/// The mergeable aggregate of one dynamic job's trials: one
/// [`JobAggregate`] per phase, repair-specific per-phase metrics, and
/// whole-trial totals.
#[derive(Debug, Clone, Default)]
pub struct DynamicJobAggregate {
    /// Per-phase aggregates across trials, indexed by phase.
    pub phases: Vec<JobAggregate>,
    /// Repair scope (nodes re-run) per phase, as a [`PhaseSeries`].
    pub repair_scope: PhaseSeries,
    /// Carried-over MIS members per phase.
    pub carried: PhaseSeries,
    /// Whole-trial total of node-averaged awake complexity summed over
    /// phases — the per-trial "awake cost of surviving the churn".
    pub total_avg_awake: MetricAggregate,
    /// Per-update cost accounting across every incremental update of
    /// every trial (empty unless the job ran
    /// [`RepairStrategy::Incremental`](crate::RepairStrategy::Incremental)).
    pub updates: UpdateSeries,
    /// Trials whose *every* phase verified as an MIS.
    pub valid_trials: u64,
    /// Trials aggregated.
    pub trials: u64,
}

impl DynamicJobAggregate {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one dynamic trial's report.
    pub fn push(&mut self, r: &DynamicReport) {
        if self.phases.len() < r.phases.len() {
            self.phases.resize_with(r.phases.len(), JobAggregate::new);
        }
        let mut total_awake = 0.0;
        for p in &r.phases {
            self.phases[p.phase].push(&p.report);
            self.repair_scope.push(p.phase, p.repair_scope as f64);
            self.carried.push(p.phase, p.carried as f64);
            for u in &p.updates {
                self.updates.push(u.awake_sum, u.scope);
            }
            total_awake += p.report.summary.node_avg_awake;
        }
        self.total_avg_awake.push(total_awake);
        self.valid_trials += u64::from(r.all_valid());
        self.trials += 1;
    }

    /// Merges a later shard's aggregate (canonical order, as with
    /// [`JobAggregate::merge`]).
    pub fn merge(&mut self, other: &DynamicJobAggregate) {
        if self.phases.len() < other.phases.len() {
            self.phases.resize_with(other.phases.len(), JobAggregate::new);
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
        self.repair_scope.merge(&other.repair_scope);
        self.carried.merge(&other.carried);
        self.updates.merge(&other.updates);
        self.total_avg_awake.merge(&other.total_avg_awake);
        self.valid_trials += other.valid_trials;
        self.trials += other.trials;
    }

    /// Fraction of trials valid on every phase.
    pub fn valid_fraction(&self) -> f64 {
        self.valid_trials as f64 / (self.trials.max(1)) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_net::ComplexitySummary;

    fn report(x: f64, valid: bool) -> ComplexityReport {
        ComplexityReport {
            algo: "test".into(),
            n: 10,
            summary: ComplexitySummary {
                n: 10,
                node_avg_awake: x,
                worst_awake: (2.0 * x) as u64,
                worst_round: (3.0 * x) as u64,
                node_avg_round: 4.0 * x,
                active_rounds: 0,
                total_messages: (5.0 * x) as u64,
                dropped_messages: 0,
                lost_messages: 0,
                total_bits: 0,
            },
            mis_size: x as usize,
            valid,
            base_timeouts: usize::from(!valid),
        }
    }

    #[test]
    fn sharded_merge_matches_sequential_push() {
        let reports: Vec<ComplexityReport> =
            (0..40).map(|i| report(1.0 + (i % 7) as f64, i % 5 != 0)).collect();
        let mut whole = JobAggregate::new();
        reports.iter().for_each(|r| whole.push(r));
        // Shard into 4, merge in order.
        let mut merged = JobAggregate::new();
        for chunk in reports.chunks(10) {
            let mut shard = JobAggregate::new();
            chunk.iter().for_each(|r| shard.push(r));
            merged.merge(&shard);
        }
        assert_eq!(merged.trials, whole.trials);
        assert_eq!(merged.valid_trials, whole.valid_trials);
        assert_eq!(merged.base_timeouts, whole.base_timeouts);
        assert_eq!(merged.node_avg_awake.stats().p50, whole.node_avg_awake.stats().p50);
        assert_eq!(merged.node_avg_awake.stats().p99, whole.node_avg_awake.stats().p99);
        assert!(
            (merged.node_avg_awake.moments.mean - whole.node_avg_awake.moments.mean).abs() < 1e-12
        );
    }

    #[test]
    fn to_summary_matches_batch_summary() {
        let values = [2.0, 9.0, 4.0, 4.0, 5.0, 7.0, 5.0, 4.0];
        let mut agg = MetricAggregate::new();
        values.iter().for_each(|&x| agg.push(x));
        let batch = Summary::of(&values);
        let s = agg.to_summary();
        assert_eq!(s.count, batch.count);
        assert!((s.mean - batch.mean).abs() < 1e-12);
        assert!((s.std_dev - batch.std_dev).abs() < 1e-9);
        assert_eq!(s.min, batch.min);
        assert_eq!(s.max, batch.max);
        assert_eq!(s.median, batch.median);
    }

    #[test]
    fn dynamic_aggregate_merge_matches_sequential_push() {
        use crate::measure::{DynamicReport, PhaseReport, UpdateKind, UpdateRecord};
        let trial = |t: usize| DynamicReport {
            phases: (0..3)
                .map(|phase| PhaseReport {
                    phase,
                    report: report(1.0 + ((t + phase) % 5) as f64, !(t + phase).is_multiple_of(7)),
                    m: 20 + phase,
                    repair_scope: if phase == 0 { 10 } else { 2 + t % 3 },
                    carried: if phase == 0 { 0 } else { 5 },
                    updates: if phase == 0 {
                        Vec::new()
                    } else {
                        vec![UpdateRecord {
                            kind: UpdateKind::EdgeInsert,
                            scope: t % 3,
                            awake_sum: (t % 3) as f64 * 1.5,
                        }]
                    },
                })
                .collect(),
        };
        let reports: Vec<DynamicReport> = (0..30).map(trial).collect();
        let mut whole = DynamicJobAggregate::new();
        reports.iter().for_each(|r| whole.push(r));
        let mut merged = DynamicJobAggregate::new();
        for chunk in reports.chunks(7) {
            let mut shard = DynamicJobAggregate::new();
            chunk.iter().for_each(|r| shard.push(r));
            merged.merge(&shard);
        }
        assert_eq!(merged.trials, whole.trials);
        assert_eq!(merged.valid_trials, whole.valid_trials);
        assert_eq!(merged.phases.len(), 3);
        for (m, w) in merged.phases.iter().zip(&whole.phases) {
            assert_eq!(m.trials, w.trials);
            assert_eq!(m.node_avg_awake.stats().p50, w.node_avg_awake.stats().p50);
        }
        assert_eq!(merged.repair_scope.means(), whole.repair_scope.means());
        assert_eq!(merged.carried.phase(1).unwrap().mean, 5.0);
        assert_eq!(merged.updates.count(), whole.updates.count());
        assert_eq!(merged.updates.count(), 60, "one update per churn phase per trial");
        assert_eq!(merged.updates.zero_scope, whole.updates.zero_scope);
        assert!((merged.updates.amortized_awake() - whole.updates.amortized_awake()).abs() < 1e-12);
        assert!(
            (merged.total_avg_awake.moments.mean - whole.total_avg_awake.moments.mean).abs()
                < 1e-12
        );
        assert!(whole.valid_fraction() < 1.0);
    }

    #[test]
    fn sketch_tracks_exact_percentiles() {
        let mut whole = MetricAggregate::new();
        for i in 0..5000u64 {
            whole.push(((i * 37) % 1000) as f64);
        }
        assert_eq!(whole.sketch.count(), 5000);
        // Shard-and-merge keeps the same estimates within sketch error.
        let mut merged = MetricAggregate::new();
        for chunk in 0..5 {
            let mut shard = MetricAggregate::new();
            for i in (chunk * 1000)..((chunk + 1) * 1000u64) {
                shard.push(((i * 37) % 1000) as f64);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged.sketch.count(), 5000);
        for p in [50.0, 90.0, 99.0] {
            // Values span 0..1000, so 2% rank error is ~20 in value.
            assert!((whole.approx_percentile(p) - whole.percentile(p)).abs() <= 20.0, "p{p}");
            assert!((merged.approx_percentile(p) - merged.percentile(p)).abs() <= 30.0, "p{p}");
        }
    }

    #[test]
    fn empty_aggregate_is_all_zero() {
        let agg = MetricAggregate::new();
        let s = agg.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p50, 0.0);
        assert_eq!(JobAggregate::new().valid_fraction(), 0.0);
    }
}
