//! Per-rule firing fixtures: every rule fires on a bad snippet, every
//! escape hatch is respected, and the lexer survives the tricky cases
//! (raw strings, nested block comments, raw identifiers).
//!
//! Bad code is passed to [`check_source`] as *string literals*, so when
//! the lint scans this test file itself the snippets are masked and the
//! workspace self-check stays clean.

use sleepy_lint::{check_source, Config, Diagnostic};

fn cfg() -> Config {
    Config::parse(
        r##"
[lint]
exclude = ["vendor/"]

[zones]
telemetry = ["crates/telemetry/"]
tests = ["tests/", "*/tests/"]
pure = ["crates/graph/src/"]

[rule.no-hash-collections]
exempt = ["zone:telemetry", "zone:tests"]

[rule.no-wall-clock]
exempt = ["zone:telemetry"]

[rule.no-ambient-entropy]
exempt = []

[rule.seed-domain-discipline]
file = "crates/fleet/src/seed.rs"
prefix = "DOMAIN_"

[rule.telemetry-purity]
zones = ["zone:pure"]
"##,
    )
    .expect("fixture config parses")
}

fn rules_fired(diags: &[Diagnostic]) -> Vec<String> {
    diags.iter().map(|d| d.rule.clone()).collect()
}

// ---- no-hash-collections -------------------------------------------------

#[test]
fn hash_collections_fire_in_determinism_zone() {
    let src = "use std::collections::HashMap;\nfn f() -> HashMap<u32, u32> { HashMap::new() }\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert!(
        diags.iter().all(|d| d.rule == "no-hash-collections") && diags.len() >= 2,
        "expected no-hash-collections findings, got {diags:?}"
    );
    assert_eq!(diags[0].line, 1, "first finding anchors to the use line");
}

#[test]
fn hash_collections_silent_in_tests_zone() {
    let src = "use std::collections::HashSet;\n";
    assert!(check_source(&cfg(), "crates/core/tests/t.rs", src).is_empty());
    assert!(check_source(&cfg(), "tests/t.rs", src).is_empty());
    assert!(check_source(&cfg(), "crates/telemetry/src/registry.rs", src).is_empty());
}

#[test]
fn justified_allow_suppresses_comment_above_and_trailing_forms() {
    let above = "// sleepy-lint: allow(no-hash-collections): membership only, never iterated\n\
                 use std::collections::HashSet;\n";
    assert!(check_source(&cfg(), "crates/core/src/lib.rs", above).is_empty());
    let trailing = "use std::collections::HashSet; // sleepy-lint: allow(no-hash-collections): membership only\n";
    assert!(check_source(&cfg(), "crates/core/src/lib.rs", trailing).is_empty());
}

#[test]
fn multi_line_allow_comment_still_covers_next_code_line() {
    let src = "// sleepy-lint: allow(no-hash-collections): this justification is long\n\
               // and wraps onto a second comment line before the code.\n\
               use std::collections::HashMap;\n";
    assert!(check_source(&cfg(), "crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn allow_without_justification_is_itself_a_finding() {
    let src = "// sleepy-lint: allow(no-hash-collections)\nuse std::collections::HashMap;\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    let fired = rules_fired(&diags);
    assert!(fired.contains(&"lint-directive".to_string()), "got {diags:?}");
    assert!(
        fired.contains(&"no-hash-collections".to_string()),
        "an unjustified allow must not suppress anything: {diags:?}"
    );
}

#[test]
fn allow_for_one_rule_does_not_suppress_another() {
    let src = "// sleepy-lint: allow(no-wall-clock): wrong rule on purpose\n\
               use std::collections::HashMap;\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert_eq!(rules_fired(&diags), vec!["no-hash-collections"]);
}

// ---- no-wall-clock -------------------------------------------------------

#[test]
fn wall_clock_fires_outside_telemetry() {
    let src = "fn t() { let _ = std::time::Instant::now(); }\n\
               fn u() { let _ = std::time::SystemTime::now(); }\n";
    let diags = check_source(&cfg(), "crates/fleet/src/run.rs", src);
    assert_eq!(rules_fired(&diags), vec!["no-wall-clock", "no-wall-clock"]);
    assert_eq!((diags[0].line, diags[1].line), (1, 2));
    assert!(check_source(&cfg(), "crates/telemetry/src/span.rs", src).is_empty());
}

#[test]
fn spaced_path_tokens_still_match() {
    let src = "fn t() { let _ = Instant :: now (); }\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert_eq!(rules_fired(&diags), vec!["no-wall-clock"]);
}

// ---- no-ambient-entropy --------------------------------------------------

#[test]
fn ambient_entropy_fires_everywhere_even_in_tests() {
    let src = "fn r() { let mut rng = rand::thread_rng(); }\n";
    for path in ["crates/core/src/lib.rs", "crates/core/tests/t.rs", "crates/telemetry/src/x.rs"] {
        let diags = check_source(&cfg(), path, src);
        assert_eq!(rules_fired(&diags), vec!["no-ambient-entropy"], "at {path}");
    }
    let diags =
        check_source(&cfg(), "tests/t.rs", "fn s() { let r = SmallRng::from_entropy(); }\n");
    assert_eq!(rules_fired(&diags), vec!["no-ambient-entropy"]);
}

// ---- seed-domain-discipline ----------------------------------------------

#[test]
fn duplicate_domain_constant_fires_even_with_different_formatting() {
    let src = "pub const DOMAIN_TRIAL: u64 = 0x51EE_9F1E_E700_0001;\n\
               pub const DOMAIN_GRAPH: u64 = 0x51ee9f1ee7000001;\n";
    let diags = check_source(&cfg(), "crates/fleet/src/seed.rs", src);
    assert_eq!(rules_fired(&diags), vec!["seed-domain-discipline"], "got {diags:?}");
    assert!(diags[0].message.contains("reuses the constant"), "{}", diags[0].message);
}

#[test]
fn duplicate_domain_tag_fires() {
    let src = "pub const DOMAIN_TRIAL: u64 = 1;\npub const DOMAIN_TRIAL: u64 = 2;\n";
    let diags = check_source(&cfg(), "crates/fleet/src/seed.rs", src);
    assert!(diags.iter().any(|d| d.message.contains("duplicate domain tag")), "got {diags:?}");
}

#[test]
fn distinct_domains_are_clean_and_other_files_are_ignored() {
    let good = "pub const DOMAIN_TRIAL: u64 = 1;\npub const DOMAIN_GRAPH: u64 = 2;\n";
    assert!(check_source(&cfg(), "crates/fleet/src/seed.rs", good).is_empty());
    // The same duplicate constants in a *different* file are out of scope.
    let dup = "pub const DOMAIN_A: u64 = 1;\npub const DOMAIN_B: u64 = 1;\n";
    assert!(check_source(&cfg(), "crates/fleet/src/other.rs", dup).is_empty());
}

#[test]
fn empty_seed_file_reports_a_pointed_at_the_wrong_file_finding() {
    let diags = check_source(&cfg(), "crates/fleet/src/seed.rs", "fn no_consts_here() {}\n");
    assert_eq!(rules_fired(&diags), vec!["seed-domain-discipline"]);
    assert!(diags[0].message.contains("no `const DOMAIN_"), "{}", diags[0].message);
}

// ---- telemetry-purity ----------------------------------------------------

#[test]
fn telemetry_calls_fire_only_inside_pure_zones() {
    let src = "fn kernel() { let _s = span!(\"absorb\"); counter_add(\"n\", 1); }\n";
    let diags = check_source(&cfg(), "crates/graph/src/kernel.rs", src);
    assert_eq!(rules_fired(&diags), vec!["telemetry-purity", "telemetry-purity"]);
    // Outside the pure zones the same code is legitimate instrumentation.
    assert!(check_source(&cfg(), "crates/fleet/src/measure.rs", src).is_empty());
}

#[test]
fn deny_fence_reimposes_purity_inside_an_unzoned_file() {
    let src = "fn instrumented() { span!(\"ok here\"); }\n\
               // sleepy-lint: deny(telemetry-purity): totals must stay pure\n\
               fn totals() { counter_add(\"leak\", 1); }\n\
               // sleepy-lint: end-deny(telemetry-purity)\n\
               fn after() { span!(\"ok again\"); }\n";
    let diags = check_source(&cfg(), "crates/fleet/src/measure.rs", src);
    assert_eq!(rules_fired(&diags), vec!["telemetry-purity"], "got {diags:?}");
    assert_eq!(diags[0].line, 3);
    assert!(diags[0].message.contains("deny-fenced"), "{}", diags[0].message);
}

#[test]
fn unclosed_and_unmatched_fences_are_findings() {
    let unclosed = "// sleepy-lint: deny(telemetry-purity): never closed\nfn f() {}\n";
    let diags = check_source(&cfg(), "crates/fleet/src/x.rs", unclosed);
    assert_eq!(rules_fired(&diags), vec!["lint-directive"]);
    assert!(diags[0].message.contains("unclosed"), "{}", diags[0].message);

    let unmatched = "// sleepy-lint: end-deny(telemetry-purity)\nfn f() {}\n";
    let diags = check_source(&cfg(), "crates/fleet/src/x.rs", unmatched);
    assert_eq!(rules_fired(&diags), vec!["lint-directive"]);
    assert!(diags[0].message.contains("without a matching"), "{}", diags[0].message);
}

#[test]
fn unknown_rule_in_directive_is_a_finding() {
    let src = "// sleepy-lint: allow(no-such-rule): whatever\nfn f() {}\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert_eq!(rules_fired(&diags), vec!["lint-directive"]);
    assert!(diags[0].message.contains("unknown rule"), "{}", diags[0].message);
}

// ---- tricky lexing -------------------------------------------------------

#[test]
fn banned_names_inside_strings_and_comments_never_fire() {
    let src = "// HashMap in a line comment\n\
               /* HashMap in /* a nested */ block comment */\n\
               fn f() -> &'static str { \"HashMap::new() SystemTime::now()\" }\n\
               fn g() -> &'static str { r#\"use std::collections::HashMap;\"# }\n\
               fn h() -> &'static str { r##\"thread_rng() with \"# inside\"## }\n\
               fn i() -> u8 { b\"HashSet\"[0] }\n";
    assert!(check_source(&cfg(), "crates/core/src/lib.rs", src).is_empty());
}

#[test]
fn raw_identifier_is_not_a_raw_string_and_lexing_continues() {
    // If `r#match` were mis-lexed as a raw-string opener, the real
    // HashMap after it would be swallowed into a string body.
    let src = "fn r#match() { let _m = HashMap::new(); }\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert_eq!(rules_fired(&diags), vec!["no-hash-collections"]);
}

#[test]
fn escaped_quotes_and_char_literals_do_not_derail_masking() {
    let src = "fn f() { let _s = \"esc \\\" quote\"; let _c = '\"'; let _m = HashMap::new(); }\n\
               fn g<'a>(x: &'a u32) -> &'a u32 { x }\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert_eq!(rules_fired(&diags), vec!["no-hash-collections"]);
    assert_eq!(diags[0].line, 1);
}

#[test]
fn directives_inside_strings_and_doc_comments_are_inert() {
    // A doc comment may *describe* the syntax without enacting it, and a
    // string containing directive text must not suppress anything.
    let src = "/// Write `// sleepy-lint: allow(no-hash-collections): why` above the line.\n\
               fn doc() -> &'static str { \"// sleepy-lint: allow(no-hash-collections): nope\" }\n\
               fn f() { let _m = HashMap::new(); }\n";
    let diags = check_source(&cfg(), "crates/core/src/lib.rs", src);
    assert_eq!(rules_fired(&diags), vec!["no-hash-collections"]);
}

// ---- run_with_config plumbing --------------------------------------------

#[test]
fn missing_seed_file_is_reported_by_a_workspace_run() {
    let dir = std::env::temp_dir().join(format!("sleepy-lint-fixture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("src")).expect("mkdir");
    std::fs::write(dir.join("src/lib.rs"), "pub fn ok() {}\n").expect("write");
    let cfg = Config::parse(
        "[rule.seed-domain-discipline]\nfile = \"src/seed.rs\"\nprefix = \"DOMAIN_\"\n",
    )
    .expect("parses");
    let report = sleepy_lint::run_with_config(&dir, &cfg).expect("runs");
    assert_eq!(report.files_scanned, 1);
    assert_eq!(rules_fired(&report.diagnostics), vec!["seed-domain-discipline"]);
    assert!(report.diagnostics[0].message.contains("was not found"));
    let _ = std::fs::remove_dir_all(&dir);
}
