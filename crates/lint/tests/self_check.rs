//! The workspace eats its own dog food: the tree this crate ships in
//! must be lint-clean under its own `lint.toml`, with every escape
//! hatch carrying a written justification.

#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = sleepy_lint::run(&root).expect("lint runs against the workspace");
    assert!(
        report.is_clean(),
        "workspace has {} lint finding(s):\n{}",
        report.diagnostics.len(),
        report.diagnostics.iter().map(|d| d.render()).collect::<Vec<_>>().join("\n")
    );
    // A walk that silently found almost nothing would make the clean
    // verdict meaningless.
    assert!(report.files_scanned > 50, "suspiciously few files scanned: {}", report.files_scanned);
}

#[test]
fn json_report_round_trips_through_a_parser() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let json = sleepy_lint::run(&root).expect("lint runs").to_json();
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert!(v.get("files_scanned").is_some());
    assert!(v.get("diagnostics").is_some());
}
