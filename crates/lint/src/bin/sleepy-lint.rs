//! Standalone entry point; `fleet lint` drives the same
//! [`sleepy_lint::run_cli`].

#![forbid(unsafe_code)]

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    ExitCode::from(u8::try_from(sleepy_lint::run_cli(&args)).unwrap_or(2))
}
