//! # sleepy-lint
//!
//! Determinism-zone static analysis for the sleepy workspace.
//!
//! Every load-bearing claim this repro makes — byte-identical
//! artifacts across thread counts, telemetry modes, and multi-process
//! shard merges, and the bit-identical in-place-vs-rebuild repair
//! oracle — is pinned dynamically by golden-run tests. Those tests
//! cannot see a freshly *introduced* `HashMap` iteration or a stray
//! `thread_rng` until its nondeterminism happens to change bytes under
//! test. This crate turns the determinism discipline into a
//! machine-checked property of the source tree:
//!
//! * **no-hash-collections** — `HashMap`/`HashSet` are forbidden in
//!   determinism zones (everything except telemetry internals and
//!   tests); their iteration order can leak into artifacts.
//! * **no-wall-clock** — `Instant::now`/`SystemTime::now` are
//!   forbidden outside `crates/telemetry` and allowlisted shims.
//! * **no-ambient-entropy** — `thread_rng`/`from_entropy`/
//!   `rand::random` are forbidden everywhere; randomness flows through
//!   the SplitMix64 domains in `crates/fleet/src/seed.rs`.
//! * **seed-domain-discipline** — the seed-domain constants must have
//!   unique tags and unique values.
//! * **telemetry-purity** — telemetry calls are forbidden inside the
//!   pure-arithmetic zones, so the side-channel invariant is
//!   structural, not conventional.
//!
//! Zones live in the root `lint.toml`; escape hatches are inline
//! `// sleepy-lint: allow(<rule>): <justification>` comments (the
//! justification is mandatory), and `deny(<rule>)`/`end-deny(<rule>)`
//! fences re-impose a rule inside an otherwise-exempt file (used to
//! keep the `AbsorbTotals` arithmetic telemetry-free in a file that
//! legitimately opens spans elsewhere).
//!
//! The scanner is a hand-rolled lexer ([`lexer`]) that masks comments,
//! strings (escapes, raw strings, byte strings), and char literals, so
//! a banned name inside a string or doc comment never fires — and no
//! external parser dependency (`syn` etc.) is needed, matching the
//! workspace's vendored-deps constraint.
//!
//! Run it as `fleet lint` or the standalone `sleepy-lint` binary; both
//! exit nonzero when diagnostics are found and support `--json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::Config;
pub use rules::{check_source, Diagnostic, RULES};

use std::path::{Path, PathBuf};

/// The configuration file the workspace root is identified by.
pub const CONFIG_FILE: &str = "lint.toml";

/// A whole-workspace lint result.
#[derive(Debug)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// The machine-readable rendering (`--json`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"files_scanned\": ");
        s.push_str(&self.files_scanned.to_string());
        s.push_str(",\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {\"file\": ");
            push_json_str(&mut s, &d.file);
            s.push_str(", \"line\": ");
            s.push_str(&d.line.to_string());
            s.push_str(", \"rule\": ");
            push_json_str(&mut s, &d.rule);
            s.push_str(", \"message\": ");
            push_json_str(&mut s, &d.message);
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// Minimal JSON string escaping (control chars, quote, backslash).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Collects every `.rs` file under `root`, repo-relative with forward
/// slashes, honoring `exclude` patterns, in sorted (deterministic)
/// order. A lint about determinism must itself be deterministic.
pub fn workspace_files(root: &Path, cfg: &Config) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = match path.strip_prefix(root) {
                Ok(r) => r
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/"),
                Err(_) => continue,
            };
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                // Never descend into VCS metadata or excluded trees.
                let dir_rel = format!("{rel}/");
                if name.starts_with('.')
                    || cfg.exclude.iter().any(|p| config::pattern_matches(&dir_rel, p))
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs")
                && !cfg.exclude.iter().any(|p| config::pattern_matches(&rel, p))
            {
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the workspace rooted at `root` using its `lint.toml`.
///
/// # Errors
///
/// A description of a missing/unreadable config or an I/O failure.
/// Findings are *not* errors — they come back in the [`Report`].
pub fn run(root: &Path) -> Result<Report, String> {
    let cfg_path = root.join(CONFIG_FILE);
    let text = std::fs::read_to_string(&cfg_path)
        .map_err(|e| format!("cannot read {}: {e}", cfg_path.display()))?;
    let cfg = Config::parse(&text).map_err(|e| format!("{}: {e}", cfg_path.display()))?;
    run_with_config(root, &cfg)
}

/// Lints the workspace with an already-parsed config.
///
/// # Errors
///
/// I/O failures while walking or reading source files.
pub fn run_with_config(root: &Path, cfg: &Config) -> Result<Report, String> {
    let files =
        workspace_files(root, cfg).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut diagnostics = Vec::new();
    let mut seed_file_seen = false;
    let seed_file = cfg.rules.get("seed-domain-discipline").and_then(|r| r.file.clone());
    for (rel, path) in &files {
        let src = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        if Some(rel.as_str()) == seed_file.as_deref() {
            seed_file_seen = true;
        }
        diagnostics.extend(rules::check_source(cfg, rel, &src));
    }
    // The seed-domain rule silently never running would be rot; fail
    // loudly if its file vanished out from under the config.
    if let Some(f) = seed_file {
        let enabled = cfg.rules.get("seed-domain-discipline").is_none_or(|r| r.enabled);
        if enabled && !seed_file_seen {
            diagnostics.push(Diagnostic {
                file: f.clone(),
                line: 1,
                rule: "seed-domain-discipline".to_string(),
                message: format!("configured seed file `{f}` was not found in the scan"),
            });
        }
    }
    diagnostics.sort();
    Ok(Report { diagnostics, files_scanned: files.len() })
}

/// Searches upward from `start` for a directory containing `lint.toml`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join(CONFIG_FILE).is_file() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

const USAGE: &str = "sleepy-lint — determinism-zone static analysis for the sleepy workspace

USAGE:
    sleepy-lint [--root DIR] [--json] [--list-rules]
    fleet lint  [--root DIR] [--json] [--list-rules]

Scans every .rs file in the workspace (vendor/ and target/ excluded)
and enforces the determinism-zone rules configured in lint.toml:
no-hash-collections, no-wall-clock, no-ambient-entropy,
seed-domain-discipline, telemetry-purity.

OPTIONS:
    --root DIR    workspace root (default: walk up from the current
                  directory to the nearest lint.toml)
    --json        machine-readable diagnostics on stdout
    --list-rules  print the rule catalog and exit
    --help        this text

EXIT CODE: 0 clean, 1 diagnostics found, 2 usage or I/O error.

Suppressions are inline and must carry a justification:
    // sleepy-lint: allow(<rule>): <why this one is safe>
Fenced re-enforcement inside exempt files:
    // sleepy-lint: deny(<rule>): <why this region must stay pure>
    ...
    // sleepy-lint: end-deny(<rule>)";

/// The shared CLI driver behind `sleepy-lint` and `fleet lint`.
/// `args` excludes the program/subcommand name. Returns the exit code.
pub fn run_cli(args: &[String]) -> i32 {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return 0;
            }
            "--list-rules" => {
                for r in RULES {
                    println!("{:24} {}", r.name, r.summary);
                }
                return 0;
            }
            "--json" => json = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sleepy-lint: missing value for --root");
                    return 2;
                }
            },
            other => {
                eprintln!("sleepy-lint: unknown flag `{other}` (try --help)");
                return 2;
            }
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "sleepy-lint: no {CONFIG_FILE} found above {} (use --root)",
                        cwd.display()
                    );
                    return 2;
                }
            }
        }
    };
    let report = match run(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("sleepy-lint: {e}");
            return 2;
        }
    };
    if json {
        print!("{}", report.to_json());
    } else {
        for d in &report.diagnostics {
            println!("{}", d.render());
        }
    }
    if report.is_clean() {
        eprintln!(
            "sleepy-lint: clean — {} files scanned, {} rules enforced",
            report.files_scanned,
            RULES.len()
        );
        0
    } else {
        eprintln!(
            "sleepy-lint: {} diagnostic(s) in {} files scanned",
            report.diagnostics.len(),
            report.files_scanned
        );
        1
    }
}
