//! The rule catalog and the per-file checking engine.
//!
//! Every rule is a *token-shape* rule over the masked source (see
//! [`crate::lexer`]): banned identifiers or `A::b` / `name!` sequences,
//! scoped by path-based zones from `lint.toml`, except
//! `seed-domain-discipline`, which parses the seed-domain constants of
//! one designated file. Suppression and re-enforcement are inline:
//!
//! ```text
//! // sleepy-lint: allow(<rule>): <justification>      (this or next code line)
//! // sleepy-lint: deny(<rule>): <reason>              (begin fenced region)
//! // sleepy-lint: end-deny(<rule>)                    (end fenced region)
//! ```
//!
//! An `allow` without a written justification is itself a diagnostic:
//! the whole point is that every escape hatch carries its reasoning in
//! the source.

use crate::config::Config;
use crate::lexer::{lex, tokens, Comment, Spanned, Tok};
use std::collections::{BTreeMap, BTreeSet};

/// One `file:line` finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (or `lint-directive` for directive errors).
    pub rule: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// The canonical one-line text rendering.
    pub fn render(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// A banned token shape: path segments joined by `::`, optionally a
/// macro bang (`segs: ["span"], bang: true` matches `span!`).
pub struct Pattern {
    /// Path segments (`["Instant", "now"]` matches `Instant::now`).
    pub segs: &'static [&'static str],
    /// Require a `!` right after the last segment (macro invocation).
    pub bang: bool,
}

impl Pattern {
    /// Display form (`Instant::now`, `span!`).
    pub fn show(&self) -> String {
        let mut s = self.segs.join("::");
        if self.bang {
            s.push('!');
        }
        s
    }
}

/// A static rule definition. Zone behavior:
/// * `fire_only_in_zones = false` (default): fires everywhere except
///   the configured `exempt` paths — the determinism-zone rules.
/// * `fire_only_in_zones = true`: fires only inside the configured
///   `zones` paths — the purity rules.
pub struct RuleDef {
    /// The rule's name as used in `lint.toml` and directives.
    pub name: &'static str,
    /// One-line description for `--list-rules`.
    pub summary: &'static str,
    /// Banned token shapes.
    pub patterns: &'static [Pattern],
    /// Zone behavior (see type docs).
    pub fire_only_in_zones: bool,
    /// Remediation hint appended to every diagnostic.
    pub hint: &'static str,
}

/// The rule catalog. `seed-domain-discipline` has no token patterns —
/// it is the whole-file scan in [`check_seed_domains`].
pub const RULES: &[RuleDef] = &[
    RuleDef {
        name: "no-hash-collections",
        summary: "HashMap/HashSet forbidden in determinism zones",
        patterns: &[
            Pattern { segs: &["HashMap"], bang: false },
            Pattern { segs: &["HashSet"], bang: false },
            Pattern { segs: &["hash_map"], bang: false },
            Pattern { segs: &["hash_set"], bang: false },
        ],
        fire_only_in_zones: false,
        hint: "iteration order can leak into artifacts; use BTreeMap/BTreeSet",
    },
    RuleDef {
        name: "no-wall-clock",
        summary: "Instant::now/SystemTime::now forbidden outside telemetry",
        patterns: &[
            Pattern { segs: &["Instant", "now"], bang: false },
            Pattern { segs: &["SystemTime", "now"], bang: false },
        ],
        fire_only_in_zones: false,
        hint: "route timing through sleepy-telemetry or an allowlisted shim",
    },
    RuleDef {
        name: "no-ambient-entropy",
        summary: "ambient randomness forbidden everywhere",
        patterns: &[
            Pattern { segs: &["thread_rng"], bang: false },
            Pattern { segs: &["from_entropy"], bang: false },
            Pattern { segs: &["OsRng"], bang: false },
            Pattern { segs: &["getrandom"], bang: false },
            Pattern { segs: &["rand", "random"], bang: false },
        ],
        fire_only_in_zones: false,
        hint: "all randomness must flow through the SplitMix64 domains in seed.rs",
    },
    RuleDef {
        name: "seed-domain-discipline",
        summary: "seed-domain tags and constants must be unique",
        patterns: &[],
        fire_only_in_zones: false,
        hint: "two domains sharing a constant would silently correlate their streams",
    },
    RuleDef {
        name: "telemetry-purity",
        summary: "telemetry calls forbidden in pure-arithmetic zones",
        patterns: &[
            Pattern { segs: &["sleepy_telemetry"], bang: false },
            Pattern { segs: &["counter_add"], bang: false },
            Pattern { segs: &["gauge_set"], bang: false },
            Pattern { segs: &["gauge_max"], bang: false },
            Pattern { segs: &["span"], bang: true },
        ],
        fire_only_in_zones: true,
        hint: "telemetry is a side channel; pure kernels must not observe it (invariant 8)",
    },
];

/// Looks a rule up by name.
pub fn rule_by_name(name: &str) -> Option<&'static RuleDef> {
    RULES.iter().find(|r| r.name == name)
}

/// A parsed inline directive.
#[derive(Debug)]
enum Directive {
    Allow { rule: String, line: u32 },
    Deny { rule: String, line: u32 },
    EndDeny { rule: String, line: u32 },
}

/// Scans comments for `sleepy-lint:` directives; malformed ones become
/// `lint-directive` diagnostics immediately.
fn parse_directives(
    file: &str,
    comments: &[Comment],
    diags: &mut Vec<Diagnostic>,
) -> Vec<Directive> {
    fn bad(file: &str, line: u32, message: String, diags: &mut Vec<Diagnostic>) {
        diags.push(Diagnostic {
            file: file.to_string(),
            line,
            rule: "lint-directive".to_string(),
            message,
        });
    }
    let mut out = Vec::new();
    for c in comments {
        // Directives live in implementation comments only; doc comments
        // may *describe* the syntax (as the lint's own docs do) without
        // being parsed as directives.
        let t = c.text.as_str();
        if t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("/**")
            || t.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("sleepy-lint:") else { continue };
        let body = c.text[at + "sleepy-lint:".len()..].trim();
        let (kind, rest) = if let Some(r) = body.strip_prefix("allow(") {
            ("allow", r)
        } else if let Some(r) = body.strip_prefix("end-deny(") {
            ("end-deny", r)
        } else if let Some(r) = body.strip_prefix("deny(") {
            ("deny", r)
        } else {
            bad(
                file,
                c.line,
                format!("unrecognized directive `{body}` (allow/deny/end-deny)"),
                diags,
            );
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad(file, c.line, "missing `)` after rule name".to_string(), diags);
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if rule_by_name(&rule).is_none() {
            bad(file, c.line, format!("unknown rule `{rule}`"), diags);
            continue;
        }
        let after = rest[close + 1..].trim();
        match kind {
            "allow" | "deny" => {
                let justification = after.strip_prefix(':').map(str::trim).unwrap_or("");
                if justification.is_empty() {
                    bad(
                        file,
                        c.line,
                        format!(
                            "`{kind}({rule})` needs a written justification: \
                             `sleepy-lint: {kind}({rule}): <why>`"
                        ),
                        diags,
                    );
                    continue;
                }
                if kind == "allow" {
                    out.push(Directive::Allow { rule, line: c.line });
                } else {
                    out.push(Directive::Deny { rule, line: c.line });
                }
            }
            _ => out.push(Directive::EndDeny { rule, line: c.line }),
        }
    }
    out
}

/// Per-rule fenced regions and allow-lines for one file.
#[derive(Debug, Default)]
struct FileDirectives {
    /// rule -> closed (start, end) line ranges where the rule is
    /// force-applied.
    deny_regions: BTreeMap<String, Vec<(u32, u32)>>,
    /// rule -> lines on which a diagnostic is suppressed.
    allow_lines: BTreeMap<String, BTreeSet<u32>>,
}

/// Resolves directives into regions and suppression lines.
///
/// An `allow` covers its own line (trailing-comment form) and the next
/// line containing code (comment-above form).
fn resolve_directives(
    file: &str,
    directives: Vec<Directive>,
    code_lines: &BTreeSet<u32>,
    diags: &mut Vec<Diagnostic>,
) -> FileDirectives {
    let mut fd = FileDirectives::default();
    let mut open: BTreeMap<String, u32> = BTreeMap::new();
    for d in directives {
        match d {
            Directive::Allow { rule, line } => {
                let lines = fd.allow_lines.entry(rule).or_default();
                lines.insert(line);
                if let Some(&next) = code_lines.range(line + 1..).next() {
                    lines.insert(next);
                }
            }
            Directive::Deny { rule, line } => {
                if open.insert(rule.clone(), line).is_some() {
                    diags.push(Diagnostic {
                        file: file.to_string(),
                        line,
                        rule: "lint-directive".to_string(),
                        message: format!(
                            "nested deny({rule}) region (close the previous one first)"
                        ),
                    });
                }
            }
            Directive::EndDeny { rule, line } => match open.remove(&rule) {
                Some(start) => fd.deny_regions.entry(rule).or_default().push((start, line)),
                None => diags.push(Diagnostic {
                    file: file.to_string(),
                    line,
                    rule: "lint-directive".to_string(),
                    message: format!("end-deny({rule}) without a matching deny({rule})"),
                }),
            },
        }
    }
    for (rule, start) in open {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: start,
            rule: "lint-directive".to_string(),
            message: format!("unclosed deny({rule}) region"),
        });
    }
    fd
}

/// Matches `pattern` starting at token `i`; returns the line on a hit.
fn match_at(toks: &[Spanned<'_>], i: usize, pattern: &Pattern) -> Option<u32> {
    let mut j = i;
    for (k, seg) in pattern.segs.iter().enumerate() {
        if k > 0 {
            match toks.get(j) {
                Some(Spanned { tok: Tok::PathSep, .. }) => j += 1,
                _ => return None,
            }
        }
        match toks.get(j) {
            Some(Spanned { tok: Tok::Ident(id), .. }) if id == seg => j += 1,
            _ => return None,
        }
    }
    if pattern.bang && !matches!(toks.get(j), Some(Spanned { tok: Tok::Bang, .. })) {
        return None;
    }
    Some(toks[i].line)
}

/// Lints one file's source. `relpath` is repo-relative with forward
/// slashes; zone decisions and the seed-domain special case key off it.
pub fn check_source(cfg: &Config, relpath: &str, src: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let lexed = lex(src);
    let directives = parse_directives(relpath, &lexed.comments, &mut diags);
    let code_lines: BTreeSet<u32> = lexed
        .masked
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, _)| i as u32 + 1)
        .collect();
    let fd = resolve_directives(relpath, directives, &code_lines, &mut diags);
    let toks = tokens(&lexed.masked);

    for rule in RULES {
        let rcfg = cfg.rules.get(rule.name);
        if rcfg.is_some_and(|r| !r.enabled) {
            continue;
        }
        // The seed-domain scan runs only on its configured file.
        if rule.name == "seed-domain-discipline" {
            if rcfg.and_then(|r| r.file.as_deref()) == Some(relpath) {
                let prefix = rcfg.and_then(|r| r.prefix.as_deref()).unwrap_or("DOMAIN_");
                check_seed_domains(relpath, &lexed.masked, prefix, &mut diags);
            }
            continue;
        }
        if rule.patterns.is_empty() {
            continue;
        }
        let base_applies = if rule.fire_only_in_zones {
            rcfg.is_some_and(|r| cfg.path_matches(relpath, &r.zones))
        } else {
            !rcfg.is_some_and(|r| cfg.path_matches(relpath, &r.exempt))
        };
        let regions = fd.deny_regions.get(rule.name);
        let in_region =
            |line: u32| regions.is_some_and(|rs| rs.iter().any(|&(a, b)| a <= line && line <= b));
        if !base_applies && regions.is_none() {
            continue;
        }
        let allows = fd.allow_lines.get(rule.name);
        for i in 0..toks.len() {
            for pattern in rule.patterns {
                let Some(line) = match_at(&toks, i, pattern) else { continue };
                let fenced = in_region(line);
                if !base_applies && !fenced {
                    continue;
                }
                if allows.is_some_and(|a| a.contains(&line)) {
                    continue;
                }
                let mut message = format!("`{}` — {}", pattern.show(), rule.hint);
                if fenced && !base_applies {
                    message.push_str(" [inside a deny-fenced region]");
                }
                diags.push(Diagnostic {
                    file: relpath.to_string(),
                    line,
                    rule: rule.name.to_string(),
                    message,
                });
            }
        }
    }
    diags.sort();
    diags.dedup();
    diags
}

/// The `seed-domain-discipline` scan: every `const <PREFIX>…: u64 = …;`
/// in the masked source must have a unique name and a unique constant.
pub fn check_seed_domains(file: &str, masked: &str, prefix: &str, diags: &mut Vec<Diagnostic>) {
    let mut by_name: BTreeMap<String, u32> = BTreeMap::new();
    let mut by_value: BTreeMap<String, (String, u32)> = BTreeMap::new();
    let mut found = 0usize;
    for (i, line) in masked.lines().enumerate() {
        let lineno = i as u32 + 1;
        let mut t = line.trim_start();
        // Visibility doesn't matter to the discipline: `pub const`,
        // `pub(crate) const`, and bare `const` all declare a domain.
        if let Some(after_pub) = t.strip_prefix("pub") {
            let after_vis = match after_pub.strip_prefix('(') {
                Some(rest) => match rest.find(')') {
                    Some(close) => &rest[close + 1..],
                    None => continue,
                },
                None => after_pub,
            };
            if after_vis.starts_with(char::is_whitespace) {
                t = after_vis.trim_start();
            }
        }
        let Some(rest) = t.strip_prefix("const ") else { continue };
        let name: String =
            rest.chars().take_while(|c| c.is_ascii_alphanumeric() || *c == '_').collect();
        if !name.starts_with(prefix) {
            continue;
        }
        found += 1;
        let Some(eq) = rest.find('=') else {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: lineno,
                rule: "seed-domain-discipline".to_string(),
                message: format!("domain `{name}` has no `= value` on its line"),
            });
            continue;
        };
        // Normalize the constant: strip `_`, whitespace and the `;`,
        // lowercase, so 0x51EE_9F1E == 0x51ee9f1e.
        let value: String = rest[eq + 1..]
            .chars()
            .filter(|c| !c.is_whitespace() && *c != '_' && *c != ';')
            .collect::<String>()
            .to_ascii_lowercase();
        if let Some(&first) = by_name.get(&name) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: lineno,
                rule: "seed-domain-discipline".to_string(),
                message: format!("duplicate domain tag `{name}` (first at line {first})"),
            });
        } else {
            by_name.insert(name.clone(), lineno);
        }
        if let Some((other, first)) = by_value.get(&value) {
            diags.push(Diagnostic {
                file: file.to_string(),
                line: lineno,
                rule: "seed-domain-discipline".to_string(),
                message: format!(
                    "domain `{name}` reuses the constant of `{other}` (line {first}) — \
                     their seed streams would be correlated"
                ),
            });
        } else {
            by_value.insert(value, (name, lineno));
        }
    }
    if found == 0 {
        diags.push(Diagnostic {
            file: file.to_string(),
            line: 1,
            rule: "seed-domain-discipline".to_string(),
            message: format!(
                "no `const {prefix}…` declarations found — the seed-domain scan is \
                 pointed at the wrong file or the prefix changed"
            ),
        });
    }
}
