//! A minimal hand-rolled Rust "shape" lexer.
//!
//! The rules never need a full parse — only a view of the source in
//! which comments and the *contents* of string/char literals are
//! blanked out, so that a `HashMap` inside a doc comment, an error
//! message, or an `r#"…"#` fixture can never trip a ban. The lexer
//! therefore produces:
//!
//! * [`Lexed::masked`] — the source with every comment and every
//!   literal body replaced by spaces. Byte length and line structure
//!   are preserved exactly, so offsets and line numbers in the masked
//!   text are valid in the original.
//! * [`Lexed::comments`] — the comment texts with their starting
//!   lines, for the `sleepy-lint:` directive scanner.
//!
//! Handled corners: nested block comments, escapes in strings and
//! chars, byte strings (`b"…"`, `br#"…"#`), raw strings with any
//! number of `#`s, raw identifiers (`r#match` is *not* a raw string),
//! and lifetimes (`'static` is *not* a char literal).

/// One comment (line or block) with the line it starts on (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// The comment text, delimiters included.
    pub text: String,
}

/// The lexer's output: masked source plus extracted comments.
#[derive(Debug, Clone)]
pub struct Lexed {
    /// Source with comments and literal bodies blanked (newlines kept).
    pub masked: String,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src`, blanking comments and literal contents.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Vec::with_capacity(src.len()),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Vec<u8>,
    comments: Vec<Comment>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Lexed {
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            match b {
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' if !self.in_ident() && self.raw_string_ahead(1) => self.raw_string(1),
                b'b' if !self.in_ident() && self.peek(1) == Some(b'"') => {
                    self.copy(1);
                    self.string();
                }
                b'b' if !self.in_ident()
                    && self.peek(1) == Some(b'r')
                    && self.raw_string_ahead(2) =>
                {
                    self.copy(1);
                    self.raw_string(1)
                }
                b'b' if !self.in_ident() && self.peek(1) == Some(b'\'') => {
                    self.copy(1);
                    self.char_literal();
                }
                b'\'' if !self.in_ident_or_digit() => self.quote(),
                _ => self.copy(1),
            }
        }
        Lexed {
            masked: String::from_utf8(self.out).expect("masking preserves UTF-8"),
            comments: self.comments,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    /// Is the previous emitted byte part of an identifier? Guards the
    /// `r`/`b` literal prefixes against identifiers that merely end in
    /// them (`for_br"` cannot happen, but `har"x"` must not raw-parse).
    fn in_ident(&self) -> bool {
        self.pos > 0 && {
            let p = self.src[self.pos - 1];
            p == b'_' || p.is_ascii_alphanumeric()
        }
    }

    /// Like [`in_ident`](Self::in_ident), for the `'` disambiguation:
    /// after an identifier or digit, `'` can never begin a char
    /// literal (it is a lifetime position only inside generics, where
    /// the *preceding* char is punctuation).
    fn in_ident_or_digit(&self) -> bool {
        self.in_ident()
    }

    /// Does `r` (at `pos + skip - 1`) start a raw string? True when
    /// zero or more `#`s are followed by `"`. `r#ident` fails the
    /// check and stays an identifier.
    fn raw_string_ahead(&self, skip: usize) -> bool {
        let mut i = skip;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        self.peek(i) == Some(b'"')
    }

    /// Copies `n` bytes through unmasked, tracking lines.
    fn copy(&mut self, n: usize) {
        for _ in 0..n {
            let b = self.src[self.pos];
            if b == b'\n' {
                self.line += 1;
            }
            self.out.push(b);
            self.pos += 1;
        }
    }

    /// Masks `n` bytes (newlines kept so lines stay aligned).
    fn blank(&mut self, n: usize) {
        for _ in 0..n {
            let b = self.src[self.pos];
            if b == b'\n' {
                self.line += 1;
                self.out.push(b'\n');
            } else {
                self.out.push(b' ');
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut end = self.pos;
        while end < self.src.len() && self.src[end] != b'\n' {
            end += 1;
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.comments.push(Comment { line, text });
        self.blank(end - start);
    }

    fn block_comment(&mut self) {
        let start = self.pos;
        let line = self.line;
        let mut end = self.pos + 2;
        let mut depth = 1usize;
        while end < self.src.len() && depth > 0 {
            if self.src[end] == b'/' && self.src.get(end + 1) == Some(&b'*') {
                depth += 1;
                end += 2;
            } else if self.src[end] == b'*' && self.src.get(end + 1) == Some(&b'/') {
                depth -= 1;
                end += 2;
            } else {
                end += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..end]).into_owned();
        self.comments.push(Comment { line, text });
        self.blank(end - start);
    }

    /// A `"…"` string: keep the quotes, blank the body.
    fn string(&mut self) {
        self.copy(1); // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' if self.pos + 1 < self.src.len() => self.blank(2),
                b'"' => {
                    self.copy(1);
                    return;
                }
                _ => self.blank(1),
            }
        }
    }

    /// A raw string starting at the current `r`: `r##"…"##` etc.
    /// `hashes_at` is where the `#`s begin relative to `pos`.
    fn raw_string(&mut self, hashes_at: usize) {
        let mut hashes = 0usize;
        while self.peek(hashes_at + hashes) == Some(b'#') {
            hashes += 1;
        }
        // r + #s + " all kept; body blanked until " + same #s.
        self.copy(hashes_at + hashes + 1);
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let mut ok = true;
                for k in 0..hashes {
                    if self.peek(1 + k) != Some(b'#') {
                        ok = false;
                        break;
                    }
                }
                if ok {
                    self.copy(1 + hashes);
                    return;
                }
            }
            self.blank(1);
        }
    }

    /// A `'` outside identifier position: char literal or lifetime.
    fn quote(&mut self) {
        // Escape => char literal for sure.
        if self.peek(1) == Some(b'\\') {
            self.char_literal();
            return;
        }
        // 'x' (any single non-quote char then ') => char literal.
        // Otherwise it is a lifetime: copy just the quote and move on.
        match (self.peek(1), self.peek(2)) {
            (Some(c), Some(b'\'')) if c != b'\'' => self.char_literal(),
            _ => self.copy(1),
        }
    }

    /// Masks a char/byte-char literal body, copying the quotes.
    fn char_literal(&mut self) {
        self.copy(1); // opening '
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' if self.pos + 1 < self.src.len() => self.blank(2),
                b'\'' => {
                    self.copy(1);
                    return;
                }
                b'\n' => return, // malformed; stop rather than eat the file
                _ => self.blank(1),
            }
        }
    }
}

/// A token over the masked source: identifiers and the two punctuation
/// shapes the rule patterns need (`::` and `!`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok<'a> {
    /// An identifier (or keyword — the rules don't care).
    Ident(&'a str),
    /// The path separator `::`.
    PathSep,
    /// A `!` (macro bang or negation; patterns only look at it right
    /// after an identifier, where negation cannot appear).
    Bang,
    /// Any other non-whitespace punctuation byte.
    Other,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned<'a> {
    /// The token.
    pub tok: Tok<'a>,
    /// Its 1-based source line.
    pub line: u32,
}

/// Tokenizes masked source into identifiers and coarse punctuation.
pub fn tokens(masked: &str) -> Vec<Spanned<'_>> {
    let bytes = masked.as_bytes();
    let mut out = Vec::new();
    let mut line = 1u32;
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            line += 1;
            i += 1;
        } else if b.is_ascii_whitespace() {
            i += 1;
        } else if b == b'_' || b.is_ascii_alphabetic() {
            let start = i;
            while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            out.push(Spanned { tok: Tok::Ident(&masked[start..i]), line });
        } else if b == b':' && bytes.get(i + 1) == Some(&b':') {
            out.push(Spanned { tok: Tok::PathSep, line });
            i += 2;
        } else if b == b'!' {
            out.push(Spanned { tok: Tok::Bang, line });
            i += 1;
        } else if b.is_ascii_digit() {
            // Numbers (incl. suffixed/underscored) are skipped wholesale
            // so `0x51EE_9F1E` never splits into spurious identifiers.
            while i < bytes.len()
                && (bytes[i] == b'_' || bytes[i] == b'.' || bytes[i].is_ascii_alphanumeric())
            {
                i += 1;
            }
        } else {
            out.push(Spanned { tok: Tok::Other, line });
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        tokens(&lex(src).masked)
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i.to_string()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_masked() {
        let src = "let a = \"HashMap\"; // HashMap here\n/* HashMap */ let b = 1;";
        let ids = idents(src);
        assert!(ids.contains(&"let".to_string()));
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let src = "/* outer /* inner */ still comment */ HashMap";
        assert_eq!(idents(src), vec!["HashMap"]);
    }

    #[test]
    fn raw_strings_with_hashes_are_masked() {
        // The `r` prefix survives as a stray ident token; the body and
        // its embedded quote do not.
        let src = "let s = r#\"HashMap \" inner\"#; SystemTime";
        assert_eq!(idents(src), vec!["let", "s", "r", "SystemTime"]);
        let src2 = "let s = r##\"a \"# b\"##; Instant";
        assert_eq!(idents(src2), vec!["let", "s", "r", "Instant"]);
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let src = "let r#match = 1; HashMap";
        let ids = idents(src);
        assert!(ids.contains(&"r".to_string()) || ids.contains(&"match".to_string()));
        assert!(ids.contains(&"HashMap".to_string()));
    }

    #[test]
    fn byte_strings_and_byte_chars_are_masked() {
        let src = "let a = b\"HashMap\"; let c = b'x'; let r = br#\"HashMap\"#; Instant";
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"Instant".to_string()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        // If 'a opened a char literal the rest of the line would be
        // swallowed and `HashMap` would vanish.
        let src = "fn f<'a>(x: &'a str) { HashMap }";
        assert!(idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn char_literal_with_quote_escape() {
        let src = "let q = '\\''; let n = '\\n'; HashMap";
        assert!(idents(src).contains(&"HashMap".to_string()));
    }

    #[test]
    fn string_with_escaped_quote_does_not_leak() {
        let src = "let s = \"a \\\" HashMap\"; Instant";
        assert_eq!(idents(src), vec!["let", "s", "Instant"]);
    }

    #[test]
    fn comments_are_reported_with_lines() {
        let src = "line1\n// sleepy-lint: allow(x): y\ncode();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("allow(x)"));
    }

    #[test]
    fn line_numbers_survive_masking() {
        let src = "a\n\"two\nlines\"\nSystemTime";
        let lexed = lex(src);
        let toks = tokens(&lexed.masked);
        let st = toks
            .iter()
            .find(|s| matches!(s.tok, Tok::Ident("SystemTime")))
            .expect("SystemTime token");
        assert_eq!(st.line, 4);
    }

    #[test]
    fn path_sep_and_bang_tokens() {
        let toks = tokens("Instant::now(); span!(x)");
        let shapes: Vec<String> = toks
            .iter()
            .map(|s| match &s.tok {
                Tok::Ident(i) => (*i).to_string(),
                Tok::PathSep => "::".into(),
                Tok::Bang => "!".into(),
                Tok::Other => ".".into(),
            })
            .collect();
        let joined = shapes.join(" ");
        assert!(joined.contains("Instant :: now"), "{joined}");
        assert!(joined.contains("span !"), "{joined}");
    }
}
