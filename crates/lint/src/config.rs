//! `lint.toml`: the determinism-zone configuration.
//!
//! Parsed with a hand-rolled reader over a deliberately tiny TOML
//! subset (same spirit as `planio.rs` in the fleet crate — the
//! vendored `serde` stand-in has no typed deserialization, and the
//! lint takes no dependencies at all). Supported syntax:
//!
//! ```toml
//! # comment
//! [section.name]
//! key = "string"
//! key = true
//! key = ["a", "b",     # arrays may span lines
//!        "c"]
//! ```
//!
//! Path patterns in zone and exemption lists are repo-relative with
//! forward slashes and match by prefix; a leading `*/` matches the
//! rest anywhere after a `/` (so `*/tests/` covers every crate's
//! integration-test tree).

use std::collections::BTreeMap;

/// Per-rule configuration from `[rule.<name>]` sections.
#[derive(Debug, Clone, Default)]
pub struct RuleConfig {
    /// Paths (or `zone:<name>` references) where the rule does *not*
    /// fire. Used by deny-by-default rules.
    pub exempt: Vec<String>,
    /// Paths where the rule *does* fire (fire-only-here rules, e.g.
    /// `telemetry-purity`). Empty means "everywhere not exempt".
    pub zones: Vec<String>,
    /// Single file a whole-file rule inspects (`seed-domain-discipline`).
    pub file: Option<String>,
    /// Identifier prefix for the seed-domain scan.
    pub prefix: Option<String>,
    /// `enabled = false` turns a rule off wholesale.
    pub enabled: bool,
}

/// The parsed `lint.toml`.
#[derive(Debug, Clone, Default)]
pub struct Config {
    /// Directory prefixes never scanned (vendored code, build output).
    pub exclude: Vec<String>,
    /// Named zones: `zone:<name>` in an exemption list expands to these
    /// path patterns.
    pub zones: BTreeMap<String, Vec<String>>,
    /// Rule sections by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses the `lint.toml` text.
    ///
    /// # Errors
    ///
    /// A `line N: <what>` description of the first malformed construct.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut cfg = Config::default();
        let mut section: Vec<String> = Vec::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((i, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            let errl = |what: &str| format!("line {}: {}", i + 1, what);
            if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
                section = name.split('.').map(|s| s.trim().to_string()).collect();
                if section.iter().any(String::is_empty) {
                    return Err(errl("empty section name"));
                }
                continue;
            }
            let Some(eq) = line.find('=') else {
                return Err(errl("expected `key = value` or `[section]`"));
            };
            let key = line[..eq].trim().to_string();
            let mut value = line[eq + 1..].trim().to_string();
            // Multi-line array: keep consuming lines until the `]`.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    value.push(' ');
                    value.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(errl("unterminated array"));
                }
            }
            let parsed = parse_value(&value).ok_or_else(|| errl("bad value"))?;
            cfg.assign(&section, &key, parsed).map_err(|e| errl(&e))?;
        }
        Ok(cfg)
    }

    fn assign(&mut self, section: &[String], key: &str, value: Value) -> Result<(), String> {
        let path = section.join(".");
        match (section.first().map(String::as_str), section.len()) {
            (Some("lint"), 1) => match (key, value) {
                ("exclude", Value::List(v)) => self.exclude = v,
                _ => return Err(format!("unknown key `{key}` in [lint]")),
            },
            (Some("zones"), 1) => match value {
                Value::List(v) => {
                    self.zones.insert(key.to_string(), v);
                }
                _ => return Err(format!("zone `{key}` must be a path list")),
            },
            (Some("rule"), 2) => {
                let rule = self
                    .rules
                    .entry(section[1].clone())
                    .or_insert_with(|| RuleConfig { enabled: true, ..RuleConfig::default() });
                match (key, value) {
                    ("exempt", Value::List(v)) => rule.exempt = v,
                    ("zones", Value::List(v)) => rule.zones = v,
                    ("file", Value::Str(s)) => rule.file = Some(s),
                    ("prefix", Value::Str(s)) => rule.prefix = Some(s),
                    ("enabled", Value::Bool(b)) => rule.enabled = b,
                    _ => return Err(format!("unknown key `{key}` in [rule.{}]", section[1])),
                }
            }
            _ => return Err(format!("unknown section `[{path}]`")),
        }
        Ok(())
    }

    /// Expands an exemption entry: `zone:<name>` becomes the zone's
    /// path patterns, anything else is itself a pattern.
    pub fn expand<'a>(&'a self, entry: &'a str) -> Vec<&'a str> {
        match entry.strip_prefix("zone:") {
            Some(zone) => self
                .zones
                .get(zone)
                .map(|v| v.iter().map(String::as_str).collect())
                .unwrap_or_default(),
            None => vec![entry],
        }
    }

    /// Does the repo-relative `path` fall under any of `entries`
    /// (zone references expanded)?
    pub fn path_matches(&self, path: &str, entries: &[String]) -> bool {
        entries.iter().flat_map(|e| self.expand(e)).any(|pat| pattern_matches(path, pat))
    }
}

/// Prefix match, with `*/` meaning "anywhere after a slash".
pub fn pattern_matches(path: &str, pattern: &str) -> bool {
    if let Some(rest) = pattern.strip_prefix("*/") {
        let needle = format!("/{rest}");
        path.starts_with(rest) || path.contains(&needle)
    } else {
        path.starts_with(pattern)
    }
}

#[derive(Debug, Clone)]
enum Value {
    Str(String),
    Bool(bool),
    List(Vec<String>),
}

/// Strips a `#` comment, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str) -> Option<Value> {
    let text = text.trim();
    if text == "true" {
        return Some(Value::Bool(true));
    }
    if text == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(s) = unquote(text) {
        return Some(Value::Str(s));
    }
    let inner = text.strip_prefix('[')?.strip_suffix(']')?;
    let mut items = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue; // trailing comma
        }
        items.push(unquote(part)?);
    }
    Some(Value::List(items))
}

fn unquote(text: &str) -> Option<String> {
    let inner = text.strip_prefix('"')?.strip_suffix('"')?;
    (!inner.contains('"')).then(|| inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_values_and_multiline_arrays() {
        let cfg = Config::parse(
            r#"
# top comment
[lint]
exclude = ["target/", "vendor/"]

[zones]
tests = ["tests/", "*/tests/",   # inline comment
         "examples/"]

[rule.no-wall-clock]
exempt = ["zone:tests", "crates/telemetry/"]
enabled = true

[rule.seed-domain-discipline]
file = "crates/fleet/src/seed.rs"
prefix = "DOMAIN_"
"#,
        )
        .unwrap();
        assert_eq!(cfg.exclude, vec!["target/", "vendor/"]);
        assert_eq!(cfg.zones["tests"].len(), 3);
        let rule = &cfg.rules["no-wall-clock"];
        assert_eq!(rule.exempt.len(), 2);
        assert!(rule.enabled);
        assert_eq!(
            cfg.rules["seed-domain-discipline"].file.as_deref(),
            Some("crates/fleet/src/seed.rs")
        );
    }

    #[test]
    fn zone_references_expand_in_path_matching() {
        let cfg = Config::parse(
            "[zones]\nt = [\"*/tests/\"]\n[rule.r]\nexempt = [\"zone:t\", \"docs/\"]\n",
        )
        .unwrap();
        let ex = cfg.rules["r"].exempt.clone();
        assert!(cfg.path_matches("crates/fleet/tests/util.rs", &ex));
        assert!(cfg.path_matches("tests/foo.rs", &ex));
        assert!(cfg.path_matches("docs/x.rs", &ex));
        assert!(!cfg.path_matches("crates/fleet/src/run.rs", &ex));
    }

    #[test]
    fn malformed_documents_are_rejected_with_lines() {
        assert!(Config::parse("[lint]\nbogus = 1\n").is_err());
        assert!(Config::parse("key_without_section = \"x\"\n").is_err());
        let err = Config::parse("[lint]\n\nexclude = [\"a\"\n").unwrap_err();
        assert!(err.starts_with("line 3"), "{err}");
    }
}
