//! Bench target for **Corollary 1**: checks (and times) the equivalence
//! between Algorithm 1 and the sequential lexicographically-first MIS of
//! the rank order.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepy_bench::bench_graph;
use sleepy_mis::{depth_alg1, derive_all, execute_sleeping_mis, MisConfig};
use sleepy_verify::lexicographically_first_mis;

fn corollary1(c: &mut Criterion) {
    let n = 1 << 11;
    let g = bench_graph(n, 51);
    let seed = 13;
    let out = execute_sleeping_mis(&g, MisConfig::alg1(seed)).expect("executes");
    let coins = derive_all(seed, n);
    let k = depth_alg1(n);
    let keys: Vec<u128> = (0..n).map(|v| coins[v].rank(k)).collect();
    let reference = lexicographically_first_mis(&g, &keys);
    assert_eq!(out.in_mis, reference, "Corollary 1 must hold on this instance");
    println!(
        "\nCorollary 1 verified at n = {n}: SleepingMIS == lexicographically-first MIS \
         ({} nodes in the MIS)",
        out.mis_nodes().len()
    );
    c.bench_function("corollary1/sleeping_mis_2048", |b| {
        b.iter(|| execute_sleeping_mis(&g, MisConfig::alg1(seed)).expect("executes"))
    });
    c.bench_function("corollary1/sequential_reference_2048", |b| {
        b.iter(|| lexicographically_first_mis(&g, &keys))
    });
}

criterion_group!(benches, corollary1);
criterion_main!(benches);
