//! Bench target for **Table 1**: times one full measurement cell per
//! algorithm (the building block of the `table1` experiment) and prints
//! the measured complexity row for each, so running this bench regenerates
//! Table 1's content at the benchmarked size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sleepy_bench::bench_graph;
use sleepy_harness::{measure_once, AlgoKind, Execution, ALL_ALGOS};

fn table1_cells(c: &mut Criterion) {
    let n = 1024;
    let g = bench_graph(n, 41);
    // Print the Table 1 row once per algorithm (the paper-shaped output).
    println!("\nTable 1 rows at n = {n} (seed 7):");
    println!(
        "{:<18} {:>10} {:>12} {:>12} {:>12}",
        "algorithm", "avg awake", "worst awake", "worst round", "avg round"
    );
    for algo in ALL_ALGOS {
        let r = measure_once(&g, algo, 7, Execution::Auto).expect("measurement");
        println!(
            "{:<18} {:>10.2} {:>12} {:>12} {:>12.1}",
            r.algo,
            r.summary.node_avg_awake,
            r.summary.worst_awake,
            r.summary.worst_round,
            r.summary.node_avg_round
        );
    }
    let mut group = c.benchmark_group("table1");
    for algo in [AlgoKind::SleepingMis, AlgoKind::FastSleepingMis] {
        group.bench_with_input(BenchmarkId::new("cell", algo.to_string()), &algo, |b, &algo| {
            b.iter(|| measure_once(&g, algo, 7, Execution::Auto).expect("measurement"))
        });
    }
    group.finish();
}

criterion_group!(benches, table1_cells);
criterion_main!(benches);
