//! Micro-benchmarks of the graph generators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sleepy_graph::GraphFamily;

fn graphgen(c: &mut Criterion) {
    let n = 1 << 14;
    let mut group = c.benchmark_group("graphgen");
    group.throughput(Throughput::Elements(n as u64));
    for fam in [
        GraphFamily::GnpAvgDeg(8.0),
        GraphFamily::RandomRegular(4),
        GraphFamily::GeometricAvgDeg(8.0),
        GraphFamily::BarabasiAlbert(3),
        GraphFamily::Tree,
    ] {
        group.bench_with_input(BenchmarkId::new("generate", fam.label()), &fam, |b, fam| {
            b.iter(|| fam.generate(n, 9).expect("generates"))
        });
    }
    group.finish();
}

criterion_group!(benches, graphgen);
criterion_main!(benches);
