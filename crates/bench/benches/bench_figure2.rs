//! Bench target for **Figure 2**: regenerates the level-occupancy profile
//! of both algorithms' recursion trees (printing the series once) and
//! times the profile computation.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepy_bench::bench_graph;
use sleepy_harness::figure2::{run_figure2, Figure2Config};
use sleepy_mis::{execute_sleeping_mis, MisConfig};

fn figure2(c: &mut Criterion) {
    let cfg = Figure2Config { n: 1 << 12, trials: 3, ..Figure2Config::default() };
    let report = run_figure2(&cfg).expect("figure 2 regenerates");
    println!(
        "\nFigure 2 series at n = {} (depth alg1 = {}, alg2 = {}):",
        cfg.n, report.alg1_depth, report.alg2_depth
    );
    println!("  depth  alg1-measured  alg2-measured  (3/4)^i*n");
    for d in 0..=report.alg2_depth as usize {
        println!(
            "  {:>5}  {:>13.1}  {:>13.1}  {:>9.1}",
            d,
            report.alg1_levels[d].measured,
            report.alg2_levels[d].measured,
            report.alg1_levels[d].predicted_bound
        );
    }
    let g = bench_graph(1 << 12, 17);
    c.bench_function("figure2/z_profile_4096", |b| {
        b.iter(|| {
            let out = execute_sleeping_mis(&g, MisConfig::alg1(3)).expect("executes");
            out.tree.z_profile()
        })
    });
}

criterion_group!(benches, figure2);
criterion_main!(benches);
