//! Bench target for **Figure 1**: regenerates the recursion-tree timing
//! labels (printing them once) and times the schedule-tree construction.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepy_harness::figure1::run_figure1;
use sleepy_mis::{schedule_tree, Schedule};

fn figure1(c: &mut Criterion) {
    let report = run_figure1().expect("figure 1 regenerates");
    assert!(report.labels_match_paper, "Figure 1 labels must match the paper");
    println!("\nFigure 1 labels (path: first-reached, finish):");
    for node in &report.figure_convention {
        let name = if node.path.is_empty() { "root" } else { &node.path };
        println!("  {:<5} ({}, {})", name, node.first_reached, node.finish);
    }
    c.bench_function("figure1/schedule_tree_depth16", |b| {
        b.iter(|| schedule_tree(16, &Schedule::alg1(), 0).expect("tree builds"))
    });
    c.bench_function("figure1/full_report", |b| {
        b.iter(|| run_figure1().expect("figure 1 regenerates"))
    });
}

criterion_group!(benches, figure1);
criterion_main!(benches);
