//! Bench target for the **theorem scaling** experiments (TH1/TH2): times
//! both algorithms across a size sweep and prints the four complexity
//! measures at each size — the series behind Theorems 1 and 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sleepy_bench::bench_graph;
use sleepy_mis::{execute_sleeping_mis, MisConfig};

fn scaling(c: &mut Criterion) {
    println!("\nTheorem scaling series (executor):");
    println!(
        "{:>8} {:<18} {:>10} {:>12} {:>14}",
        "n", "algorithm", "avg awake", "worst awake", "worst round"
    );
    for e in [10u32, 12, 14, 16] {
        let n = 1usize << e;
        let g = bench_graph(n, 23);
        for (label, cfg) in
            [("SleepingMIS", MisConfig::alg1(7)), ("Fast-SleepingMIS", MisConfig::alg2(7))]
        {
            let s = execute_sleeping_mis(&g, cfg).expect("executes").summary();
            println!(
                "{:>8} {:<18} {:>10.2} {:>12} {:>14}",
                n, label, s.node_avg_awake, s.worst_awake, s.worst_round
            );
        }
    }
    let mut group = c.benchmark_group("scaling");
    for e in [10u32, 12, 14] {
        let n = 1usize << e;
        let g = bench_graph(n, 23);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("alg1_executor", n), &g, |b, g| {
            b.iter(|| execute_sleeping_mis(g, MisConfig::alg1(7)).expect("executes"))
        });
        group.bench_with_input(BenchmarkId::new("alg2_executor", n), &g, |b, g| {
            b.iter(|| execute_sleeping_mis(g, MisConfig::alg2(7)).expect("executes"))
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
