//! Churn-absorb scaling: incremental per-event repair throughput at
//! n ∈ {1k, 10k, 100k} under uniform and adversarial churn, for the
//! in-place DynGraph path and (at the sizes where it terminates in
//! reasonable time) the rebuild-per-event baseline it replaced.
//!
//! Each iteration rebuilds the repairer from the pre-generated graph
//! and absorbs the whole pre-sampled event batch, so the measured work
//! is one O(n + m) phase-boundary setup plus the absorb loop — for the
//! rebuild baseline the loop alone is O(events × (n + m)) and dwarfs
//! the setup. `fleet bench-churn` measures the absorb loop in
//! isolation and emits the machine-readable `BENCH_churn.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepy_bench::bench_graph;
use sleepy_fleet::{seed, AlgoKind, Execution, IncrementalRepairer, RebuildRepairer};
use sleepy_graph::{churn_delta_with_mis, ChurnModel, ChurnSpec, DeltaEvent, Graph, NodeId};
use sleepy_verify::greedy_by_order;
use std::time::Duration;

const SEED: u64 = 0xC4A2;
const TARGET_EVENTS: usize = 200;

/// The deterministic ascending-id greedy MIS as the seed set.
fn greedy_mis(g: &Graph) -> Vec<bool> {
    let order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    greedy_by_order(g, &order)
}

/// A churn batch of roughly [`TARGET_EVENTS`] events for `g` — the
/// same `ChurnSpec::targeting_events` workload `fleet bench-churn`
/// measures, so the criterion curve and `BENCH_churn.json` describe
/// the same batch shape.
fn event_batch(g: &Graph, in_mis: &[bool], model: ChurnModel) -> Vec<DeltaEvent> {
    let spec = ChurnSpec::targeting_events(g, TARGET_EVENTS, 3, model);
    churn_delta_with_mis(g, &spec, SEED ^ 0x0C, Some(in_mis)).expect("churn samples").events()
}

fn absorb_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("churn_absorb");
    group.sample_size(10).measurement_time(Duration::from_secs(3));
    for n in [1_000usize, 10_000, 100_000] {
        let graph = bench_graph(n, SEED);
        let in_mis = greedy_mis(&graph);
        for model in [ChurnModel::Uniform, ChurnModel::Adversarial] {
            let events = event_batch(&graph, &in_mis, model);
            group.bench_function(format!("inplace/{}/n={n}", model.label()), |b| {
                b.iter(|| {
                    let mut rep = IncrementalRepairer::new(
                        graph.clone(),
                        in_mis.clone(),
                        AlgoKind::SleepingMis,
                        Execution::Auto,
                    );
                    for (k, &event) in events.iter().enumerate() {
                        rep.absorb(event, seed::update_seed(SEED, k as u64)).expect("absorbs");
                    }
                    assert_eq!(rep.rebuild_count(), 0, "absorption must never rebuild");
                    rep.finish()
                })
            });
            // The rebuild baseline at n=100k costs minutes per sample;
            // the subcommand (`fleet bench-churn`) covers that point
            // with single-pass timing.
            if n <= 10_000 {
                group.bench_function(format!("rebuild/{}/n={n}", model.label()), |b| {
                    b.iter(|| {
                        let mut rep = RebuildRepairer::new(
                            graph.clone(),
                            in_mis.clone(),
                            AlgoKind::SleepingMis,
                            Execution::Auto,
                        );
                        for (k, &event) in events.iter().enumerate() {
                            rep.absorb(event, seed::update_seed(SEED, k as u64)).expect("absorbs");
                        }
                        rep.finish()
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, absorb_scaling);
criterion_main!(benches);
