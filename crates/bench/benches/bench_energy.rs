//! Bench target for the **energy experiment**: prints the per-model energy
//! comparison once on a sensor-network instance and times the full
//! engine+energy pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_bench::bench_geometric;
use sleepy_mis::{run_sleeping_mis, MisConfig};
use sleepy_net::{EnergyModel, EngineConfig};

fn energy(c: &mut Criterion) {
    let n = 512;
    let g = bench_geometric(n, 61);
    let ec = EngineConfig::default();
    let model = EnergyModel::awake_rounds_only();
    let alg1 = run_sleeping_mis(&g, MisConfig::alg1(3), &ec).expect("runs").metrics;
    let alg2 = run_sleeping_mis(&g, MisConfig::alg2(3), &ec).expect("runs").metrics;
    let luby = run_baseline(&g, BaselineKind::LubyB, 3, &ec).expect("runs").metrics;
    println!("\nEnergy (awake-rounds model) on a {n}-node sensor network:");
    println!("  SleepingMIS       mean/node = {:.2}", model.report(&alg1).mean);
    println!("  Fast-SleepingMIS  mean/node = {:.2}", model.report(&alg2).mean);
    println!("  Luby-B            mean/node = {:.2} (early termination)", model.report(&luby).mean);
    c.bench_function("energy/alg2_engine_512", |b| {
        b.iter(|| run_sleeping_mis(&g, MisConfig::alg2(3), &ec).expect("runs"))
    });
    c.bench_function("energy/luby_engine_512", |b| {
        b.iter(|| run_baseline(&g, BaselineKind::LubyB, 3, &ec).expect("runs"))
    });
}

criterion_group!(benches, energy);
criterion_main!(benches);
