//! Bench target for the **lemma experiments** (L2/L3/L5/L7): prints the
//! measured Pruning-Lemma ratios once and times the per-call statistics
//! extraction.

use criterion::{criterion_group, criterion_main, Criterion};
use sleepy_bench::bench_graph;
use sleepy_graph::GraphFamily;
use sleepy_harness::lemmas::{run_lemmas, LemmasConfig};
use sleepy_mis::{execute_sleeping_mis, MisConfig};

fn lemmas(c: &mut Criterion) {
    let cfg = LemmasConfig {
        families: vec![GraphFamily::GnpAvgDeg(8.0)],
        n: 1 << 12,
        trials: 5,
        min_call_size: 32,
        base_seed: 3,
    };
    let report = run_lemmas(&cfg).expect("lemmas run");
    println!("\nLemma 2 / Lemma 3 ratios (bounds 0.5 / 0.25):");
    for ((fam, l2), (_, l3)) in report.lemma2.iter().zip(&report.lemma3) {
        println!("  {fam}: |L|/|U| = {:.4}, |R|/|U| = {:.4}", l2.mean, l3.mean);
    }
    let g = bench_graph(1 << 12, 5);
    c.bench_function("lemmas/recursion_ratios_4096", |b| {
        b.iter(|| {
            let out = execute_sleeping_mis(&g, MisConfig::alg1(5)).expect("executes");
            out.tree.recursion_ratios()
        })
    });
}

criterion_group!(benches, lemmas);
criterion_main!(benches);
