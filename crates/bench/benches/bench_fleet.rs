//! Fleet throughput: thread-scaling of a standard sweep, plus the
//! aggregate-determinism guard. Run `cargo bench --bench bench_fleet`
//! (or `examples/fleet_speedup.rs` for the full acceptance sweep).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sleepy_fleet::{run_plan, AlgoKind, Execution, FleetConfig, TrialPlan};
use sleepy_graph::GraphFamily;

fn sweep_plan(trials: usize) -> TrialPlan {
    TrialPlan::sweep(
        &[GraphFamily::GnpAvgDeg(8.0), GraphFamily::GeometricAvgDeg(8.0), GraphFamily::Tree],
        &[512],
        &[AlgoKind::SleepingMis, AlgoKind::FastSleepingMis],
        trials,
        0xBE7C,
        Execution::Auto,
    )
}

fn fleet_thread_scaling(c: &mut Criterion) {
    let plan = sweep_plan(8);
    let mut group = c.benchmark_group("fleet");
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sweep_48_trials", threads),
            &threads,
            |b, &threads| {
                b.iter(|| run_plan(&plan, &FleetConfig::with_threads(threads)).expect("fleet runs"))
            },
        );
    }
    group.finish();
}

fn fleet_shard_size(c: &mut Criterion) {
    let plan = sweep_plan(8);
    let mut group = c.benchmark_group("fleet-shard");
    for shard_size in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("shard_size", shard_size),
            &shard_size,
            |b, &shard_size| {
                b.iter(|| {
                    let cfg = FleetConfig { shard_size, ..FleetConfig::default() };
                    run_plan(&plan, &cfg).expect("fleet runs")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fleet_thread_scaling, fleet_shard_size);
criterion_main!(benches);
