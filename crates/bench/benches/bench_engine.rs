//! Micro-benchmarks of the sleeping-model engine: protocol runs vs the
//! combinatorial executor, and baseline algorithm throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sleepy_baselines::{run_baseline, BaselineKind};
use sleepy_bench::bench_graph;
use sleepy_mis::{execute_sleeping_mis, run_sleeping_mis, MisConfig};
use sleepy_net::EngineConfig;

fn engine(c: &mut Criterion) {
    let n = 1 << 10;
    let g = bench_graph(n, 31);
    let mut group = c.benchmark_group("engine");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function(BenchmarkId::new("alg1_protocol", n), |b| {
        b.iter(|| {
            run_sleeping_mis(&g, MisConfig::alg1(3), &EngineConfig::default())
                .expect("protocol runs")
        })
    });
    group.bench_function(BenchmarkId::new("alg1_executor", n), |b| {
        b.iter(|| execute_sleeping_mis(&g, MisConfig::alg1(3)).expect("executes"))
    });
    group.bench_function(BenchmarkId::new("alg2_protocol", n), |b| {
        b.iter(|| {
            run_sleeping_mis(&g, MisConfig::alg2(3), &EngineConfig::default())
                .expect("protocol runs")
        })
    });
    for kind in [BaselineKind::LubyB, BaselineKind::GreedyCrt] {
        group.bench_function(BenchmarkId::new("baseline", kind.to_string()), |b| {
            b.iter(|| run_baseline(&g, kind, 3, &EngineConfig::default()).expect("runs"))
        });
    }
    group.finish();
}

criterion_group!(benches, engine);
criterion_main!(benches);
