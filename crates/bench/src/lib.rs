//! Shared fixtures for the criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sleepy_graph::{Graph, GraphFamily};

/// A deterministic sparse G(n, p) benchmark instance (average degree 8).
pub fn bench_graph(n: usize, seed: u64) -> Graph {
    GraphFamily::GnpAvgDeg(8.0).generate(n, seed).expect("benchmark workload generates")
}

/// A deterministic geometric (sensor-network) benchmark instance.
pub fn bench_geometric(n: usize, seed: u64) -> Graph {
    GraphFamily::GeometricAvgDeg(8.0).generate(n, seed).expect("benchmark workload generates")
}
