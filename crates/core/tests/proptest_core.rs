//! Property-based tests of the core algorithm machinery: schedules,
//! rank structure, and executor invariants.

use proptest::prelude::*;
use sleepy_graph::{Graph, NodeId};
use sleepy_mis::{
    depth_alg1, depth_alg2, derive_all, execute_sleeping_mis, greedy_budget_rounds, schedule_tree,
    Convention, MisConfig, Schedule,
};

fn arb_graph(max_n: usize) -> impl Strategy<Value = Graph> {
    (1..max_n).prop_flat_map(|n| {
        proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..3 * n).prop_map(
            move |pairs| {
                let edges: Vec<(NodeId, NodeId)> =
                    pairs.into_iter().filter(|(u, v)| u != v).collect();
                Graph::from_edges(n, edges).expect("valid edges")
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_windows_partition(k in 1u32..20, t0 in 0u64..200, start in 0u64..1_000_000) {
        let s = Schedule::new(t0, Convention::Pseudocode);
        let ph = s.phases(k, start).unwrap();
        let t_child = s.duration(k - 1).unwrap();
        // The call decomposes exactly into: first-iso, left window, sync,
        // second-iso, right window.
        prop_assert_eq!(ph.left_start, ph.first_iso + 1);
        prop_assert_eq!(ph.sync, ph.left_start + t_child);
        prop_assert_eq!(ph.second_iso, ph.sync + 1);
        prop_assert_eq!(ph.right_start, ph.second_iso + 1);
        prop_assert_eq!(ph.end + 1, ph.right_start + t_child);
        prop_assert_eq!(ph.end - ph.first_iso + 1, s.duration(k).unwrap());
    }

    #[test]
    fn schedule_tree_nodes_count_and_depths(depth in 0u32..10) {
        let nodes = schedule_tree(depth, &Schedule::alg1(), 0).unwrap();
        prop_assert_eq!(nodes.len(), (1usize << (depth + 1)) - 1);
        for node in &nodes {
            prop_assert_eq!(node.depth + node.k, depth);
            prop_assert_eq!(node.path.len(), node.depth as usize);
        }
    }

    #[test]
    fn depths_are_monotone_and_ordered(n in 3usize..1_000_000) {
        prop_assert!(depth_alg2(n) <= depth_alg1(n));
        prop_assert!(depth_alg1(n) <= depth_alg1(n + 1));
        prop_assert!(depth_alg2(n) <= depth_alg2(n + 1));
    }

    #[test]
    fn coins_are_stable_across_batch_and_single(seed in any::<u64>(), n in 1usize..64) {
        let all = derive_all(seed, n);
        for (v, coins) in all.iter().enumerate() {
            prop_assert_eq!(
                *coins,
                sleepy_mis::NodeRandomness::derive(seed, v as NodeId)
            );
        }
    }

    #[test]
    fn executor_decide_before_finish(g in arb_graph(60), seed in 0u64..100) {
        for cfg in [MisConfig::alg1(seed), MisConfig::alg2(seed)] {
            let out = execute_sleeping_mis(&g, cfg).unwrap();
            for v in 0..g.n() {
                prop_assert!(out.decide_rounds[v] <= out.finish_rounds[v], "node {v}");
                prop_assert!(out.awake_rounds[v] >= 1, "node {v} never awake");
                prop_assert!(out.finish_rounds[v] < out.total_rounds);
            }
            // Tree accounting: root level holds everyone; per-level
            // participants never exceed n.
            let z = out.tree.z_profile();
            prop_assert_eq!(z[0], g.n() as u64);
            prop_assert!(z.iter().all(|&x| x <= g.n() as u64));
        }
    }

    #[test]
    fn alg2_worst_awake_within_budget(g in arb_graph(80), seed in 0u64..100) {
        let n = g.n();
        let out = execute_sleeping_mis(&g, MisConfig::alg2(seed)).unwrap();
        let k2 = depth_alg2(n) as u64;
        let budget = greedy_budget_rounds(n, 4.0);
        for (v, &a) in out.awake_rounds.iter().enumerate() {
            prop_assert!(
                a <= 3 * (k2 + 1) + budget,
                "node {v}: awake {a} > 3(K2+1) + budget {budget}"
            );
        }
    }

    #[test]
    fn executor_mis_members_dominate(g in arb_graph(60), seed in 0u64..100) {
        // Domination holds even on Monte-Carlo tie failures (ties can only
        // violate independence, never leave a node undominated).
        let out = execute_sleeping_mis(&g, MisConfig::alg1(seed)).unwrap();
        for v in 0..g.n() as NodeId {
            let dominated = out.in_mis[v as usize]
                || g.neighbors(v).iter().any(|&u| out.in_mis[u as usize]);
            prop_assert!(dominated, "node {v} undominated");
        }
    }
}
