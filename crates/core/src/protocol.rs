//! The SleepingMIS / Fast-SleepingMIS message-passing protocol
//! (Algorithms 1 and 2 of the paper), flattened into a per-node state
//! machine over the sleeping-model engine.
//!
//! ## How the recursion becomes a state machine
//!
//! Every call of `SleepingMISRecursive(k)` occupies a fixed window of
//! T(k) rounds ([`Schedule`]), so a node can always compute the absolute
//! round of its next obligation. Each node keeps a stack of frames — one
//! per recursive call it is currently participating in — and advances the
//! top frame through the phases
//!
//! 1. **first isolated-node detection** (broadcast `Hello`; no message
//!    received ⇒ join the MIS),
//! 2. **left recursion** (descend if X_k = 1 and still undecided,
//!    else sleep through the window),
//! 3. **synchronization / elimination** (broadcast inMIS; a neighbor in the
//!    MIS ⇒ set inMIS = false),
//! 4. **second isolated-node detection** (broadcast inMIS; all subgraph
//!    neighbors false ⇒ join the MIS),
//! 5. **right recursion** (descend if still undecided, else sleep).
//!
//! When a node finishes a call it *returns*: if the call was a left child
//! it wakes for the parent's sync round; if it was a right child the parent
//! is finished too and the pop cascades — when the stack empties the node
//! terminates. This cascade is exactly why decided nodes re-announce their
//! status at every ancestor's sync and second-iso rounds, which the
//! correctness proof (Lemma 1) relies on.
//!
//! Algorithm 2 differs only in the base case: instead of joining the MIS
//! outright at k = 0, participants run the parallel randomized greedy MIS
//! inside a fixed window of 1 + 2·⌈c·log₂ n⌉ rounds (rank exchange, then
//! two rounds per iteration), going back to sleep as soon as they decide.

use crate::error::MisError;
use crate::params::{greedy_iterations, MisConfig, SendPolicy, Variant};
use crate::rank::{greedy_key, NodeRandomness};
use crate::schedule::Schedule;
use sleepy_graph::{Graph, NodeId, Port};
use sleepy_net::{
    run_protocol, run_protocol_taped, run_protocol_with_sink, Action, EngineConfig, Incoming,
    MessageSize, NodeCtx, Outbox, Protocol, Round, RunMetrics, Tape, Trace, TraceSink,
};

/// Tri-state MIS status, as stored in `v.inMIS` by the paper's pseudocode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisStatus {
    /// Not yet determined.
    Unknown,
    /// In the MIS.
    In,
    /// Not in the MIS (dominated by a neighbor in the MIS).
    Out,
}

/// Messages exchanged by the protocol. All are O(log n) bits, respecting
/// the CONGEST model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMsg {
    /// First-isolated-detection probe ("I participate in this call").
    Hello,
    /// The sender's current inMIS value (sync and second-iso rounds).
    Status(MisStatus),
    /// Greedy base case: the sender's rank and id (rank-exchange round).
    GreedyHello {
        /// The sender's random 64-bit rank.
        rank: u64,
        /// The sender's id (tie-break).
        id: NodeId,
    },
    /// Greedy base case: the sender joined the MIS this iteration.
    GreedyJoin,
    /// Greedy base case: the sender was eliminated and leaves the graph.
    GreedyRemoved,
}

impl MessageSize for MisMsg {
    fn bits(&self) -> usize {
        match self {
            MisMsg::Hello => 1,
            MisMsg::Status(_) => 3,
            MisMsg::GreedyHello { .. } => 2 + 64 + 32,
            MisMsg::GreedyJoin | MisMsg::GreedyRemoved => 3,
        }
    }
}

/// A node's final output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutput {
    /// Whether the node is in the computed MIS.
    pub in_mis: bool,
    /// Whether the node hit Algorithm 2's base-case round budget without
    /// deciding (the Monte-Carlo failure mode; it then defaults to
    /// `in_mis = false`, which can cost maximality).
    pub base_timeout: bool,
}

/// Immutable per-run data shared by all node protocols: validated depth,
/// schedule, and the precomputed durations T(0..=K).
#[derive(Debug, Clone)]
pub struct PreparedMis {
    /// The validated configuration.
    pub config: MisConfig,
    /// Number of nodes.
    pub n: usize,
    /// Recursion depth K.
    pub depth: u32,
    /// The padded schedule.
    pub schedule: Schedule,
    /// T(k) for k = 0..=K.
    pub durations: Vec<u64>,
    /// Max greedy iterations per base case (Algorithm 2).
    pub max_iterations: u32,
}

impl PreparedMis {
    /// Validates `config` for an n-node network and precomputes the
    /// schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`MisConfig::validate`] and schedule-overflow errors.
    pub fn new(n: usize, config: MisConfig) -> Result<Self, MisError> {
        config.validate(n)?;
        let depth = config.depth_for(n);
        let (schedule, max_iterations) = match config.variant {
            Variant::SleepingMis => (Schedule::alg1(), 0),
            Variant::FastSleepingMis => {
                let iters = greedy_iterations(n, config.greedy_c);
                (Schedule::alg2(1 + 2 * iters as u64), iters)
            }
        };
        let durations = schedule.durations(depth)?;
        Ok(PreparedMis { config, n, depth, schedule, durations, max_iterations })
    }

    /// T(k); `k` must be ≤ the prepared depth.
    fn t(&self, k: u32) -> u64 {
        self.durations[k as usize]
    }
}

/// Greedy base-case sub-state (Algorithm 2).
#[derive(Debug, Clone)]
struct GreedyData {
    sub: GreedySub,
    iteration: u32,
    /// Alive base-subgraph neighbors: (port, rank, id).
    alive: Vec<(Port, u64, NodeId)>,
    /// Set during the send phase of a join round when this node joins.
    announced_join: bool,
    /// Set when eliminated at a join round; cleared after announcing
    /// `GreedyRemoved` the following round.
    eliminated_now: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GreedySub {
    /// Rank-exchange round (the base window's first round).
    Init,
    /// Join-announcement round of the current iteration.
    Join,
    /// Removal-announcement round of the current iteration.
    Removal,
}

/// Phase of a recursion frame.
#[derive(Debug, Clone)]
enum Stage {
    /// Next obligation: the call's first-isolated-detection round.
    FirstIso,
    /// Next obligation: the call's sync round.
    Sync,
    /// Next obligation: the call's second-iso round.
    SecondIso,
    /// Base-case greedy window (Algorithm 2 only).
    Greedy(GreedyData),
}

/// One recursion call the node participates in.
#[derive(Debug, Clone)]
struct Frame {
    k: u32,
    start: Round,
    /// Whether this call is the left recursion of its parent.
    is_left: bool,
    stage: Stage,
    /// Ports to neighbors participating in this call (learned at
    /// first-iso), ascending.
    u_ports: Vec<Port>,
}

/// Per-node protocol state for SleepingMIS / Fast-SleepingMIS.
///
/// Construct via [`SleepingMisProtocol::new`] and run with
/// [`run_sleeping_mis`] (or [`sleepy_net::run_protocol`] directly).
#[derive(Debug, Clone)]
pub struct SleepingMisProtocol {
    prepared: PreparedMis,
    coins: NodeRandomness,
    status: MisStatus,
    stack: Vec<Frame>,
    /// Set when K = 0 under Algorithm 1 (the node joins the MIS before any
    /// communication and terminates at round 0).
    terminate_immediately: bool,
    base_timeout: bool,
    done: bool,
}

impl SleepingMisProtocol {
    /// Creates the state machine for node `id`.
    ///
    /// All nodes of a run must share the same `prepared` data (clone it
    /// into the factory closure).
    pub fn new(id: NodeId, prepared: PreparedMis) -> Self {
        let coins = NodeRandomness::derive(prepared.config.seed, id);
        let depth = prepared.depth;
        let mut p = SleepingMisProtocol {
            prepared,
            coins,
            status: MisStatus::Unknown,
            stack: Vec::with_capacity(depth as usize + 1),
            terminate_immediately: false,
            base_timeout: false,
            done: false,
        };
        // Root call starting at round 0.
        if depth == 0 {
            match p.prepared.config.variant {
                Variant::SleepingMis => {
                    // Base case at the root: join immediately; terminate at
                    // round 0 (one awake round for the handshake with the
                    // engine).
                    p.status = MisStatus::In;
                    p.terminate_immediately = true;
                }
                Variant::FastSleepingMis => {
                    p.stack.push(Frame {
                        k: 0,
                        start: 0,
                        is_left: false,
                        stage: Stage::Greedy(GreedyData {
                            sub: GreedySub::Init,
                            iteration: 0,
                            alive: Vec::new(),
                            announced_join: false,
                            eliminated_now: false,
                        }),
                        u_ports: Vec::new(),
                    });
                }
            }
        } else {
            p.stack.push(Frame {
                k: depth,
                start: 0,
                is_left: false,
                stage: Stage::FirstIso,
                u_ports: Vec::new(),
            });
        }
        p
    }

    /// The X_k coin of this node.
    fn x(&self, k: u32) -> bool {
        self.coins.x(k)
    }

    /// `Continue` if the next obligation is the very next round, otherwise
    /// sleep until it.
    fn goto(&self, target: Round, now: Round) -> Action {
        debug_assert!(target > now, "next obligation must be in the future");
        if target == now + 1 {
            Action::Continue
        } else {
            Action::SleepUntil(target)
        }
    }

    /// Enter a child call at level `k` starting at round `start`
    /// (= `now` + 1). Handles Algorithm 1's zero-duration base case inline.
    fn descend(&mut self, k: u32, start: Round, is_left: bool, now: Round) -> Action {
        if k == 0 && self.prepared.config.variant == Variant::SleepingMis {
            // Base case (lines 9-12): join the MIS; the call takes no
            // rounds, so immediately return from this virtual child.
            debug_assert_eq!(self.status, MisStatus::Unknown);
            self.status = MisStatus::In;
            return self.return_after_child(is_left, now);
        }
        let stage = if k == 0 {
            Stage::Greedy(GreedyData {
                sub: GreedySub::Init,
                iteration: 0,
                alive: Vec::new(),
                announced_join: false,
                eliminated_now: false,
            })
        } else {
            Stage::FirstIso
        };
        self.stack.push(Frame { k, start, is_left, stage, u_ports: Vec::new() });
        self.goto(start, now)
    }

    /// Pop the top frame (its window is over for this node) and cascade.
    fn return_from(&mut self, now: Round) -> Action {
        let frame = self.stack.pop().expect("return_from requires a frame");
        self.return_after_child(frame.is_left, now)
    }

    /// After finishing a child call (`child_was_left` tells which side),
    /// resume the parent: a left child resumes at the parent's sync round;
    /// a right child completes the parent as well, cascading upward. An
    /// empty stack means the node is done.
    fn return_after_child(&mut self, mut child_was_left: bool, now: Round) -> Action {
        loop {
            let Some(parent) = self.stack.last_mut() else {
                self.done = true;
                debug_assert_ne!(self.status, MisStatus::Unknown);
                return Action::Terminate;
            };
            if child_was_left {
                debug_assert!(matches!(parent.stage, Stage::Sync));
                let sync = parent.start + 1 + self.prepared.t(parent.k - 1);
                return self.goto(sync, now);
            }
            // Right child: the parent window ends with it; pop and continue.
            let parent = self.stack.pop().expect("parent frame exists");
            child_was_left = parent.is_left;
        }
    }

    /// Whether this node currently wins the greedy join test: its key is
    /// strictly larger than every alive base-subgraph neighbor's key.
    fn greedy_wins(&self, id: NodeId, alive: &[(Port, u64, NodeId)]) -> bool {
        let mine = greedy_key(self.coins.greedy_rank, id);
        alive.iter().all(|&(_, r, i)| mine > greedy_key(r, i))
    }
}

impl Protocol for SleepingMisProtocol {
    type Msg = MisMsg;
    type Output = NodeOutput;

    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<MisMsg>) {
        if self.terminate_immediately {
            return;
        }
        let status = self.status;
        let wins = match self.stack.last() {
            Some(Frame { stage: Stage::Greedy(g), .. })
                if g.sub == GreedySub::Join && status == MisStatus::Unknown =>
            {
                self.greedy_wins(ctx.id, &g.alive)
            }
            _ => false,
        };
        let subgraph_only = self.prepared.config.send_policy == SendPolicy::SubgraphOnly;
        let Some(frame) = self.stack.last_mut() else { return };
        match &mut frame.stage {
            Stage::FirstIso => out.broadcast(MisMsg::Hello),
            Stage::Sync | Stage::SecondIso => {
                if subgraph_only {
                    for &p in &frame.u_ports {
                        out.send(p, MisMsg::Status(status));
                    }
                } else {
                    out.broadcast(MisMsg::Status(status));
                }
            }
            Stage::Greedy(g) => match g.sub {
                GreedySub::Init => {
                    out.broadcast(MisMsg::GreedyHello { rank: self.coins.greedy_rank, id: ctx.id })
                }
                GreedySub::Join => {
                    if wins {
                        self.status = MisStatus::In;
                        g.announced_join = true;
                        if subgraph_only {
                            for &(p, _, _) in &g.alive {
                                out.send(p, MisMsg::GreedyJoin);
                            }
                        } else {
                            out.broadcast(MisMsg::GreedyJoin);
                        }
                    }
                }
                GreedySub::Removal => {
                    if g.eliminated_now {
                        if subgraph_only {
                            for &(p, _, _) in &g.alive {
                                out.send(p, MisMsg::GreedyRemoved);
                            }
                        } else {
                            out.broadcast(MisMsg::GreedyRemoved);
                        }
                    }
                }
            },
        }
    }

    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<MisMsg>]) -> Action {
        if self.terminate_immediately {
            self.done = true;
            return Action::Terminate;
        }
        debug_assert!(!self.done, "received after termination");
        let now = ctx.round;
        let frame_idx = self.stack.len() - 1;
        // Work on the top frame by index to satisfy the borrow checker
        // while calling helper methods.
        let (k, start) = {
            let f = &self.stack[frame_idx];
            (f.k, f.start)
        };
        let stage_kind = match &self.stack[frame_idx].stage {
            Stage::FirstIso => 0,
            Stage::Sync => 1,
            Stage::SecondIso => 2,
            Stage::Greedy(_) => 3,
        };
        match stage_kind {
            // --- First isolated-node detection (lines 13-16) ---
            0 => {
                debug_assert_eq!(now, start);
                let mut u_ports: Vec<Port> =
                    inbox.iter().filter(|m| m.msg == MisMsg::Hello).map(|m| m.port).collect();
                u_ports.sort_unstable();
                if u_ports.is_empty() {
                    self.status = MisStatus::In; // isolated in G[U]
                }
                let t_child = self.prepared.t(k - 1);
                let sync = start + 1 + t_child;
                self.stack[frame_idx].u_ports = u_ports;
                self.stack[frame_idx].stage = Stage::Sync;
                if self.status == MisStatus::Unknown && self.x(k) {
                    // Left recursion (lines 17-18).
                    self.descend(k - 1, now + 1, true, now)
                } else {
                    // Sleep through the left window (lines 19-21).
                    self.goto(sync, now)
                }
            }
            // --- Synchronization / elimination (lines 22-25) ---
            1 => {
                if self.status == MisStatus::Unknown {
                    let f = &self.stack[frame_idx];
                    let eliminated = inbox.iter().any(|m| {
                        m.msg == MisMsg::Status(MisStatus::In)
                            && f.u_ports.binary_search(&m.port).is_ok()
                    });
                    if eliminated {
                        self.status = MisStatus::Out;
                    }
                }
                self.stack[frame_idx].stage = Stage::SecondIso;
                Action::Continue // second-iso is always the next round
            }
            // --- Second isolated-node detection (lines 26-29) ---
            2 => {
                if self.status == MisStatus::Unknown {
                    let f = &self.stack[frame_idx];
                    let falses = inbox
                        .iter()
                        .filter(|m| {
                            m.msg == MisMsg::Status(MisStatus::Out)
                                && f.u_ports.binary_search(&m.port).is_ok()
                        })
                        .count();
                    debug_assert!(
                        !f.u_ports.is_empty(),
                        "an undecided node cannot be isolated at second-iso"
                    );
                    if falses == f.u_ports.len() {
                        self.status = MisStatus::In;
                    }
                }
                if self.status == MisStatus::Unknown {
                    // Right recursion (lines 30-31).
                    self.descend(k - 1, now + 1, false, now)
                } else {
                    // Sleep through the right window and return
                    // (lines 32-34).
                    self.return_from(now)
                }
            }
            // --- Greedy base case (Algorithm 2, line 10) ---
            _ => {
                let budget_end = start + 2 * self.prepared.max_iterations as u64;
                let Stage::Greedy(g) = &mut self.stack[frame_idx].stage else { unreachable!() };
                match g.sub {
                    GreedySub::Init => {
                        debug_assert_eq!(now, start);
                        let mut alive: Vec<(Port, u64, NodeId)> = inbox
                            .iter()
                            .filter_map(|m| match m.msg {
                                MisMsg::GreedyHello { rank, id } => Some((m.port, rank, id)),
                                _ => None,
                            })
                            .collect();
                        alive.sort_unstable();
                        let ports: Vec<Port> = alive.iter().map(|&(p, _, _)| p).collect();
                        g.alive = alive;
                        g.sub = GreedySub::Join;
                        self.stack[frame_idx].u_ports = ports;
                        Action::Continue
                    }
                    GreedySub::Join => {
                        if g.announced_join {
                            // Joined this round (decided during `send`);
                            // leave the window.
                            debug_assert_eq!(self.status, MisStatus::In);
                            return self.return_from(now);
                        }
                        let joined_ports: Vec<Port> = inbox
                            .iter()
                            .filter(|m| m.msg == MisMsg::GreedyJoin)
                            .map(|m| m.port)
                            .collect();
                        if !joined_ports.is_empty() {
                            g.alive.retain(|&(p, _, _)| !joined_ports.contains(&p));
                            debug_assert_eq!(self.status, MisStatus::Unknown);
                            self.status = MisStatus::Out;
                            g.eliminated_now = true;
                        }
                        g.sub = GreedySub::Removal;
                        Action::Continue
                    }
                    GreedySub::Removal => {
                        let removed: Vec<Port> = inbox
                            .iter()
                            .filter(|m| m.msg == MisMsg::GreedyRemoved)
                            .map(|m| m.port)
                            .collect();
                        g.alive.retain(|&(p, _, _)| !removed.contains(&p));
                        if g.eliminated_now {
                            // Announced our removal this round; leave.
                            return self.return_from(now);
                        }
                        g.iteration += 1;
                        if g.iteration >= self.prepared.max_iterations {
                            // Round budget exhausted (Monte-Carlo failure):
                            // default to not-in-MIS.
                            debug_assert_eq!(now, budget_end);
                            if self.status == MisStatus::Unknown {
                                self.status = MisStatus::Out;
                                self.base_timeout = true;
                            }
                            return self.return_from(now);
                        }
                        g.sub = GreedySub::Join;
                        Action::Continue
                    }
                }
            }
        }
    }

    fn output(&self) -> Option<NodeOutput> {
        match self.status {
            MisStatus::Unknown => None,
            MisStatus::In => Some(NodeOutput { in_mis: true, base_timeout: self.base_timeout }),
            MisStatus::Out => Some(NodeOutput { in_mis: false, base_timeout: self.base_timeout }),
        }
    }
}

/// Result of a full protocol run.
#[derive(Debug, Clone)]
pub struct MisRunResult {
    /// MIS membership per node.
    pub in_mis: Vec<bool>,
    /// Nodes that hit the Algorithm 2 base-case budget (always empty for
    /// Algorithm 1).
    pub base_timeouts: Vec<NodeId>,
    /// Engine metrics (awake rounds, finish rounds, messages, …).
    pub metrics: RunMetrics,
    /// Engine trace, if requested.
    pub trace: Option<Trace>,
}

/// Runs SleepingMIS (Algorithm 1) or Fast-SleepingMIS (Algorithm 2) on
/// `graph` through the sleeping-model engine.
///
/// # Errors
///
/// Configuration errors ([`MisError::DepthTooLarge`],
/// [`MisError::ScheduleOverflow`], [`MisError::InvalidConfig`]) or engine
/// failures ([`MisError::Engine`]).
///
/// # Example
///
/// ```
/// use sleepy_graph::generators;
/// use sleepy_mis::{run_sleeping_mis, MisConfig};
/// use sleepy_net::EngineConfig;
///
/// let g = generators::cycle(16).unwrap();
/// let run = run_sleeping_mis(&g, MisConfig::alg1(7), &EngineConfig::default())?;
/// // An MIS of a cycle has between n/3 and n/2 nodes.
/// let size = run.in_mis.iter().filter(|&&b| b).count();
/// assert!((6..=8).contains(&size));
/// # Ok::<(), sleepy_mis::MisError>(())
/// ```
pub fn run_sleeping_mis(
    graph: &Graph,
    config: MisConfig,
    engine_config: &EngineConfig,
) -> Result<MisRunResult, MisError> {
    let prepared = PreparedMis::new(graph.n(), config)?;
    let outcome = run_protocol(graph, engine_config, |id, _ctx| {
        SleepingMisProtocol::new(id, prepared.clone())
    })?;
    Ok(collect_mis(outcome))
}

/// [`run_sleeping_mis`] with the engine streaming every protocol event
/// into `sink` instead of (or in addition to) buffering a [`Trace`] —
/// the entry point for round-timeline recorders and schedule validators.
/// The returned result's `trace` is always `None`; tee a
/// [`TraceBuffer`](sleepy_net::TraceBuffer) into `sink` to keep one.
///
/// # Errors
///
/// Same as [`run_sleeping_mis`].
pub fn run_sleeping_mis_with_sink(
    graph: &Graph,
    config: MisConfig,
    engine_config: &EngineConfig,
    sink: &mut dyn TraceSink,
) -> Result<MisRunResult, MisError> {
    let prepared = PreparedMis::new(graph.n(), config)?;
    let outcome = run_protocol_with_sink(
        graph,
        engine_config,
        |id, _ctx| SleepingMisProtocol::new(id, prepared.clone()),
        sink,
    )?;
    Ok(collect_mis(outcome))
}

/// [`run_sleeping_mis_with_sink`] recording the run as an engine
/// [`Tape`] — the entry point behind `fleet record-tape`.
///
/// Returns the run result together with the tape. The tape is produced
/// even when the engine errors (the error is part of the recorded
/// conformance artifact); it is `None` only when the configuration
/// itself is rejected before the engine starts. The tape's `label` and
/// `seed` stamps are left empty for the caller to fill.
pub fn run_sleeping_mis_taped(
    graph: &Graph,
    config: MisConfig,
    engine_config: &EngineConfig,
    sink: &mut dyn TraceSink,
) -> (Result<MisRunResult, MisError>, Option<Tape>) {
    let prepared = match PreparedMis::new(graph.n(), config) {
        Ok(p) => p,
        Err(e) => return (Err(e), None),
    };
    let (result, tape) = run_protocol_taped(
        graph,
        engine_config,
        |id, _ctx| SleepingMisProtocol::new(id, prepared.clone()),
        sink,
    );
    (result.map(collect_mis).map_err(MisError::from), Some(tape))
}

fn collect_mis(outcome: sleepy_net::RunOutcome<NodeOutput>) -> MisRunResult {
    let mut in_mis = Vec::with_capacity(outcome.outputs.len());
    let mut base_timeouts = Vec::new();
    for (id, out) in outcome.outputs.iter().enumerate() {
        let out = out.as_ref().expect("completed runs have outputs for every node");
        in_mis.push(out.in_mis);
        if out.base_timeout {
            base_timeouts.push(id as NodeId);
        }
    }
    MisRunResult { in_mis, base_timeouts, metrics: outcome.metrics, trace: outcome.trace }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::generators;

    fn is_valid_mis(g: &Graph, in_mis: &[bool]) -> bool {
        // Independence.
        for (u, v) in g.edges() {
            if in_mis[u as usize] && in_mis[v as usize] {
                return false;
            }
        }
        // Maximality.
        for v in g.node_ids() {
            if !in_mis[v as usize] && !g.neighbors(v).iter().any(|&u| in_mis[u as usize]) {
                return false;
            }
        }
        true
    }

    #[test]
    fn single_node_alg1() {
        let g = generators::empty(1).unwrap();
        let run = run_sleeping_mis(&g, MisConfig::alg1(1), &EngineConfig::default()).unwrap();
        assert_eq!(run.in_mis, vec![true]);
        assert_eq!(run.metrics.total_rounds, 1);
        assert_eq!(run.metrics.per_node[0].awake_rounds, 1);
    }

    #[test]
    fn single_node_alg2() {
        let g = generators::empty(1).unwrap();
        let run = run_sleeping_mis(&g, MisConfig::alg2(1), &EngineConfig::default()).unwrap();
        assert_eq!(run.in_mis, vec![true]);
        // Rank-exchange round + first join round.
        assert_eq!(run.metrics.per_node[0].awake_rounds, 2);
    }

    #[test]
    fn empty_graph_all_join() {
        let g = generators::empty(6).unwrap();
        for cfg in [MisConfig::alg1(3), MisConfig::alg2(3)] {
            let run = run_sleeping_mis(&g, cfg, &EngineConfig::default()).unwrap();
            assert!(run.in_mis.iter().all(|&b| b), "{cfg:?}");
        }
    }

    #[test]
    fn two_nodes_exactly_one_joins() {
        // Algorithm 1 is Monte Carlo: with n = 2 the depth is K = 3 and
        // two adjacent nodes draw identical rank bits with probability
        // 2^-3 = 1/8, in which case both join (the paper's "whp" guarantee
        // is vacuous at n = 2). Verify correctness exactly on the non-tie
        // seeds and that failures coincide with full rank ties.
        use crate::rank::NodeRandomness;
        let g = generators::path(2).unwrap();
        let mut failures = 0;
        for seed in 0..20 {
            let run =
                run_sleeping_mis(&g, MisConfig::alg1(seed), &EngineConfig::default()).unwrap();
            let count = run.in_mis.iter().filter(|&&b| b).count();
            let tie =
                NodeRandomness::derive(seed, 0).rank(3) == NodeRandomness::derive(seed, 1).rank(3);
            if tie {
                failures += 1;
                assert_eq!(count, 2, "a full tie must make both join (seed {seed})");
            } else {
                assert_eq!(count, 1, "seed {seed}: {:?}", run.in_mis);
            }
        }
        assert!(failures <= 8, "tie rate implausibly high: {failures}/20");
        // Algorithm 2 tie-breaks greedy ranks by id, so it is always exact
        // here (n = 2 means depth 0, i.e. pure greedy).
        for seed in 0..20 {
            let run =
                run_sleeping_mis(&g, MisConfig::alg2(seed), &EngineConfig::default()).unwrap();
            assert_eq!(run.in_mis.iter().filter(|&&b| b).count(), 1, "alg2 seed {seed}");
        }
    }

    /// Whether any two nodes share a full K-rank for this `(n, seed)` —
    /// the Monte-Carlo failure event of Algorithm 1 (ties can produce
    /// adjacent MIS members; the paper's "whp" guarantee only bounds the
    /// probability). Seed tests skip or relax tie seeds instead of
    /// demanding luck from the PRNG stream.
    fn has_full_rank_tie(n: usize, seed: u64) -> bool {
        let k = crate::depth_alg1(n);
        let mut ranks: Vec<u128> =
            crate::rank::derive_all(seed, n).iter().map(|c| c.rank(k)).collect();
        ranks.sort_unstable();
        ranks.windows(2).any(|w| w[0] == w[1])
    }

    #[test]
    fn clique_exactly_one_joins() {
        // With n = 9 the rank has only K = ceil(3 log2 9) = 10 bits, so a
        // birthday tie among the 9 nodes happens with a few percent
        // probability per seed; exactly-one holds on every tie-free seed.
        let g = generators::clique(9).unwrap();
        let mut checked = 0;
        for seed in 0..10 {
            let run =
                run_sleeping_mis(&g, MisConfig::alg1(seed), &EngineConfig::default()).unwrap();
            let count = run.in_mis.iter().filter(|&&b| b).count();
            if has_full_rank_tie(g.n(), seed) {
                assert!(count >= 1, "seed {seed}: nobody joined");
            } else {
                assert_eq!(count, 1, "seed {seed}");
                checked += 1;
            }
        }
        assert!(checked >= 5, "implausibly many tie seeds: only {checked}/10 tie-free");
    }

    #[test]
    fn valid_mis_on_varied_graphs_alg1() {
        let mut checked = 0;
        for (i, g) in [
            generators::cycle(17).unwrap(),
            generators::star(12).unwrap(),
            generators::gnp(60, 0.1, 5).unwrap(),
            generators::random_tree(40, 2).unwrap(),
            generators::grid2d(6, 7).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..5 {
                let run =
                    run_sleeping_mis(g, MisConfig::alg1(seed), &EngineConfig::default()).unwrap();
                if has_full_rank_tie(g.n(), seed) {
                    // Ties can only break independence; every node is
                    // still decided, so domination must hold regardless.
                    for v in g.node_ids() {
                        let dominated = run.in_mis[v as usize]
                            || g.neighbors(v).iter().any(|&u| run.in_mis[u as usize]);
                        assert!(dominated, "graph {i} seed {seed}: node {v} undominated");
                    }
                } else {
                    assert!(is_valid_mis(g, &run.in_mis), "graph {i} seed {seed}");
                    checked += 1;
                }
            }
        }
        assert!(checked >= 15, "implausibly many tie seeds: only {checked}/25 tie-free");
    }

    #[test]
    fn valid_mis_on_varied_graphs_alg2() {
        for (i, g) in [
            generators::cycle(17).unwrap(),
            generators::gnp(60, 0.1, 5).unwrap(),
            generators::clique(10).unwrap(),
            generators::grid2d(5, 8).unwrap(),
        ]
        .iter()
        .enumerate()
        {
            for seed in 0..5 {
                let run =
                    run_sleeping_mis(g, MisConfig::alg2(seed), &EngineConfig::default()).unwrap();
                assert!(is_valid_mis(g, &run.in_mis), "graph {i} seed {seed}");
                assert!(run.base_timeouts.is_empty(), "graph {i} seed {seed} timed out");
            }
        }
    }

    #[test]
    fn alg1_total_rounds_within_padded_schedule() {
        let g = generators::gnp(32, 0.2, 1).unwrap();
        let prepared = PreparedMis::new(32, MisConfig::alg1(1)).unwrap();
        let t_root = prepared.t(prepared.depth);
        let run = run_sleeping_mis(&g, MisConfig::alg1(1), &EngineConfig::default()).unwrap();
        assert!(run.metrics.total_rounds <= t_root);
    }

    #[test]
    fn awake_rounds_are_multiples_of_three_plus_base_alg1() {
        // Every Algorithm 1 node is awake exactly 3 rounds per call it
        // participates in (all calls have k >= 1 when K >= 1).
        let g = generators::gnp(40, 0.15, 9).unwrap();
        let run = run_sleeping_mis(&g, MisConfig::alg1(4), &EngineConfig::default()).unwrap();
        for m in &run.metrics.per_node {
            assert_eq!(m.awake_rounds % 3, 0, "awake={}", m.awake_rounds);
            assert!(m.awake_rounds >= 3);
        }
    }

    #[test]
    fn alg1_worst_awake_at_most_3_depth() {
        let n = 64;
        let g = generators::gnp(n, 0.1, 3).unwrap();
        let prepared = PreparedMis::new(n, MisConfig::alg1(3)).unwrap();
        let run = run_sleeping_mis(&g, MisConfig::alg1(3), &EngineConfig::default()).unwrap();
        let max_awake = run.metrics.per_node.iter().map(|m| m.awake_rounds).max().unwrap();
        assert!(max_awake <= 3 * (prepared.depth as u64 + 1));
    }

    #[test]
    fn message_sizes_respect_congest() {
        let n = 50;
        let g = generators::gnp(n, 0.15, 2).unwrap();
        let cfg = EngineConfig {
            congest_bits: Some(sleepy_net::congest_bits_budget(n)),
            ..EngineConfig::default()
        };
        run_sleeping_mis(&g, MisConfig::alg1(1), &cfg).unwrap();
        run_sleeping_mis(&g, MisConfig::alg2(1), &cfg).unwrap();
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::gnp(48, 0.12, 6).unwrap();
        let a = run_sleeping_mis(&g, MisConfig::alg1(11), &EngineConfig::default()).unwrap();
        let b = run_sleeping_mis(&g, MisConfig::alg1(11), &EngineConfig::default()).unwrap();
        assert_eq!(a.in_mis, b.in_mis);
        assert_eq!(a.metrics, b.metrics);
        let c = run_sleeping_mis(&g, MisConfig::alg1(12), &EngineConfig::default()).unwrap();
        // Different seed should (overwhelmingly) give a different trace.
        assert!(a.in_mis != c.in_mis || a.metrics != c.metrics);
    }

    #[test]
    fn depth_override_forces_greedy_root() {
        // Algorithm 2 with depth 0 degenerates to pure distributed greedy.
        let g = generators::cycle(12).unwrap();
        let mut cfg = MisConfig::alg2(5);
        cfg.depth_override = Some(0);
        let run = run_sleeping_mis(&g, cfg, &EngineConfig::default()).unwrap();
        assert!(is_valid_mis(&g, &run.in_mis));
        // All awake rounds bounded by the base window.
        let budget = 1 + 2 * greedy_iterations(12, 4.0) as u64;
        for m in &run.metrics.per_node {
            assert!(m.awake_rounds <= budget);
        }
    }

    #[test]
    fn base_timeout_failure_injection() {
        // A clique forces the greedy to need many iterations (one joiner
        // per iteration eliminates everyone, so actually 1 iteration); use
        // a path with adversarially tiny budget instead: c so small that
        // max_iterations = 1. On a path of ranks in descending order the
        // greedy needs multiple iterations, so some nodes must time out.
        let g = generators::path(64).unwrap();
        let mut timed_out = 0;
        for seed in 0..10 {
            let mut cfg = MisConfig::alg2(seed);
            cfg.greedy_c = 0.01; // 1 iteration only
            cfg.depth_override = Some(0); // pure greedy on the whole path
            let run = run_sleeping_mis(&g, cfg, &EngineConfig::default()).unwrap();
            timed_out += run.base_timeouts.len();
        }
        assert!(timed_out > 0, "expected at least one base-case timeout");
    }

    #[test]
    fn status_message_size() {
        assert!(MisMsg::Hello.bits() <= 3);
        assert!(MisMsg::Status(MisStatus::Unknown).bits() <= 3);
        assert_eq!(MisMsg::GreedyHello { rank: 0, id: 0 }.bits(), 98);
    }
}
