//! Combinatorial executor: simulates SleepingMIS / Fast-SleepingMIS
//! set-wise over the recursion tree, without message passing.
//!
//! Given the same `(graph, config)` as the protocol, the executor produces
//! **bit-identical results** to the engine: the same MIS, per-node awake
//! rounds, decide/finish rounds, message counts, and active-round totals
//! (cross-validated by integration tests). It runs in expected
//! O((n + m)·avg-participations) time — effectively linear — which makes
//! the large-n scaling experiments (up to millions of nodes) feasible, and
//! it records the [`RecursionTree`] used by the lemma and figure
//! experiments.

use crate::error::MisError;
use crate::params::{MisConfig, SendPolicy, Variant};
use crate::protocol::{MisStatus, PreparedMis};
use crate::rank::{derive_all, greedy_key, NodeRandomness};
use crate::tree::{CallRecord, RecursionTree};
use sleepy_graph::{Graph, NodeId};
use sleepy_net::{ComplexitySummary, Round};

/// Results of a combinatorial execution.
#[derive(Debug, Clone)]
pub struct ExecOutcome {
    /// MIS membership per node.
    pub in_mis: Vec<bool>,
    /// Awake rounds per node (the paper's a_v).
    pub awake_rounds: Vec<u64>,
    /// Termination round per node.
    pub finish_rounds: Vec<Round>,
    /// Round at which each node's status was decided.
    pub decide_rounds: Vec<Round>,
    /// Messages sent per node.
    pub messages_sent: Vec<u64>,
    /// Algorithm 2 base-case budget timeouts per node.
    pub base_timeout: Vec<bool>,
    /// Worst-case round complexity (max finish + 1).
    pub total_rounds: Round,
    /// Rounds in which at least one node was awake.
    pub active_rounds: u64,
    /// The recursion tree (non-empty calls only).
    pub tree: RecursionTree,
}

impl ExecOutcome {
    /// The paper's complexity measures (communication counts cover sends
    /// only; receive/drop counters are engine-level concepts).
    pub fn summary(&self) -> ComplexitySummary {
        let n = self.in_mis.len();
        let total_awake: u64 = self.awake_rounds.iter().sum();
        let total_finish: u64 = self.finish_rounds.iter().map(|r| r + 1).sum();
        ComplexitySummary {
            n,
            node_avg_awake: if n == 0 { 0.0 } else { total_awake as f64 / n as f64 },
            worst_awake: self.awake_rounds.iter().copied().max().unwrap_or(0),
            worst_round: self.total_rounds,
            node_avg_round: if n == 0 { 0.0 } else { total_finish as f64 / n as f64 },
            active_rounds: self.active_rounds,
            total_messages: self.messages_sent.iter().sum(),
            dropped_messages: 0,
            lost_messages: 0,
            total_bits: 0,
        }
    }

    /// The MIS as a list of node ids.
    pub fn mis_nodes(&self) -> Vec<NodeId> {
        self.in_mis.iter().enumerate().filter_map(|(v, &b)| b.then_some(v as NodeId)).collect()
    }
}

struct Exec<'g> {
    g: &'g Graph,
    prepared: PreparedMis,
    coins: Vec<NodeRandomness>,
    status: Vec<MisStatus>,
    awake: Vec<u64>,
    last_act: Vec<Round>,
    decide: Vec<Round>,
    msgs: Vec<u64>,
    timeout: Vec<bool>,
    /// Membership stamps: `member[v] == stamp` iff v is in the current
    /// call's node set.
    member: Vec<u32>,
    stamp: u32,
    active_rounds: u64,
    calls: Vec<CallRecord>,
}

/// Runs the combinatorial executor.
///
/// # Errors
///
/// The same configuration errors as the protocol
/// ([`MisError::DepthTooLarge`], [`MisError::ScheduleOverflow`],
/// [`MisError::InvalidConfig`]).
///
/// # Example
///
/// ```
/// use sleepy_graph::generators;
/// use sleepy_mis::{execute_sleeping_mis, MisConfig};
///
/// let g = generators::gnp(500, 0.02, 3).unwrap();
/// let out = execute_sleeping_mis(&g, MisConfig::alg1(7))?;
/// let s = out.summary();
/// assert!(s.node_avg_awake < 12.0); // O(1) on average
/// # Ok::<(), sleepy_mis::MisError>(())
/// ```
pub fn execute_sleeping_mis(graph: &Graph, config: MisConfig) -> Result<ExecOutcome, MisError> {
    let n = graph.n();
    let prepared = PreparedMis::new(n, config)?;
    let depth = prepared.depth;
    let mut exec = Exec {
        g: graph,
        coins: derive_all(config.seed, n),
        status: vec![MisStatus::Unknown; n],
        awake: vec![0; n],
        last_act: vec![0; n],
        decide: vec![0; n],
        msgs: vec![0; n],
        timeout: vec![false; n],
        member: vec![0; n],
        stamp: 0,
        active_rounds: 0,
        calls: Vec::new(),
        prepared,
    };

    let all: Vec<NodeId> = (0..n as NodeId).collect();
    if n > 0 {
        if depth == 0 {
            match config.variant {
                Variant::SleepingMis => {
                    // Root base case: everyone joins at round 0 after a
                    // single handshake round with the engine.
                    for &v in &all {
                        exec.status[v as usize] = MisStatus::In;
                        exec.awake[v as usize] = 1;
                    }
                    exec.active_rounds = 1;
                    exec.calls.push(CallRecord {
                        k: 0,
                        depth: 0,
                        path: 0,
                        start: 0,
                        end: 0,
                        participants: n,
                        isolated: 0,
                        left_participants: 0,
                        eliminated: 0,
                        second_iso_joins: 0,
                        right_participants: 0,
                        is_base: true,
                        base_timeouts: 0,
                        parent: None,
                    });
                }
                Variant::FastSleepingMis => exec.greedy_base(&all, 0, 0, 0, None),
            }
        } else {
            exec.run_call(&all, depth, 0, 0, 0, None)?;
        }
    }

    let in_mis: Vec<bool> = exec.status.iter().map(|&s| s == MisStatus::In).collect();
    debug_assert!(
        n == 0 || exec.status.iter().all(|&s| s != MisStatus::Unknown),
        "all nodes must be decided"
    );
    let total_rounds =
        if n == 0 { 0 } else { exec.last_act.iter().copied().max().unwrap_or(0) + 1 };
    Ok(ExecOutcome {
        in_mis,
        awake_rounds: exec.awake,
        finish_rounds: exec.last_act,
        decide_rounds: exec.decide,
        messages_sent: exec.msgs,
        base_timeout: exec.timeout,
        total_rounds,
        active_rounds: exec.active_rounds,
        tree: RecursionTree { depth, calls: exec.calls },
    })
}

impl<'g> Exec<'g> {
    fn stamp_members(&mut self, u: &[NodeId]) -> u32 {
        self.stamp += 1;
        for &v in u {
            self.member[v as usize] = self.stamp;
        }
        self.stamp
    }

    fn is_member(&self, v: NodeId, stamp: u32) -> bool {
        self.member[v as usize] == stamp
    }

    /// A call of `SleepingMISRecursive(k)` for k ≥ 1 by node set `u`.
    fn run_call(
        &mut self,
        u: &[NodeId],
        k: u32,
        start: Round,
        depth: u32,
        path: u64,
        parent: Option<usize>,
    ) -> Result<(), MisError> {
        if u.is_empty() {
            return Ok(());
        }
        debug_assert!(k >= 1);
        let ph = self.prepared.schedule.phases(k, start)?;
        let record_idx = self.calls.len();
        self.calls.push(CallRecord {
            k,
            depth,
            path,
            start,
            end: ph.end,
            participants: u.len(),
            isolated: 0,
            left_participants: 0,
            eliminated: 0,
            second_iso_joins: 0,
            right_participants: 0,
            is_base: false,
            base_timeouts: 0,
            parent,
        });
        // Three non-recursive rounds per participant: first-iso, sync,
        // second-iso. The first-iso `Hello` always broadcasts on every
        // port; the sync/second-iso `Status` messages go to every port
        // under `SendPolicy::Broadcast` and only to subgraph neighbors
        // under `SendPolicy::SubgraphOnly`.
        self.active_rounds += 3;
        let subgraph_only = self.prepared.config.send_policy == SendPolicy::SubgraphOnly;
        for &v in u {
            self.awake[v as usize] += 3;
        }

        // --- First isolated-node detection ---
        let stamp = self.stamp_members(u);
        let mut isolated = 0usize;
        let mut left: Vec<NodeId> = Vec::new();
        for &v in u {
            let u_degree =
                self.g.neighbors(v).iter().filter(|&&w| self.is_member(w, stamp)).count();
            self.msgs[v as usize] += self.g.degree(v) as u64
                + 2 * if subgraph_only { u_degree as u64 } else { self.g.degree(v) as u64 };
            if u_degree == 0 {
                self.status[v as usize] = MisStatus::In;
                self.decide[v as usize] = ph.first_iso;
                isolated += 1;
            } else if self.coins[v as usize].x(k) {
                left.push(v);
            }
        }
        self.calls[record_idx].isolated = isolated;
        self.calls[record_idx].left_participants = left.len();

        // --- Left recursion ---
        self.enter_child(&left, k - 1, ph.left_start, depth, path, true, record_idx)?;

        // --- Synchronization / elimination ---
        let stamp = self.stamp_members(u);
        let mut eliminated = 0usize;
        for &v in u {
            if self.status[v as usize] != MisStatus::Unknown {
                continue;
            }
            let dominated = self
                .g
                .neighbors(v)
                .iter()
                .any(|&w| self.is_member(w, stamp) && self.status[w as usize] == MisStatus::In);
            if dominated {
                self.status[v as usize] = MisStatus::Out;
                self.decide[v as usize] = ph.sync;
                eliminated += 1;
            }
        }
        self.calls[record_idx].eliminated = eliminated;

        // --- Second isolated-node detection ---
        let mut joins2 = 0usize;
        let mut right: Vec<NodeId> = Vec::new();
        for &v in u {
            if self.status[v as usize] == MisStatus::Unknown {
                let all_out = self.g.neighbors(v).iter().all(|&w| {
                    !self.is_member(w, stamp) || self.status[w as usize] == MisStatus::Out
                });
                if all_out {
                    self.status[v as usize] = MisStatus::In;
                    self.decide[v as usize] = ph.second_iso;
                    joins2 += 1;
                } else {
                    right.push(v);
                }
            }
        }
        // Every participant acts at the second-iso round; later activity in
        // the right subtree (or at ancestors) overwrites this.
        for &v in u {
            self.last_act[v as usize] = ph.second_iso;
        }
        self.calls[record_idx].second_iso_joins = joins2;
        self.calls[record_idx].right_participants = right.len();

        // --- Right recursion ---
        self.enter_child(&right, k - 1, ph.right_start, depth, path, false, record_idx)?;
        Ok(())
    }

    /// Dispatches a child call: recursion for k ≥ 1, the variant-specific
    /// base case for k = 0.
    #[allow(clippy::too_many_arguments)]
    fn enter_child(
        &mut self,
        u: &[NodeId],
        k: u32,
        start: Round,
        parent_depth: u32,
        parent_path: u64,
        is_left: bool,
        parent_idx: usize,
    ) -> Result<(), MisError> {
        if u.is_empty() {
            return Ok(());
        }
        let depth = parent_depth + 1;
        let path = if is_left { parent_path } else { parent_path | (1 << parent_depth) };
        if k == 0 {
            match self.prepared.config.variant {
                Variant::SleepingMis => {
                    // Zero-duration base case: all participants join; the
                    // decision happens inline during the parent's
                    // first-iso (left child) or second-iso (right child)
                    // round, i.e. at round start − 1.
                    for &v in u {
                        debug_assert_eq!(self.status[v as usize], MisStatus::Unknown);
                        self.status[v as usize] = MisStatus::In;
                        self.decide[v as usize] = start - 1;
                        self.last_act[v as usize] = start - 1;
                    }
                    self.calls.push(CallRecord {
                        k: 0,
                        depth,
                        path,
                        start,
                        end: start.saturating_sub(1),
                        participants: u.len(),
                        isolated: 0,
                        left_participants: 0,
                        eliminated: 0,
                        second_iso_joins: 0,
                        right_participants: 0,
                        is_base: true,
                        base_timeouts: 0,
                        parent: Some(parent_idx),
                    });
                }
                Variant::FastSleepingMis => {
                    self.greedy_base(u, start, depth, path, Some(parent_idx));
                }
            }
            Ok(())
        } else {
            self.run_call(u, k, start, depth, path, Some(parent_idx))
        }
    }

    /// Algorithm 2's base case: the parallel randomized greedy MIS inside
    /// the fixed window starting at `start`.
    fn greedy_base(
        &mut self,
        u: &[NodeId],
        start: Round,
        depth: u32,
        path: u64,
        parent: Option<usize>,
    ) {
        debug_assert!(!u.is_empty());
        let stamp = self.stamp_members(u);
        let max_iter = self.prepared.max_iterations;
        let subgraph_only = self.prepared.config.send_policy == SendPolicy::SubgraphOnly;
        // Rank-exchange broadcast (always on every port: neighborhood
        // discovery).
        for &v in u {
            self.msgs[v as usize] += self.g.degree(v) as u64;
        }
        let mut undecided: Vec<NodeId> = u.to_vec();
        let mut window_last_act: Round = start; // init round is always active
        let mut timeouts = 0usize;
        for j in 0..max_iter as u64 {
            if undecided.is_empty() {
                break;
            }
            let join_round = start + 1 + 2 * j;
            let removal_round = start + 2 + 2 * j;
            // Mark the current undecided set (subset of the base stamp).
            let live_stamp = self.stamp_members(&undecided);
            let mut joins: Vec<NodeId> = Vec::new();
            for &v in &undecided {
                let key = greedy_key(self.coins[v as usize].greedy_rank, v);
                let wins = self.g.neighbors(v).iter().all(|&w| {
                    !self.is_member(w, live_stamp)
                        || key > greedy_key(self.coins[w as usize].greedy_rank, w)
                });
                if wins {
                    joins.push(v);
                }
            }
            debug_assert!(!joins.is_empty(), "some undecided node is always a local max");
            // Under SubgraphOnly a joiner addresses its alive ports, which
            // at the join round are exactly its undecided base neighbors
            // (including co-joiners). Count before re-stamping the joins.
            for &v in &joins {
                let fanout = if subgraph_only {
                    self.g
                        .neighbors(v)
                        .iter()
                        .filter(|&&w| self.is_member(w, live_stamp) && w != v)
                        .count() as u64
                } else {
                    self.g.degree(v) as u64
                };
                self.status[v as usize] = MisStatus::In;
                self.decide[v as usize] = join_round;
                self.last_act[v as usize] = join_round;
                self.awake[v as usize] += 2 * j + 2;
                self.msgs[v as usize] += fanout; // GreedyJoin
                window_last_act = window_last_act.max(join_round);
            }
            let join_stamp = self.stamp_members(&joins);
            let mut still: Vec<NodeId> = Vec::new();
            for &v in &undecided {
                if self.status[v as usize] != MisStatus::Unknown {
                    continue; // joined this iteration
                }
                let dominated = self.g.neighbors(v).iter().any(|&w| self.is_member(w, join_stamp));
                if dominated {
                    // Under SubgraphOnly an eliminated node addresses its
                    // alive ports at the removal round: undecided base
                    // neighbors that did not just join (joiners were
                    // pruned at the join round). Nodes co-eliminated this
                    // iteration are still alive and still marked with
                    // `live_stamp`.
                    let fanout = if subgraph_only {
                        self.g
                            .neighbors(v)
                            .iter()
                            .filter(|&&w| self.is_member(w, live_stamp))
                            .count() as u64
                    } else {
                        self.g.degree(v) as u64
                    };
                    self.status[v as usize] = MisStatus::Out;
                    self.decide[v as usize] = join_round;
                    self.last_act[v as usize] = removal_round;
                    self.awake[v as usize] += 2 * j + 3;
                    self.msgs[v as usize] += fanout; // GreedyRemoved
                    window_last_act = window_last_act.max(removal_round);
                } else {
                    still.push(v);
                }
            }
            undecided = still;
        }
        // Budget exhausted: Monte-Carlo timeout.
        if !undecided.is_empty() {
            let final_round = start + 2 * max_iter as u64;
            for &v in &undecided {
                self.status[v as usize] = MisStatus::Out;
                self.timeout[v as usize] = true;
                self.decide[v as usize] = final_round;
                self.last_act[v as usize] = final_round;
                self.awake[v as usize] += 1 + 2 * max_iter as u64;
                timeouts += 1;
            }
            window_last_act = window_last_act.max(final_round);
        }
        self.active_rounds += window_last_act - start + 1;
        let _ = stamp;
        self.calls.push(CallRecord {
            k: 0,
            depth,
            path,
            start,
            end: start + 2 * max_iter as u64, // fixed window end
            participants: u.len(),
            isolated: 0,
            left_participants: 0,
            eliminated: 0,
            second_iso_joins: 0,
            right_participants: 0,
            is_base: true,
            base_timeouts: timeouts,
            parent,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::generators;

    fn is_valid_mis(g: &Graph, in_mis: &[bool]) -> bool {
        for (a, b) in g.edges() {
            if in_mis[a as usize] && in_mis[b as usize] {
                return false;
            }
        }
        g.node_ids()
            .all(|v| in_mis[v as usize] || g.neighbors(v).iter().any(|&u| in_mis[u as usize]))
    }

    #[test]
    fn valid_mis_across_families_and_variants() {
        let graphs = [
            generators::cycle(30).unwrap(),
            generators::clique(12).unwrap(),
            generators::star(20).unwrap(),
            generators::gnp(120, 0.05, 4).unwrap(),
            generators::random_tree(80, 1).unwrap(),
            generators::grid2d(8, 9).unwrap(),
        ];
        for (i, g) in graphs.iter().enumerate() {
            for seed in 0..4 {
                for cfg in [MisConfig::alg1(seed), MisConfig::alg2(seed)] {
                    let out = execute_sleeping_mis(g, cfg).unwrap();
                    assert!(is_valid_mis(g, &out.in_mis), "graph {i} seed {seed} {cfg:?}");
                }
            }
        }
    }

    #[test]
    fn empty_and_single() {
        let out = execute_sleeping_mis(&generators::empty(0).unwrap(), MisConfig::alg1(0)).unwrap();
        assert_eq!(out.total_rounds, 0);
        let out = execute_sleeping_mis(&generators::empty(1).unwrap(), MisConfig::alg1(0)).unwrap();
        assert_eq!(out.in_mis, vec![true]);
        assert_eq!(out.awake_rounds, vec![1]);
        let out = execute_sleeping_mis(&generators::empty(1).unwrap(), MisConfig::alg2(0)).unwrap();
        assert_eq!(out.awake_rounds, vec![2]);
    }

    #[test]
    fn node_avg_awake_is_small_at_scale_alg1() {
        let g = generators::gnp(5000, 8.0 / 5000.0, 5).unwrap();
        let out = execute_sleeping_mis(&g, MisConfig::alg1(5)).unwrap();
        let s = out.summary();
        assert!(is_valid_mis(&g, &out.in_mis));
        // Expected node-averaged awake complexity is <= 3*4 = 12 rounds
        // (Lemma 8's geometric series); allow generous slack.
        assert!(s.node_avg_awake < 14.0, "avg awake = {}", s.node_avg_awake);
        // Worst-case awake <= 3*(K+1).
        let k = crate::params::depth_alg1(5000) as u64;
        assert!(s.worst_awake <= 3 * (k + 1));
    }

    #[test]
    fn z_profile_decays_geometrically() {
        let g = generators::gnp(4000, 6.0 / 4000.0, 9).unwrap();
        let out = execute_sleeping_mis(&g, MisConfig::alg1(9)).unwrap();
        let z = out.tree.z_profile();
        assert_eq!(z[0], 4000);
        // By depth 8 the expected occupancy is (3/4)^8 ~ 10%; allow 3x.
        assert!((z[8] as f64) < 0.3 * 4000.0, "Z at depth 8 = {} did not decay", z[8]);
    }

    #[test]
    fn pruning_ratios_bounded_in_aggregate() {
        let g = generators::gnp(2000, 10.0 / 2000.0, 13).unwrap();
        let out = execute_sleeping_mis(&g, MisConfig::alg1(13)).unwrap();
        let ratios = out.tree.recursion_ratios();
        // Weighted means over big calls only (small calls are noisy).
        let big: Vec<_> =
            out.tree.calls.iter().filter(|c| !c.is_base && c.participants >= 100).collect();
        assert!(!big.is_empty());
        let l: f64 = big.iter().map(|c| c.left_participants as f64).sum::<f64>()
            / big.iter().map(|c| c.participants as f64).sum::<f64>();
        let r: f64 = big.iter().map(|c| c.right_participants as f64).sum::<f64>()
            / big.iter().map(|c| c.participants as f64).sum::<f64>();
        assert!(l < 0.58, "aggregate |L|/|U| = {l}");
        assert!(r < 0.30, "aggregate |R|/|U| = {r}");
        let _ = ratios;
    }

    #[test]
    fn alg2_base_load_near_n_over_log_n() {
        let n = 1 << 14;
        let g = generators::gnp(n, 8.0 / n as f64, 3).unwrap();
        let out = execute_sleeping_mis(&g, MisConfig::alg2(3)).unwrap();
        let (_, base_total) = out.tree.base_case_load();
        // Lemma 12: expected base-case population is n / log2 n. Allow 4x.
        let expected = n as f64 / (n as f64).log2();
        assert!(
            (base_total as f64) < 4.0 * expected,
            "base load {base_total} vs expected {expected}"
        );
    }

    #[test]
    fn deterministic() {
        let g = generators::gnp(300, 0.03, 2).unwrap();
        let a = execute_sleeping_mis(&g, MisConfig::alg1(8)).unwrap();
        let b = execute_sleeping_mis(&g, MisConfig::alg1(8)).unwrap();
        assert_eq!(a.in_mis, b.in_mis);
        assert_eq!(a.awake_rounds, b.awake_rounds);
        assert_eq!(a.finish_rounds, b.finish_rounds);
    }

    #[test]
    fn total_rounds_bounded_by_schedule() {
        let n = 256;
        let g = generators::gnp(n, 0.05, 6).unwrap();
        let prepared = PreparedMis::new(n, MisConfig::alg1(6)).unwrap();
        let out = execute_sleeping_mis(&g, MisConfig::alg1(6)).unwrap();
        assert!(out.total_rounds <= prepared.durations[prepared.depth as usize]);
    }

    #[test]
    fn alg2_total_rounds_polylog() {
        let n = 1 << 12;
        let g = generators::gnp(n, 6.0 / n as f64, 4).unwrap();
        let out = execute_sleeping_mis(&g, MisConfig::alg2(4)).unwrap();
        let prepared = PreparedMis::new(n, MisConfig::alg2(4)).unwrap();
        // Fits in the padded schedule, which is O(log^{l+1} n).
        assert!(out.total_rounds <= prepared.durations[prepared.depth as usize]);
        // And the padded schedule is drastically below Algorithm 1's.
        let alg1 = PreparedMis::new(n, MisConfig::alg1(4)).unwrap();
        let t1 = alg1.durations[alg1.depth as usize];
        assert!(prepared.durations[prepared.depth as usize] * 1000 < t1);
    }
}
