//! Recursion-tree data: per-call statistics from the executor (used by the
//! lemma experiments and Figure 2) and pure-schedule trees (used to
//! regenerate Figure 1's timing labels).

use crate::error::MisError;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use sleepy_net::Round;
use std::fmt::Write as _;

/// Statistics of one (non-empty) call of `SleepingMISRecursive` recorded by
/// the [executor](crate::execute_sleeping_mis).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallRecord {
    /// The call's level parameter k (counts down to 0 at the base).
    pub k: u32,
    /// Depth below the root (root = 0, so `depth = K − k`).
    pub depth: u32,
    /// Left/right path from the root: bit i (from the most significant of
    /// the `depth` used bits) is 1 if the i-th descent was a right
    /// recursion.
    pub path: u64,
    /// First round of the call window.
    pub start: Round,
    /// Last round of the call window (`start − 1` for Algorithm 1's
    /// zero-duration base cases).
    pub end: Round,
    /// |U|: number of participating nodes.
    pub participants: usize,
    /// Nodes isolated in `G[U]` (joined at first isolated-node detection).
    pub isolated: usize,
    /// |L|: participants of the left recursive call.
    pub left_participants: usize,
    /// Nodes eliminated at the synchronization step.
    pub eliminated: usize,
    /// Nodes that joined at the second isolated-node detection.
    pub second_iso_joins: usize,
    /// |R|: participants of the right recursive call.
    pub right_participants: usize,
    /// Whether this is a base-case call (k = 0).
    pub is_base: bool,
    /// Algorithm 2 base cases: participants that hit the round budget.
    pub base_timeouts: usize,
    /// Index of the parent call in [`RecursionTree::calls`].
    pub parent: Option<usize>,
}

/// The tree of non-empty calls from one executor run (preorder).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecursionTree {
    /// The recursion depth K of the run.
    pub depth: u32,
    /// Non-empty calls in depth-first (execution) order.
    pub calls: Vec<CallRecord>,
}

impl RecursionTree {
    /// Z-profile (Lemma 7): total participants per tree depth
    /// 0..=K. `z[i]` is the paper's Z_{K−i}; Lemma 7 bounds
    /// `E[z[i]] ≤ (3/4)^i·n`.
    pub fn z_profile(&self) -> Vec<u64> {
        let mut z = vec![0u64; self.depth as usize + 1];
        for c in &self.calls {
            z[c.depth as usize] += c.participants as u64;
        }
        z
    }

    /// Per-call (|L|/|U|, |R|/|U|) ratios for non-base calls — the
    /// empirical counterpart of Lemma 2 (≤ 1/2 in expectation) and the
    /// Pruning Lemma 3 (≤ 1/4 in expectation).
    pub fn recursion_ratios(&self) -> Vec<(f64, f64)> {
        self.calls
            .iter()
            .filter(|c| !c.is_base && c.participants > 0)
            .map(|c| {
                let u = c.participants as f64;
                (c.left_participants as f64 / u, c.right_participants as f64 / u)
            })
            .collect()
    }

    /// Number of base-case calls and their total participants.
    pub fn base_case_load(&self) -> (usize, u64) {
        let mut count = 0;
        let mut total = 0u64;
        for c in &self.calls {
            if c.is_base && c.participants > 0 {
                count += 1;
                total += c.participants as u64;
            }
        }
        (count, total)
    }

    /// Renders the tree as indented ASCII, one call per line, up to
    /// `max_depth` (inclusive).
    pub fn render_ascii(&self, max_depth: u32) -> String {
        let mut out = String::new();
        for c in &self.calls {
            if c.depth > max_depth {
                continue;
            }
            let indent = "  ".repeat(c.depth as usize);
            let side = if c.depth == 0 {
                "root"
            } else if c.path & 1 == 0 {
                // path LSB is the most recent descent
                "L"
            } else {
                "R"
            };
            writeln!(
                out,
                "{indent}{side} k={} |U|={} rounds [{}, {}] iso={} L={} elim={} join2={} R={}",
                c.k,
                c.participants,
                c.start,
                c.end,
                c.isolated,
                c.left_participants,
                c.eliminated,
                c.second_iso_joins,
                c.right_participants,
            )
            .expect("writing to String cannot fail");
        }
        out
    }
}

/// A vertex of the *full* schedule tree (independent of execution): the
/// call at this tree position, its level, and its first-reached/finish
/// rounds — the two numbers labeling each vertex of the paper's Figure 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduleTreeNode {
    /// Level parameter k.
    pub k: u32,
    /// Depth below the root.
    pub depth: u32,
    /// Path from the root as a string of `L`/`R` (empty for the root).
    pub path: String,
    /// The round the call starts ("the time when the vertex is reached for
    /// the first time", Figure 1).
    pub first_reached: Round,
    /// The round the call finishes ("the time when computation finishes at
    /// that vertex"). Equal to `first_reached` for zero-duration leaves.
    pub finish: Round,
}

/// Builds the full binary schedule tree of the given depth in preorder,
/// with the root starting at round `origin`.
///
/// With `Schedule::figure1()` and `origin = 1`, `depth = 3`, this
/// reproduces the labels of the paper's Figure 1 exactly.
///
/// # Errors
///
/// [`MisError::ScheduleOverflow`] if T(depth) exceeds `u64`.
pub fn schedule_tree(
    depth: u32,
    schedule: &Schedule,
    origin: Round,
) -> Result<Vec<ScheduleTreeNode>, MisError> {
    let mut nodes = Vec::with_capacity((1usize << (depth + 1)) - 1);
    build(depth, schedule, origin, 0, String::new(), &mut nodes)?;
    Ok(nodes)
}

fn build(
    k: u32,
    schedule: &Schedule,
    start: Round,
    depth: u32,
    path: String,
    out: &mut Vec<ScheduleTreeNode>,
) -> Result<(), MisError> {
    let dur = schedule.duration(k)?;
    let finish = if dur == 0 { start } else { start + dur - 1 };
    out.push(ScheduleTreeNode { k, depth, path: path.clone(), first_reached: start, finish });
    if k > 0 {
        let ph = schedule.phases(k, start)?;
        build(k - 1, schedule, ph.left_start, depth + 1, format!("{path}L"), out)?;
        build(k - 1, schedule, ph.right_start, depth + 1, format!("{path}R"), out)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_labels_exact() {
        let nodes = schedule_tree(3, &Schedule::figure1(), 1).unwrap();
        assert_eq!(nodes.len(), 15);
        let expected: &[(&str, u64, u64)] = &[
            ("", 1, 29),
            ("L", 2, 14),
            ("LL", 3, 7),
            ("LLL", 4, 4),
            ("LLR", 6, 6),
            ("LR", 9, 13),
            ("LRL", 10, 10),
            ("LRR", 12, 12),
            ("R", 16, 28),
            ("RL", 17, 21),
            ("RLL", 18, 18),
            ("RLR", 20, 20),
            ("RR", 23, 27),
            ("RRL", 24, 24),
            ("RRR", 26, 26),
        ];
        for (path, first, finish) in expected {
            let node = nodes
                .iter()
                .find(|n| n.path == *path)
                .unwrap_or_else(|| panic!("missing node {path}"));
            assert_eq!((node.first_reached, node.finish), (*first, *finish), "path {path}");
        }
    }

    #[test]
    fn pseudocode_tree_windows_nest() {
        let s = Schedule::alg1();
        let nodes = schedule_tree(4, &s, 0).unwrap();
        // Non-degenerate children windows lie strictly inside the parent
        // window. (With T(0) = 0, k = 0 leaves are zero-duration virtual
        // calls whose nominal start can sit just past the parent's end.)
        for n in &nodes {
            for c in nodes.iter().filter(|c| {
                c.path.len() == n.path.len() + 1 && c.path.starts_with(&n.path) && c.k > 0
            }) {
                assert!(c.first_reached > n.first_reached, "{} in {}", c.path, n.path);
                assert!(c.finish <= n.finish, "{} in {}", c.path, n.path);
            }
        }
        // Sibling windows are disjoint and ordered left before right.
        for n in nodes.iter().filter(|n| n.k >= 2) {
            let l = nodes.iter().find(|c| c.path == format!("{}L", n.path)).unwrap();
            let r = nodes.iter().find(|c| c.path == format!("{}R", n.path)).unwrap();
            assert!(l.finish < r.first_reached, "{} vs {}", l.path, r.path);
        }
    }

    #[test]
    fn z_profile_sums_participants() {
        let tree = RecursionTree {
            depth: 2,
            calls: vec![
                CallRecord {
                    k: 2,
                    depth: 0,
                    path: 0,
                    start: 0,
                    end: 8,
                    participants: 10,
                    isolated: 1,
                    left_participants: 5,
                    eliminated: 2,
                    second_iso_joins: 1,
                    right_participants: 1,
                    is_base: false,
                    base_timeouts: 0,
                    parent: None,
                },
                CallRecord {
                    k: 1,
                    depth: 1,
                    path: 0,
                    start: 1,
                    end: 3,
                    participants: 5,
                    isolated: 0,
                    left_participants: 3,
                    eliminated: 1,
                    second_iso_joins: 0,
                    right_participants: 1,
                    is_base: false,
                    base_timeouts: 0,
                    parent: Some(0),
                },
            ],
        };
        assert_eq!(tree.z_profile(), vec![10, 5, 0]);
        let ratios = tree.recursion_ratios();
        assert_eq!(ratios.len(), 2);
        assert!((ratios[0].0 - 0.5).abs() < 1e-12);
        assert!((ratios[0].1 - 0.1).abs() < 1e-12);
        assert!(!tree.render_ascii(2).is_empty());
        assert_eq!(tree.base_case_load(), (0, 0));
    }

    #[test]
    fn schedule_tree_size() {
        for d in 0..6 {
            let nodes = schedule_tree(d, &Schedule::alg1(), 0).unwrap();
            assert_eq!(nodes.len(), (1 << (d + 1)) - 1);
        }
    }
}
