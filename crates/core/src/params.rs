//! Algorithm parameters: recursion depths, greedy base-case budget, and the
//! top-level configuration type.

use crate::error::MisError;
use serde::{Deserialize, Serialize};

/// ℓ = 1/log₂(4/3) ≈ 2.4094 (Equation 2 of the paper). Algorithm 2
/// truncates the recursion at depth ℓ·log₂log₂ n, so that the expected
/// number of nodes reaching the base cases is (3/4)^{ℓ·log₂log₂ n}·n
/// = n/log₂ n, and its worst-case round complexity is
/// O(log^{ℓ+1} n) = O(log^3.41 n).
pub const ELL: f64 = 2.409_420_839_653_209;

/// Which of the paper's two algorithms to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Algorithm 1 (`SleepingMIS`): recursion depth ⌈3·log₂ n⌉, trivial
    /// base case, worst-case round complexity O(n³).
    SleepingMis,
    /// Algorithm 2 (`Fast-SleepingMIS`): recursion depth ⌈ℓ·log₂log₂ n⌉,
    /// randomized-greedy base case run for a fixed c·log₂ n-round window,
    /// worst-case round complexity O(log^3.41 n).
    FastSleepingMis,
}

/// Where status/announcement messages are addressed (a message-volume
/// design choice the paper leaves implicit).
///
/// The pseudocode says "send value of v.inMIS to **every neighbor**"
/// (lines 22/26) — a broadcast on all ports, where messages to ports
/// outside the current subgraph land on sleeping nodes and are dropped.
/// Since a node learns its subgraph neighborhood at the first
/// isolated-node detection, it can equivalently address only those ports.
/// Both policies produce the *identical* execution (same MIS, same awake
/// rounds, same round counts); only message counts differ. Neighborhood-
/// discovery rounds (first-iso `Hello`, greedy rank exchange) always
/// broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SendPolicy {
    /// Faithful to the pseudocode: broadcast on every port.
    Broadcast,
    /// Optimized: address only current-subgraph (or still-alive) ports.
    SubgraphOnly,
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Variant::SleepingMis => f.write_str("SleepingMIS"),
            Variant::FastSleepingMis => f.write_str("Fast-SleepingMIS"),
        }
    }
}

/// ⌈3·log₂ n⌉ — Algorithm 1's recursion depth K (0 for n ≤ 1).
pub fn depth_alg1(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        (3.0 * (n as f64).log2()).ceil() as u32
    }
}

/// ⌈ℓ·log₂log₂ n⌉ — Algorithm 2's recursion depth (0 when log₂log₂ n ≤ 0,
/// i.e. n ≤ 2).
pub fn depth_alg2(n: usize) -> u32 {
    if n <= 2 {
        return 0;
    }
    let loglog = (n as f64).log2().log2();
    if loglog <= 0.0 {
        0
    } else {
        (ELL * loglog).ceil() as u32
    }
}

/// Maximum number of greedy iterations in an Algorithm 2 base case:
/// ⌈c·log₂ n⌉ (at least 1). Each iteration is two rounds (join
/// announcements, then removal announcements), preceded by one
/// rank-exchange round, so the base-case window is
/// [`greedy_budget_rounds`] = 1 + 2·iterations — the paper's "run the
/// greedy algorithm for exactly c·log n rounds".
pub fn greedy_iterations(n: usize, c: f64) -> u32 {
    let log = (n.max(2) as f64).log2();
    ((c * log).ceil() as u32).max(1)
}

/// The fixed duration of an Algorithm 2 base-case window in rounds.
pub fn greedy_budget_rounds(n: usize, c: f64) -> u64 {
    1 + 2 * greedy_iterations(n, c) as u64
}

/// Configuration for a SleepingMIS run.
///
/// # Example
///
/// ```
/// use sleepy_mis::{MisConfig, Variant};
/// let cfg = MisConfig::alg2(42);
/// assert_eq!(cfg.variant, Variant::FastSleepingMis);
/// assert_eq!(cfg.depth_for(1 << 16), 10); // ⌈2.409·log2 log2 2^16⌉ = ⌈9.64⌉
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MisConfig {
    /// Which algorithm to run.
    pub variant: Variant,
    /// Master random seed; all per-node coins derive from it.
    pub seed: u64,
    /// Recursion depth override (for experiments); `None` uses the paper's
    /// depth for the variant.
    pub depth_override: Option<u32>,
    /// The constant c in Algorithm 2's c·log n base-case budget. The paper
    /// requires a "large (but fixed) constant" so the greedy finishes whp;
    /// Fischer–Noever's bound makes c = 4 comfortable in practice.
    pub greedy_c: f64,
    /// Message addressing policy (default: the pseudocode's broadcast).
    pub send_policy: SendPolicy,
}

impl MisConfig {
    /// Algorithm 1 with the given seed.
    pub fn alg1(seed: u64) -> Self {
        MisConfig {
            variant: Variant::SleepingMis,
            seed,
            depth_override: None,
            greedy_c: 4.0,
            send_policy: SendPolicy::Broadcast,
        }
    }

    /// Algorithm 2 with the given seed.
    pub fn alg2(seed: u64) -> Self {
        MisConfig {
            variant: Variant::FastSleepingMis,
            seed,
            depth_override: None,
            greedy_c: 4.0,
            send_policy: SendPolicy::Broadcast,
        }
    }

    /// The recursion depth used for an n-node network.
    pub fn depth_for(&self, n: usize) -> u32 {
        self.depth_override.unwrap_or(match self.variant {
            Variant::SleepingMis => depth_alg1(n),
            Variant::FastSleepingMis => depth_alg2(n),
        })
    }

    /// Validates the configuration for an n-node network.
    ///
    /// # Errors
    ///
    /// * [`MisError::DepthTooLarge`] if the depth exceeds the 128 random
    ///   bits per node.
    /// * [`MisError::InvalidConfig`] if `greedy_c` is not positive/finite.
    pub fn validate(&self, n: usize) -> Result<(), MisError> {
        let depth = self.depth_for(n);
        if depth > 128 {
            return Err(MisError::DepthTooLarge { depth });
        }
        if !self.greedy_c.is_finite() || self.greedy_c <= 0.0 {
            return Err(MisError::InvalidConfig {
                reason: format!("greedy_c = {} must be positive and finite", self.greedy_c),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_alg1_values() {
        assert_eq!(depth_alg1(0), 0);
        assert_eq!(depth_alg1(1), 0);
        assert_eq!(depth_alg1(2), 3);
        assert_eq!(depth_alg1(8), 9);
        assert_eq!(depth_alg1(1000), 30); // 3*log2(1000)=29.9
        assert_eq!(depth_alg1(1024), 30);
    }

    #[test]
    fn depth_alg2_values() {
        assert_eq!(depth_alg2(1), 0);
        assert_eq!(depth_alg2(2), 0);
        // n = 2^16: log2 log2 = 4, ELL*4 = 9.638 -> 10
        assert_eq!(depth_alg2(1 << 16), 10);
        // n = 16: log2 log2 = 2 -> ceil(4.82) = 5
        assert_eq!(depth_alg2(16), 5);
        // Monotone over a sweep.
        let mut last = 0;
        for e in 2..24 {
            let d = depth_alg2(1usize << e);
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn alg2_depth_far_below_alg1() {
        for e in [8, 12, 16, 20] {
            let n = 1usize << e;
            assert!(depth_alg2(n) < depth_alg1(n) / 2);
        }
    }

    #[test]
    fn greedy_budget() {
        assert_eq!(greedy_iterations(1024, 4.0), 40);
        assert_eq!(greedy_budget_rounds(1024, 4.0), 81);
        assert_eq!(greedy_iterations(1, 4.0), 4); // clamped to n=2
        assert!(greedy_iterations(2, 0.001) >= 1);
    }

    #[test]
    fn config_validation() {
        assert!(MisConfig::alg1(0).validate(1 << 20).is_ok());
        let mut cfg = MisConfig::alg1(0);
        cfg.depth_override = Some(200);
        assert!(matches!(cfg.validate(10), Err(MisError::DepthTooLarge { depth: 200 })));
        let mut cfg = MisConfig::alg2(0);
        cfg.greedy_c = -1.0;
        assert!(matches!(cfg.validate(10), Err(MisError::InvalidConfig { .. })));
    }

    #[test]
    fn display_names() {
        assert_eq!(Variant::SleepingMis.to_string(), "SleepingMIS");
        assert_eq!(Variant::FastSleepingMis.to_string(), "Fast-SleepingMIS");
    }
}
