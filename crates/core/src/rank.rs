//! Random bits and ranks (Definition 1 of the paper).
//!
//! Each node v draws, before the algorithm starts, random bits
//! X_K, …, X_1 (each 1 with probability 1/2). The *k-rank* of v is the
//! sequence r_k(v) = (X_k, X_{k−1}, …, X_1, −1), compared lexicographically.
//! We pack the bits into a `u128` with bit i−1 holding X_i, so that the
//! lexicographic comparison of two k-ranks is exactly the integer comparison
//! of the low k bits — X_k is the most significant of the masked bits.
//!
//! Algorithm 2 additionally draws a 64-bit rank per node for the randomized
//! greedy base case, tie-broken by node id.
//!
//! Both the message-passing protocol and the combinatorial executor derive
//! their randomness through [`NodeRandomness::derive`], guaranteeing they
//! see identical coins for the same `(master_seed, node)`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sleepy_graph::NodeId;

/// All random draws of one node, derived deterministically from the master
/// seed and the node id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRandomness {
    /// Packed recursion bits: bit i−1 is X_i (1-based i, up to 128 levels).
    pub xbits: u128,
    /// The base-case rank for Algorithm 2's randomized greedy (tie-broken
    /// by node id; see [`greedy_key`]).
    pub greedy_rank: u64,
}

impl NodeRandomness {
    /// Derives the node's coins. Distinct nodes get independent streams via
    /// a SplitMix64 mix of the master seed and node id.
    pub fn derive(master_seed: u64, node: NodeId) -> Self {
        let mixed = splitmix64(master_seed ^ splitmix64(0x9E37_79B9_7F4A_7C15 ^ node as u64));
        let mut rng = SmallRng::seed_from_u64(mixed);
        let lo = rng.gen::<u64>() as u128;
        let hi = rng.gen::<u64>() as u128;
        let xbits = (hi << 64) | lo;
        let greedy_rank = rng.gen::<u64>();
        NodeRandomness { xbits, greedy_rank }
    }

    /// The bit X_i (1-based level index).
    ///
    /// # Panics
    ///
    /// Panics if `i` is 0 or greater than 128.
    pub fn x(&self, i: u32) -> bool {
        assert!((1..=128).contains(&i), "X_i index {i} out of range 1..=128");
        (self.xbits >> (i - 1)) & 1 == 1
    }

    /// The k-rank as an integer: the low k bits of `xbits`, whose numeric
    /// order equals the lexicographic order of (X_k, …, X_1).
    ///
    /// `rank(0)` is 0 for every node — the sentinel −1 tail of Definition 1
    /// makes all 0-ranks equal.
    ///
    /// # Panics
    ///
    /// Panics if `k > 128`.
    pub fn rank(&self, k: u32) -> u128 {
        assert!(k <= 128, "rank level {k} out of range");
        if k == 0 {
            0
        } else if k == 128 {
            self.xbits
        } else {
            self.xbits & ((1u128 << k) - 1)
        }
    }
}

/// The comparison key used by Algorithm 2's randomized greedy base case:
/// the random 64-bit rank, tie-broken by node id so keys are totally
/// ordered and distinct.
pub fn greedy_key(rank: u64, id: NodeId) -> (u64, NodeId) {
    (rank, id)
}

/// SplitMix64 — a statistically strong 64-bit mixer used to derive per-node
/// seeds from the master seed.
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the coins of every node in an n-node network.
pub fn derive_all(master_seed: u64, n: usize) -> Vec<NodeRandomness> {
    (0..n as NodeId).map(|v| NodeRandomness::derive(master_seed, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_node_and_seed() {
        let a = NodeRandomness::derive(7, 3);
        let b = NodeRandomness::derive(7, 3);
        assert_eq!(a, b);
        assert_ne!(NodeRandomness::derive(7, 4).xbits, a.xbits);
        assert_ne!(NodeRandomness::derive(8, 3).xbits, a.xbits);
    }

    #[test]
    fn x_bits_match_packing() {
        let r = NodeRandomness { xbits: 0b1011, greedy_rank: 0 };
        assert!(r.x(1));
        assert!(r.x(2));
        assert!(!r.x(3));
        assert!(r.x(4));
        assert!(!r.x(5));
    }

    #[test]
    fn rank_is_masked_low_bits() {
        let r = NodeRandomness { xbits: 0b1011, greedy_rank: 0 };
        assert_eq!(r.rank(0), 0);
        assert_eq!(r.rank(1), 0b1);
        assert_eq!(r.rank(2), 0b11);
        assert_eq!(r.rank(3), 0b011);
        assert_eq!(r.rank(4), 0b1011);
        assert_eq!(r.rank(128), 0b1011);
    }

    #[test]
    fn rank_order_is_lexicographic() {
        // v: (X_2, X_1) = (1, 0); w: (X_2, X_1) = (0, 1).
        // Lexicographically r_2(v) > r_2(w).
        let v = NodeRandomness { xbits: 0b10, greedy_rank: 0 };
        let w = NodeRandomness { xbits: 0b01, greedy_rank: 0 };
        assert!(v.rank(2) > w.rank(2));
        // At level 1 only X_1 counts: r_1(v) < r_1(w).
        assert!(v.rank(1) < w.rank(1));
    }

    #[test]
    fn equal_prefix_ties_at_lower_levels() {
        // Same X_1..X_3, different X_4.
        let v = NodeRandomness { xbits: 0b1111, greedy_rank: 0 };
        let w = NodeRandomness { xbits: 0b0111, greedy_rank: 0 };
        assert_eq!(v.rank(3), w.rank(3));
        assert!(v.rank(4) > w.rank(4));
    }

    #[test]
    fn greedy_key_total_order() {
        assert!(greedy_key(5, 1) > greedy_key(5, 0));
        assert!(greedy_key(6, 0) > greedy_key(5, 99));
    }

    #[test]
    fn x_bits_are_roughly_unbiased() {
        let n = 2000;
        let ones: u32 = (0..n).map(|v| NodeRandomness::derive(1, v).x(1) as u32).sum();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "X_1 bias: {frac}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn x_zero_panics() {
        NodeRandomness { xbits: 0, greedy_rank: 0 }.x(0);
    }

    #[test]
    fn splitmix_changes_input() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn derive_all_indexes_by_node() {
        let all = derive_all(3, 5);
        assert_eq!(all.len(), 5);
        assert_eq!(all[2], NodeRandomness::derive(3, 2));
    }
}
