//! Error types for the SleepingMIS algorithms.

use sleepy_net::EngineError;
use std::error::Error;
use std::fmt;

/// Errors from configuring or running the SleepingMIS algorithms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MisError {
    /// The padded schedule T(k) = 2^k·(T(0)+3) − 3 does not fit in a `u64`
    /// round counter for the requested recursion depth.
    ScheduleOverflow {
        /// The offending level.
        k: u32,
    },
    /// The recursion depth exceeds the 128 random bits available per node.
    DepthTooLarge {
        /// The requested depth.
        depth: u32,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Description of the violated constraint.
        reason: String,
    },
    /// The underlying simulation engine failed.
    Engine(EngineError),
}

impl fmt::Display for MisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisError::ScheduleOverflow { k } => {
                write!(f, "schedule duration T({k}) overflows the u64 round counter")
            }
            MisError::DepthTooLarge { depth } => {
                write!(f, "recursion depth {depth} exceeds the 128 available random bits")
            }
            MisError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            MisError::Engine(e) => write!(f, "engine failure: {e}"),
        }
    }
}

impl Error for MisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            MisError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for MisError {
    fn from(e: EngineError) -> Self {
        MisError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MisError::ScheduleOverflow { k: 90 };
        assert!(e.to_string().contains("T(90)"));
        assert!(e.source().is_none());
        let e: MisError = EngineError::Deadlock { round: 1, unfinished: 2 }.into();
        assert!(e.source().is_some());
    }
}
