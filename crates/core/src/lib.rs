//! # sleepy-mis
//!
//! Reproduction of the core contribution of *"Sleeping is Efficient: MIS in
//! O(1)-rounds Node-averaged Awake Complexity"* (Chatterjee, Gmyr,
//! Pandurangan, PODC 2020): the **SleepingMIS** (Algorithm 1) and
//! **Fast-SleepingMIS** (Algorithm 2) distributed MIS algorithms for the
//! sleeping model.
//!
//! ## What the algorithms do
//!
//! Every node flips one fair coin per recursion level. A call of
//! `SleepingMISRecursive(k)` on a node set U:
//!
//! 1. detects nodes isolated in G\[U\] (they join the MIS),
//! 2. recurses on A = {v : X_k(v) = 1} while the rest of U *sleeps* through
//!    the entire left window,
//! 3. wakes everyone for a synchronization round where MIS members
//!    eliminate their neighbors, and a second isolated-node detection where
//!    nodes whose surviving neighborhood is empty join,
//! 4. recurses on the still-undecided set R while everyone else sleeps.
//!
//! The Pruning Lemma (Lemma 3) shows E\[|R|\] ≤ |U|/4, so a constant
//! fraction of every call's participants terminates after only three awake
//! rounds at that level — giving **O(1) expected node-averaged awake
//! complexity** and O(log n) worst-case awake complexity. Algorithm 1 pays
//! a padded Θ(n³)-round schedule for this; Algorithm 2 truncates the
//! recursion at depth ℓ·log₂log₂ n (ℓ = 1/log₂(4/3)) and finishes the base
//! cases with the parallel randomized greedy MIS inside a fixed c·log n
//! window, reducing worst-case round complexity to O(log^3.41 n).
//!
//! ## Two interchangeable executions
//!
//! * [`run_sleeping_mis`] — the real message-passing protocol on the
//!   sleeping-model engine ([`sleepy_net`]), with exact awake/sleep
//!   accounting and CONGEST-sized messages.
//! * [`execute_sleeping_mis`] — a combinatorial executor that computes the
//!   identical execution set-wise (same MIS, same per-node awake/finish
//!   rounds, same message counts) in near-linear time, for large-scale
//!   experiments, and records the [`RecursionTree`].
//!
//! The integration tests of this repository require the two to agree
//! exactly, which is the strongest internal correctness check we have —
//! alongside Corollary 1 (the computed MIS equals the lexicographically
//! first MIS of the random rank order).
//!
//! ## Quick start
//!
//! ```
//! use sleepy_graph::generators;
//! use sleepy_mis::{execute_sleeping_mis, MisConfig};
//!
//! let g = generators::gnp(1000, 0.01, 42).unwrap();
//! let out = execute_sleeping_mis(&g, MisConfig::alg1(42))?;
//! let summary = out.summary();
//! println!("node-averaged awake complexity: {:.2}", summary.node_avg_awake);
//! println!("worst-case awake complexity:    {}", summary.worst_awake);
//! println!("worst-case round complexity:    {}", summary.worst_round);
//! # Ok::<(), sleepy_mis::MisError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod executor;
mod params;
mod protocol;
mod rank;
mod schedule;
mod tree;

pub use error::MisError;
pub use executor::{execute_sleeping_mis, ExecOutcome};
pub use params::{
    depth_alg1, depth_alg2, greedy_budget_rounds, greedy_iterations, MisConfig, SendPolicy,
    Variant, ELL,
};
pub use protocol::{
    run_sleeping_mis, run_sleeping_mis_taped, run_sleeping_mis_with_sink, MisMsg, MisRunResult,
    MisStatus, NodeOutput, PreparedMis, SleepingMisProtocol,
};
pub use rank::{derive_all, greedy_key, splitmix64, NodeRandomness};
pub use schedule::{CallPhases, Convention, Schedule};
pub use tree::{schedule_tree, CallRecord, RecursionTree, ScheduleTreeNode};
