//! The deterministic round schedule of the recursion.
//!
//! A call of `SleepingMISRecursive(k)` always occupies a *fixed-length*
//! window of T(k) rounds — sleeping nodes are padded to the worst case so
//! that all participants stay synchronized (paper §3, "One important
//! technical issue is synchronization"). The recurrence is
//!
//! > T(k) = 2·T(k−1) + 3,   closed form T(k) = 2^k·(T(0) + 3) − 3.
//!
//! * Algorithm 1: T(0) = 0, giving the paper's T(k) = 3·(2^k − 1)
//!   (Lemma 10).
//! * Algorithm 2: T(0) = the greedy base-case budget (1 + 2·⌈c·log₂ n⌉).
//!
//! ## Phase layout conventions
//!
//! The pseudocode (Algorithm 1, and Lemma 10) orders the three
//! non-recursive rounds as
//!
//! ```text
//! [first-iso] [left window] [sync] [second-iso] [right window]
//! ```
//!
//! The paper's **Figure 1**, however, is labeled according to the layout
//!
//! ```text
//! [first-iso] [left window] [sync] [right window] [second-iso]
//! ```
//!
//! with T(0) = 1 (leaves take one round) — this is the unique convention
//! reproducing the figure's exact (first-reached, finish) labels such as
//! (1,29), (2,14), (3,7), (4,4). The engine always uses
//! [`Convention::Pseudocode`]; [`Convention::Figure1`] exists so the figure
//! can be regenerated label-for-label (see the `figure1` experiment).

use crate::error::MisError;
use serde::{Deserialize, Serialize};
use sleepy_net::Round;

/// Phase-ordering convention (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Convention {
    /// The normative layout of the paper's pseudocode:
    /// second-isolated-detection precedes the right recursion.
    Pseudocode,
    /// The layout matching Figure 1's labels: the right recursion precedes
    /// the second isolated detection.
    Figure1,
}

/// Round positions of one call's non-recursive phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallPhases {
    /// First isolated-node detection (= the call's start round).
    pub first_iso: Round,
    /// First round of the left recursion window.
    pub left_start: Round,
    /// Synchronization / elimination round.
    pub sync: Round,
    /// Second isolated-node detection round.
    pub second_iso: Round,
    /// First round of the right recursion window.
    pub right_start: Round,
    /// Last round of the call window (start + T(k) − 1).
    pub end: Round,
}

/// The padded schedule for a fixed base duration T(0) and convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    t0: u64,
    convention: Convention,
}

impl Schedule {
    /// Schedule with base-case duration `t0` under `convention`.
    pub fn new(t0: u64, convention: Convention) -> Self {
        Schedule { t0, convention }
    }

    /// Algorithm 1's schedule: T(0) = 0, pseudocode layout
    /// (T(k) = 3·(2^k − 1), Lemma 10).
    pub fn alg1() -> Self {
        Schedule::new(0, Convention::Pseudocode)
    }

    /// Algorithm 2's schedule: T(0) = `base_budget` (the fixed greedy
    /// window), pseudocode layout.
    pub fn alg2(base_budget: u64) -> Self {
        Schedule::new(base_budget, Convention::Pseudocode)
    }

    /// The schedule whose timings reproduce the labels of the paper's
    /// Figure 1 (T(0) = 1, right recursion before second-iso).
    pub fn figure1() -> Self {
        Schedule::new(1, Convention::Figure1)
    }

    /// Base-case duration T(0).
    pub fn t0(&self) -> u64 {
        self.t0
    }

    /// The phase-ordering convention.
    pub fn convention(&self) -> Convention {
        self.convention
    }

    /// T(k) = 2^k·(T(0) + 3) − 3: the exact duration in rounds of a call at
    /// level k.
    ///
    /// # Errors
    ///
    /// [`MisError::ScheduleOverflow`] if the duration exceeds `u64`.
    pub fn duration(&self, k: u32) -> Result<u64, MisError> {
        if k >= 64 {
            return Err(MisError::ScheduleOverflow { k });
        }
        self.t0
            .checked_add(3)
            .and_then(|base| base.checked_mul(1u64 << k))
            .and_then(|x| x.checked_sub(3))
            .ok_or(MisError::ScheduleOverflow { k })
    }

    /// Durations T(0), …, T(depth), precomputed.
    ///
    /// # Errors
    ///
    /// [`MisError::ScheduleOverflow`] if T(depth) exceeds `u64`.
    pub fn durations(&self, depth: u32) -> Result<Vec<u64>, MisError> {
        (0..=depth).map(|k| self.duration(k)).collect()
    }

    /// Phase rounds of a level-k call starting at round `start`.
    ///
    /// # Errors
    ///
    /// [`MisError::ScheduleOverflow`] on round-counter overflow, or
    /// [`MisError::InvalidConfig`] for k = 0 (base cases have no phases).
    pub fn phases(&self, k: u32, start: Round) -> Result<CallPhases, MisError> {
        if k == 0 {
            return Err(MisError::InvalidConfig {
                reason: "base-case calls (k = 0) have no recursion phases".to_string(),
            });
        }
        let t_child = self.duration(k - 1)?;
        let t_self = self.duration(k)?;
        let end = start.checked_add(t_self - 1).ok_or(MisError::ScheduleOverflow { k })?;
        let first_iso = start;
        let left_start = start + 1;
        let sync = start + 1 + t_child;
        match self.convention {
            Convention::Pseudocode => Ok(CallPhases {
                first_iso,
                left_start,
                sync,
                second_iso: sync + 1,
                right_start: sync + 2,
                end,
            }),
            Convention::Figure1 => Ok(CallPhases {
                first_iso,
                left_start,
                sync,
                right_start: sync + 1,
                second_iso: sync + 1 + t_child,
                end,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alg1_duration_matches_lemma_10() {
        let s = Schedule::alg1();
        for k in 0..30 {
            assert_eq!(s.duration(k).unwrap(), 3 * ((1u64 << k) - 1), "k={k}");
        }
    }

    #[test]
    fn recurrence_holds() {
        for s in [Schedule::alg1(), Schedule::figure1(), Schedule::alg2(81)] {
            for k in 1..40 {
                let t = s.duration(k).unwrap();
                let t1 = s.duration(k - 1).unwrap();
                assert_eq!(t, 2 * t1 + 3, "T({k}) != 2T({}) + 3", k - 1);
            }
        }
    }

    #[test]
    fn overflow_detected() {
        let s = Schedule::alg1();
        assert!(s.duration(62).is_ok());
        assert!(matches!(s.duration(63), Err(MisError::ScheduleOverflow { k: 63 })));
        assert!(matches!(s.duration(200), Err(MisError::ScheduleOverflow { .. })));
        let s = Schedule::alg2(u64::MAX - 2);
        assert!(s.duration(1).is_err());
    }

    #[test]
    fn pseudocode_phase_layout() {
        let s = Schedule::alg1();
        // k = 2, start = 10: T(1) = 3, T(2) = 9.
        let p = s.phases(2, 10).unwrap();
        assert_eq!(p.first_iso, 10);
        assert_eq!(p.left_start, 11);
        assert_eq!(p.sync, 14);
        assert_eq!(p.second_iso, 15);
        assert_eq!(p.right_start, 16);
        assert_eq!(p.end, 18);
        // Right window [16, 18] has length T(1) = 3.
        assert_eq!(p.end - p.right_start + 1, 3);
    }

    #[test]
    fn k1_phases_are_consecutive_for_alg1() {
        let s = Schedule::alg1();
        let p = s.phases(1, 5).unwrap();
        // T(0) = 0: first-iso, sync, second-iso on consecutive rounds, and
        // the (empty) windows collapse.
        assert_eq!((p.first_iso, p.sync, p.second_iso, p.end), (5, 6, 7, 7));
    }

    #[test]
    fn figure1_reproduces_paper_labels() {
        // The paper's Figure 1: a 4-level tree (K = 3) starting at time 1.
        // Tree vertices are labeled (first-reached, finish). Verify all 15.
        let s = Schedule::figure1();
        fn label(s: &Schedule, k: u32, start: Round) -> (Round, Round) {
            (start, start + s.duration(k).unwrap() - 1)
        }
        // Root at time 1.
        assert_eq!(label(&s, 3, 1), (1, 29));
        let root = s.phases(3, 1).unwrap();
        assert_eq!(label(&s, 2, root.left_start), (2, 14));
        assert_eq!(label(&s, 2, root.right_start), (16, 28));
        let l = s.phases(2, root.left_start).unwrap();
        let r = s.phases(2, root.right_start).unwrap();
        assert_eq!(label(&s, 1, l.left_start), (3, 7));
        assert_eq!(label(&s, 1, l.right_start), (9, 13));
        assert_eq!(label(&s, 1, r.left_start), (17, 21));
        assert_eq!(label(&s, 1, r.right_start), (23, 27));
        let ll = s.phases(1, l.left_start).unwrap();
        let lr = s.phases(1, l.right_start).unwrap();
        let rl = s.phases(1, r.left_start).unwrap();
        let rr = s.phases(1, r.right_start).unwrap();
        assert_eq!(label(&s, 0, ll.left_start), (4, 4));
        assert_eq!(label(&s, 0, ll.right_start), (6, 6));
        assert_eq!(label(&s, 0, lr.left_start), (10, 10));
        assert_eq!(label(&s, 0, lr.right_start), (12, 12));
        assert_eq!(label(&s, 0, rl.left_start), (18, 18));
        assert_eq!(label(&s, 0, rl.right_start), (20, 20));
        assert_eq!(label(&s, 0, rr.left_start), (24, 24));
        assert_eq!(label(&s, 0, rr.right_start), (26, 26));
    }

    #[test]
    fn alg2_base_budget_windows() {
        let s = Schedule::alg2(81);
        assert_eq!(s.duration(0).unwrap(), 81);
        let p = s.phases(1, 0).unwrap();
        assert_eq!(p.left_start, 1);
        assert_eq!(p.sync, 82);
        assert_eq!(p.second_iso, 83);
        assert_eq!(p.right_start, 84);
        assert_eq!(p.end, 164);
    }

    #[test]
    fn base_case_has_no_phases() {
        assert!(Schedule::alg1().phases(0, 0).is_err());
    }
}
