//! Property-based tests of the graph substrate.

use proptest::prelude::*;
use sleepy_graph::{generators, io, ops, Graph, NodeId};

fn arb_edge_list(max_n: usize) -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId)>)> {
    (1..max_n).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as NodeId, 0..n as NodeId), 0..3 * n);
        (
            Just(n),
            edges.prop_map(move |pairs| {
                pairs.into_iter().filter(|(u, v)| u != v).collect::<Vec<_>>()
            }),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn construction_invariants((n, edges) in arb_edge_list(80)) {
        let g = Graph::from_edges(n, edges.clone()).unwrap();
        // Degree sum = 2m, symmetry, sortedness.
        prop_assert_eq!(g.node_ids().map(|v| g.degree(v)).sum::<usize>(), 2 * g.m());
        for v in g.node_ids() {
            prop_assert!(g.neighbors(v).windows(2).all(|w| w[0] < w[1]));
            for (p, &u) in g.neighbors(v).iter().enumerate() {
                prop_assert_eq!(g.endpoint(v, p), u);
                prop_assert_eq!(g.port_to(v, u), Some(p));
                prop_assert!(g.has_edge(u, v));
            }
        }
        // Every input edge is present.
        for (u, v) in edges {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn edge_order_is_irrelevant((n, mut edges) in arb_edge_list(60)) {
        let g = Graph::from_edges(n, edges.clone()).unwrap();
        edges.reverse();
        let h = Graph::from_edges(n, edges).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn io_round_trip((n, edges) in arb_edge_list(60)) {
        let g = Graph::from_edges(n, edges).unwrap();
        let h = io::parse_edge_list(&io::to_edge_list(&g)).unwrap();
        prop_assert_eq!(g, h);
    }

    #[test]
    fn induced_subgraph_is_consistent((n, edges) in arb_edge_list(50), mask_seed in 0u64..100) {
        let g = Graph::from_edges(n, edges).unwrap();
        let keep: Vec<bool> = (0..n)
            .map(|v| (mask_seed.wrapping_mul(v as u64 + 7) >> 3) % 2 == 0)
            .collect();
        let (sub, orig) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.n(), keep.iter().filter(|&&b| b).count());
        // Every subgraph edge maps back to an original edge between kept
        // nodes, and vice versa.
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(orig[a as usize], orig[b as usize]));
        }
        let kept_edges = g
            .edges()
            .filter(|&(u, v)| keep[u as usize] && keep[v as usize])
            .count();
        prop_assert_eq!(sub.m(), kept_edges);
    }

    #[test]
    fn bfs_distances_satisfy_triangle_steps((n, edges) in arb_edge_list(50)) {
        let g = Graph::from_edges(n, edges).unwrap();
        let dist = ops::bfs_distances(&g, 0);
        prop_assert_eq!(dist[0], 0);
        for (u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du != usize::MAX && dv != usize::MAX {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                // One endpoint unreachable implies both are.
                prop_assert_eq!(du, dv);
            }
        }
    }

    #[test]
    fn components_partition_nodes((n, edges) in arb_edge_list(50)) {
        let g = Graph::from_edges(n, edges).unwrap();
        let (labels, count) = ops::connected_components(&g);
        prop_assert_eq!(labels.len(), n);
        prop_assert!(labels.iter().all(|&l| l < count));
        // Adjacent nodes share a component.
        for (u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        // Every label in 0..count appears.
        for c in 0..count {
            prop_assert!(labels.contains(&c));
        }
    }

    #[test]
    fn degeneracy_ordering_certificate((n, edges) in arb_edge_list(50)) {
        let g = Graph::from_edges(n, edges).unwrap();
        let (d, order) = ops::degeneracy(&g);
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        let worst = g
            .node_ids()
            .map(|v| {
                g.neighbors(v).iter().filter(|&&u| pos[u as usize] > pos[v as usize]).count()
            })
            .max()
            .unwrap_or(0);
        prop_assert_eq!(worst, d.min(worst.max(d)).min(d));
        prop_assert!(worst <= d);
        // Degeneracy is at most the maximum degree.
        prop_assert!(d <= g.max_degree());
    }

    #[test]
    fn gnp_determinism_and_bounds(n in 1usize..200, p_millis in 0u32..1000, seed in 0u64..50) {
        let p = p_millis as f64 / 1000.0;
        let g = generators::gnp(n, p, seed).unwrap();
        prop_assert_eq!(&g, &generators::gnp(n, p, seed).unwrap());
        prop_assert!(g.m() <= n * (n - 1) / 2);
    }
}
