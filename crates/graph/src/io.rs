//! Plain-text edge-list serialization.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! n <node-count>
//! <u> <v>
//! <u> <v>
//! ```
//!
//! The `n` header is required so isolated trailing nodes survive a
//! round trip.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

/// Serializes a graph to the edge-list format.
///
/// # Example
///
/// ```
/// use sleepy_graph::{io, Graph};
/// let g = Graph::from_edges(3, [(0, 1)]).unwrap();
/// let text = io::to_edge_list(&g);
/// let h = io::parse_edge_list(&text)?;
/// assert_eq!(g, h);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = String::with_capacity(16 + 12 * g.m());
    writeln!(out, "n {}", g.n()).expect("writing to String cannot fail");
    for (u, v) in g.edges() {
        writeln!(out, "{u} {v}").expect("writing to String cannot fail");
    }
    out
}

/// Parses the edge-list format produced by [`to_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, a missing/duplicate
/// `n` header, or non-numeric fields; and propagates [`Graph::from_edges`]
/// errors for out-of-range endpoints or self loops.
pub fn parse_edge_list(text: &str) -> Result<Graph, GraphError> {
    let mut n: Option<usize> = None;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let first = fields.next().expect("non-empty trimmed line has a field");
        if first == "n" {
            if n.is_some() {
                return Err(GraphError::Parse {
                    line: line_no,
                    reason: "duplicate `n` header".to_string(),
                });
            }
            let value = fields.next().ok_or_else(|| GraphError::Parse {
                line: line_no,
                reason: "`n` header missing its value".to_string(),
            })?;
            n = Some(value.parse().map_err(|_| GraphError::Parse {
                line: line_no,
                reason: format!("invalid node count `{value}`"),
            })?);
            continue;
        }
        let u: NodeId = first.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            reason: format!("invalid endpoint `{first}`"),
        })?;
        let second = fields.next().ok_or_else(|| GraphError::Parse {
            line: line_no,
            reason: "edge line missing second endpoint".to_string(),
        })?;
        let v: NodeId = second.parse().map_err(|_| GraphError::Parse {
            line: line_no,
            reason: format!("invalid endpoint `{second}`"),
        })?;
        if fields.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                reason: "trailing fields after edge endpoints".to_string(),
            });
        }
        edges.push((u, v));
    }
    let n = n.ok_or(GraphError::Parse { line: 0, reason: "missing `n` header".to_string() })?;
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn round_trip_preserves_graph() {
        let g = generators::gnp(40, 0.15, 8).unwrap();
        let h = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn round_trip_preserves_isolated_nodes() {
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        let h = parse_edge_list(&to_edge_list(&g)).unwrap();
        assert_eq!(h.n(), 5);
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g = parse_edge_list("# hello\n\nn 3\n0 1\n# done\n").unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(matches!(parse_edge_list("0 1\n"), Err(GraphError::Parse { .. })));
    }

    #[test]
    fn duplicate_header_rejected() {
        assert!(parse_edge_list("n 3\nn 4\n").is_err());
    }

    #[test]
    fn malformed_lines_rejected() {
        assert!(parse_edge_list("n 3\n0\n").is_err());
        assert!(parse_edge_list("n 3\n0 x\n").is_err());
        assert!(parse_edge_list("n 3\n0 1 2\n").is_err());
        assert!(parse_edge_list("n x\n").is_err());
    }

    #[test]
    fn semantic_errors_propagate() {
        assert!(matches!(parse_edge_list("n 3\n1 1\n"), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(parse_edge_list("n 3\n0 9\n"), Err(GraphError::NodeOutOfRange { .. })));
    }
}
