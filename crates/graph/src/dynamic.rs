//! Dynamic-graph support: deltas (edge insert/delete, node
//! arrival/departure), single-event decomposition, and seeded churn
//! generators.
//!
//! A [`GraphDelta`] is one batch of mutations applied between phases of a
//! dynamic workload. Applying a delta produces a fresh [`Graph`] together
//! with the old-id → new-id mapping ([`DeltaOutcome::old_to_new`]), which
//! is what lets an MIS-repair algorithm carry per-node state (membership)
//! across the mutation. [`GraphDelta::events`] decomposes a batch into
//! single-event deltas ([`DeltaEvent`]) whose sequential application
//! reproduces the batch exactly — the substrate for *incremental*
//! (per-update) repair and Ghaffari–Portmann-style amortized
//! per-update accounting. Hot event loops should apply events to a
//! [`DynGraph`](crate::DynGraph) ([`apply_event`]) instead of paying
//! this module's O(n + m) CSR rebuild per event; the two are
//! equivalent by construction (and by proptest).
//!
//! [`apply_event`]: crate::DynGraph::apply_event
//!
//! [`churn_delta`] samples a delta from a [`ChurnSpec`] with an explicit
//! seed, so — like every generator in this crate — a whole churn
//! *sequence* is reproducible from `(initial graph parameters, seeds)`.
//! [`churn_delta_with_mis`] additionally takes the current MIS
//! membership so the *adversarial* churn model ([`ChurnModel`]) can
//! target its deletions at the nodes the solution actually depends on.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One batch of graph mutations.
///
/// Apply order (see [`GraphDelta::apply`]):
///
/// 1. delete `remove_edges` (old-id space; absent edges are ignored),
/// 2. delete `remove_nodes` with all incident edges (old-id space),
/// 3. compact surviving node ids, preserving relative order,
/// 4. append `add_nodes` fresh isolated nodes after the survivors,
/// 5. insert `add_edges`, given in the **post-compaction id space**
///    (so they may reference arriving nodes; duplicates collapse).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphDelta {
    /// Edges to delete, in the pre-delta id space (either orientation).
    pub remove_edges: Vec<(NodeId, NodeId)>,
    /// Nodes departing, in the pre-delta id space.
    pub remove_nodes: Vec<NodeId>,
    /// Number of arriving nodes (appended after surviving nodes).
    pub add_nodes: usize,
    /// Edges to insert, in the post-delta id space.
    pub add_edges: Vec<(NodeId, NodeId)>,
}

/// Result of applying a [`GraphDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaOutcome {
    /// The mutated graph.
    pub graph: Graph,
    /// For every pre-delta node id: its post-delta id, or `None` if the
    /// node departed. Arriving nodes occupy the ids after the survivors.
    pub old_to_new: Vec<Option<NodeId>>,
}

impl GraphDelta {
    /// A delta that changes nothing.
    pub fn empty() -> Self {
        GraphDelta::default()
    }

    /// Whether this delta mutates anything.
    pub fn is_empty(&self) -> bool {
        self.remove_edges.is_empty()
            && self.remove_nodes.is_empty()
            && self.add_nodes == 0
            && self.add_edges.is_empty()
    }

    /// Applies the delta to `g`, returning the mutated graph and the
    /// node-id mapping.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if a departing node or an edge
    ///   endpoint is out of range for its id space.
    /// * [`GraphError::SelfLoop`] if an inserted edge is a self loop.
    pub fn apply(&self, g: &Graph) -> Result<DeltaOutcome, GraphError> {
        let n = g.n();
        for &(u, v) in &self.remove_edges {
            for e in [u, v] {
                if e as usize >= n {
                    return Err(GraphError::NodeOutOfRange { node: e as u64, n });
                }
            }
        }
        let mut departed = vec![false; n];
        for &v in &self.remove_nodes {
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v as u64, n });
            }
            departed[v as usize] = true;
        }
        // Old → new id mapping: survivors keep relative order, compacted.
        let mut old_to_new = vec![None; n];
        let mut survivors = 0usize;
        for v in 0..n {
            if !departed[v] {
                old_to_new[v] = Some(survivors as NodeId);
                survivors += 1;
            }
        }
        let new_n = survivors + self.add_nodes;

        // Deleted edges, normalized for O(log) lookup during the copy.
        let mut dropped: Vec<(NodeId, NodeId)> =
            self.remove_edges.iter().map(|&(u, v)| if u < v { (u, v) } else { (v, u) }).collect();
        dropped.sort_unstable();
        dropped.dedup();

        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(g.m() + self.add_edges.len());
        for (u, v) in g.edges() {
            if dropped.binary_search(&(u, v)).is_ok() {
                continue;
            }
            if let (Some(nu), Some(nv)) = (old_to_new[u as usize], old_to_new[v as usize]) {
                edges.push((nu, nv));
            }
        }
        for &(u, v) in &self.add_edges {
            for e in [u, v] {
                if e as usize >= new_n {
                    return Err(GraphError::NodeOutOfRange { node: e as u64, n: new_n });
                }
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            edges.push((u, v));
        }
        Ok(DeltaOutcome { graph: Graph::from_edges(new_n, edges)?, old_to_new })
    }

    /// Decomposes the batch into single-event deltas whose *sequential*
    /// application reproduces [`apply`](GraphDelta::apply) exactly:
    /// same final graph, same composed id mapping.
    ///
    /// Event order mirrors the batch apply order — edge deletions, then
    /// node departures in **descending id order** (a departure only
    /// shifts ids above it, so every remaining departure id is still
    /// valid verbatim), then arrivals, then edge insertions (which the
    /// batch already expresses in the post-delta id space).
    ///
    /// # Example
    ///
    /// ```
    /// use sleepy_graph::{generators, DeltaEvent, GraphDelta};
    ///
    /// let g = generators::path(4).unwrap(); // 0-1-2-3
    /// let delta = GraphDelta {
    ///     remove_nodes: vec![1],
    ///     add_edges: vec![(0, 1)], // post-delta ids: 0-(2)
    ///     ..GraphDelta::default()
    /// };
    /// let batch = delta.apply(&g).unwrap();
    /// let mut stepped = g.clone();
    /// for event in delta.events() {
    ///     stepped = event.to_delta().apply(&stepped).unwrap().graph;
    /// }
    /// assert_eq!(stepped, batch.graph);
    /// assert_eq!(delta.events().len(), 2);
    /// assert_eq!(delta.events()[0], DeltaEvent::RemoveNode(1));
    /// ```
    pub fn events(&self) -> Vec<DeltaEvent> {
        let mut events = Vec::with_capacity(
            self.remove_edges.len()
                + self.remove_nodes.len()
                + self.add_nodes
                + self.add_edges.len(),
        );
        events.extend(self.remove_edges.iter().map(|&(u, v)| DeltaEvent::RemoveEdge(u, v)));
        let mut departures = self.remove_nodes.clone();
        departures.sort_unstable_by(|a, b| b.cmp(a));
        departures.dedup();
        events.extend(departures.into_iter().map(DeltaEvent::RemoveNode));
        events.extend(std::iter::repeat_n(DeltaEvent::AddNode, self.add_nodes));
        events.extend(self.add_edges.iter().map(|&(u, v)| DeltaEvent::AddEdge(u, v)));
        events
    }
}

/// A single atomic graph mutation, produced by [`GraphDelta::events`].
///
/// Each event's node ids refer to the id space *current at the moment
/// the event is applied* (earlier events in the same decomposition have
/// already taken effect). Apply with [`to_delta`](DeltaEvent::to_delta)
/// and [`GraphDelta::apply`] (O(n + m), batch semantics) or in place
/// with [`DynGraph::apply_event`](crate::DynGraph::apply_event), which
/// costs O(degree · log n).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaEvent {
    /// Delete one edge (either orientation; absent edges are a no-op).
    RemoveEdge(NodeId, NodeId),
    /// One node departs; ids above it shift down by one.
    RemoveNode(NodeId),
    /// One isolated node arrives with id `n` (the current node count).
    AddNode,
    /// Insert one edge.
    AddEdge(NodeId, NodeId),
}

impl DeltaEvent {
    /// The equivalent one-event [`GraphDelta`].
    pub fn to_delta(self) -> GraphDelta {
        match self {
            DeltaEvent::RemoveEdge(u, v) => {
                GraphDelta { remove_edges: vec![(u, v)], ..GraphDelta::default() }
            }
            DeltaEvent::RemoveNode(v) => {
                GraphDelta { remove_nodes: vec![v], ..GraphDelta::default() }
            }
            DeltaEvent::AddNode => GraphDelta { add_nodes: 1, ..GraphDelta::default() },
            DeltaEvent::AddEdge(u, v) => {
                GraphDelta { add_edges: vec![(u, v)], ..GraphDelta::default() }
            }
        }
    }

    /// A short stable label (`edge-del`, `node-dep`, …) for logs and
    /// per-update reports.
    pub fn label(&self) -> &'static str {
        match self {
            DeltaEvent::RemoveEdge(..) => "edge-del",
            DeltaEvent::RemoveNode(..) => "node-dep",
            DeltaEvent::AddNode => "node-arr",
            DeltaEvent::AddEdge(..) => "edge-ins",
        }
    }
}

/// How churn *targets* are selected (intensities stay in [`ChurnSpec`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChurnModel {
    /// Targets are drawn uniformly at random.
    #[default]
    Uniform,
    /// Deletions preferentially hit the current MIS: departing nodes
    /// are drawn from MIS members first, deleted edges from edges
    /// incident to a member first (falling back to uniform once the
    /// targeted pool is exhausted, so the configured intensities are
    /// always met). This is the worst case for repair strategies —
    /// every deletion lands where the solution actually depends on the
    /// graph. Requires membership via [`churn_delta_with_mis`];
    /// without it the model degrades to [`ChurnModel::Uniform`].
    Adversarial,
}

impl ChurnModel {
    /// Stable identifier used in labels and content keys.
    pub fn label(&self) -> &'static str {
        match self {
            ChurnModel::Uniform => "uni",
            ChurnModel::Adversarial => "adv",
        }
    }
}

/// Per-phase churn intensities for [`churn_delta`].
///
/// All fractions are relative to the *current* graph, so a churn
/// sequence keeps its relative intensity as the graph grows or shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// Fraction of current edges deleted per phase, in `[0, 1]`.
    pub edge_delete_frac: f64,
    /// Edges inserted per phase, as a fraction of the current edge count
    /// (nonnegative; may exceed 1).
    pub edge_insert_frac: f64,
    /// Fraction of current nodes departing per phase, in `[0, 1]`.
    pub node_delete_frac: f64,
    /// Arrivals per phase, as a fraction of the current node count
    /// (nonnegative).
    pub node_insert_frac: f64,
    /// Number of uniformly random attachment edges each arriving node
    /// brings (clamped to the available nodes).
    pub arrival_degree: usize,
    /// How deletion targets are selected (uniform or adversarial).
    pub model: ChurnModel,
}

impl ChurnSpec {
    /// No churn at all (the static degenerate case).
    pub fn none() -> Self {
        ChurnSpec {
            edge_delete_frac: 0.0,
            edge_insert_frac: 0.0,
            node_delete_frac: 0.0,
            node_insert_frac: 0.0,
            arrival_degree: 0,
            model: ChurnModel::Uniform,
        }
    }

    /// This spec with the adversarial targeting model (builder-style).
    #[must_use]
    pub fn adversarial(mut self) -> Self {
        self.model = ChurnModel::Adversarial;
        self
    }

    /// Pure edge churn: delete and insert the given fraction of edges.
    pub fn edges(frac: f64) -> Self {
        ChurnSpec { edge_delete_frac: frac, edge_insert_frac: frac, ..ChurnSpec::none() }
    }

    /// Node churn: the given fraction departs and arrives each phase,
    /// arrivals attaching with `arrival_degree` edges.
    pub fn nodes(frac: f64, arrival_degree: usize) -> Self {
        ChurnSpec {
            node_delete_frac: frac,
            node_insert_frac: frac,
            arrival_degree,
            ..ChurnSpec::none()
        }
    }

    /// A spec whose sampled batch on `g` decomposes into roughly
    /// `events` update events, a quarter per kind (each arriving node's
    /// attachment edges add up to `arrival_degree` more) — the shared
    /// workload of the churn benchmarks (`fleet bench-churn`,
    /// `bench_churn_scaling`), kept in one place so the two harnesses
    /// cannot drift apart.
    ///
    /// # Example
    ///
    /// ```
    /// use sleepy_graph::{churn_delta, generators, ChurnModel, ChurnSpec};
    ///
    /// let g = generators::gnp(500, 0.02, 1).unwrap();
    /// let spec = ChurnSpec::targeting_events(&g, 100, 0, ChurnModel::Uniform);
    /// let events = churn_delta(&g, &spec, 2).unwrap().events().len();
    /// assert!((50..=150).contains(&events));
    /// ```
    pub fn targeting_events(
        g: &Graph,
        events: usize,
        arrival_degree: usize,
        model: ChurnModel,
    ) -> Self {
        let per_kind = (events as f64 / 4.0).max(1.0);
        ChurnSpec {
            edge_delete_frac: (per_kind / g.m().max(1) as f64).min(0.5),
            edge_insert_frac: (per_kind / g.m().max(1) as f64).min(0.5),
            node_delete_frac: (per_kind / g.n().max(1) as f64).min(0.3),
            node_insert_frac: (per_kind / g.n().max(1) as f64).min(0.3),
            arrival_degree,
            model,
        }
    }

    /// Whether every intensity is zero. (`arrival_degree` does not
    /// matter: arrivals with degree 0 still add isolated nodes, which
    /// is churn.)
    pub fn is_none(&self) -> bool {
        self.edge_delete_frac == 0.0
            && self.edge_insert_frac == 0.0
            && self.node_delete_frac == 0.0
            && self.node_insert_frac == 0.0
    }

    fn validate(&self) -> Result<(), GraphError> {
        let in_unit = |x: f64| x.is_finite() && (0.0..=1.0).contains(&x);
        let nonneg = |x: f64| x.is_finite() && x >= 0.0;
        if !in_unit(self.edge_delete_frac) || !in_unit(self.node_delete_frac) {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "churn delete fractions (edge {}, node {}) must lie in [0, 1]",
                    self.edge_delete_frac, self.node_delete_frac
                ),
            });
        }
        if !nonneg(self.edge_insert_frac) || !nonneg(self.node_insert_frac) {
            return Err(GraphError::InvalidParameter {
                reason: format!(
                    "churn insert fractions (edge {}, node {}) must be nonnegative and finite",
                    self.edge_insert_frac, self.node_insert_frac
                ),
            });
        }
        Ok(())
    }

    /// Stable identifier used in workload labels and content keys.
    pub fn label(&self) -> String {
        if self.is_none() {
            "static".to_string()
        } else {
            let adv = match self.model {
                ChurnModel::Uniform => "",
                ChurnModel::Adversarial => "!adv",
            };
            format!(
                "e-{}+{}/v-{}+{}x{}{adv}",
                self.edge_delete_frac,
                self.edge_insert_frac,
                self.node_delete_frac,
                self.node_insert_frac,
                self.arrival_degree
            )
        }
    }
}

/// Samples one churn batch for `g` from `spec`, deterministically in
/// `(g, spec, seed)`.
///
/// Counts are floors of the requested fractions, so light churn on tiny
/// graphs can round to a no-op delta. Departing nodes are drawn
/// uniformly without replacement, deleted edges uniformly among current
/// edges, inserted edges uniformly among node pairs (skipping pairs that
/// survive as edges, with a bounded retry budget on dense graphs), and
/// each arrival attaches to `arrival_degree` distinct uniform targets.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for out-of-range churn fractions.
///
/// # Example
///
/// ```
/// use sleepy_graph::{churn_delta, generators, ChurnSpec};
///
/// let g = generators::gnp(100, 0.05, 7).unwrap();
/// let spec = ChurnSpec::edges(0.1); // delete AND insert 10% of edges
/// let delta = churn_delta(&g, &spec, 3).unwrap();
/// assert_eq!(delta.remove_edges.len(), g.m() / 10);
/// // Deterministic in (g, spec, seed):
/// assert_eq!(delta, churn_delta(&g, &spec, 3).unwrap());
/// let mutated = delta.apply(&g).unwrap().graph;
/// assert_eq!(mutated.n(), g.n());
/// ```
pub fn churn_delta(g: &Graph, spec: &ChurnSpec, seed: u64) -> Result<GraphDelta, GraphError> {
    churn_delta_with_mis(g, spec, seed, None)
}

/// Partial Fisher–Yates: after the call, `items[..k]` is a uniform
/// draw of `k` distinct items.
fn partial_shuffle<T>(items: &mut [T], k: usize, rng: &mut SmallRng) {
    let len = items.len();
    for i in 0..k.min(len) {
        let j = rng.gen_range(i..len);
        items.swap(i, j);
    }
}

/// Draws `k` distinct items, exhausting the (shuffled) `targeted` pool
/// before falling back to the (shuffled) `rest` pool. A uniform draw
/// passes an empty `targeted` pool, which degenerates to a plain
/// partial Fisher–Yates over `rest`.
fn draw_preferring<T: Copy>(
    targeted: &mut [T],
    rest: &mut [T],
    k: usize,
    rng: &mut SmallRng,
) -> Vec<T> {
    let from_targeted = k.min(targeted.len());
    partial_shuffle(targeted, from_targeted, rng);
    let from_rest = (k - from_targeted).min(rest.len());
    partial_shuffle(rest, from_rest, rng);
    let mut chosen = Vec::with_capacity(from_targeted + from_rest);
    chosen.extend_from_slice(&targeted[..from_targeted]);
    chosen.extend_from_slice(&rest[..from_rest]);
    chosen
}

/// [`churn_delta`] with the current MIS membership, which the
/// [`ChurnModel::Adversarial`] model needs to aim its deletions:
/// departing nodes are drawn from current members first, deleted edges
/// from member-incident edges first. With `in_mis == None` (or the
/// uniform model) this is exactly [`churn_delta`]. Deterministic in
/// `(g, spec, seed, in_mis)`.
///
/// # Errors
///
/// [`GraphError::InvalidParameter`] for out-of-range churn fractions or
/// a membership slice whose length differs from `g.n()`.
pub fn churn_delta_with_mis(
    g: &Graph,
    spec: &ChurnSpec,
    seed: u64,
    in_mis: Option<&[bool]>,
) -> Result<GraphDelta, GraphError> {
    spec.validate()?;
    let n = g.n();
    let m = g.m();
    if let Some(set) = in_mis {
        if set.len() != n {
            return Err(GraphError::InvalidParameter {
                reason: format!("membership length {} != node count {n}", set.len()),
            });
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let adversarial = spec.model == ChurnModel::Adversarial && in_mis.is_some();
    let member = |v: NodeId| in_mis.map(|s| s[v as usize]).unwrap_or(false);

    // Departures: distinct nodes; the adversary drains MIS members first.
    let departures = ((spec.node_delete_frac * n as f64).floor() as usize).min(n);
    let (mut targeted_nodes, mut rest_nodes): (Vec<NodeId>, Vec<NodeId>) = if adversarial {
        (0..n as NodeId).partition(|&v| member(v))
    } else {
        (Vec::new(), (0..n as NodeId).collect())
    };
    let mut remove_nodes =
        draw_preferring(&mut targeted_nodes, &mut rest_nodes, departures, &mut rng);
    remove_nodes.sort_unstable();
    let mut departed = vec![false; n];
    for &v in &remove_nodes {
        departed[v as usize] = true;
    }

    // Edge deletions: distinct current edges (incident edges of
    // departing nodes vanish anyway; sampling ignores that overlap).
    // The adversary prefers edges a member is an endpoint of — exactly
    // the edges whose loss can leave a neighbor undominated.
    let deletions = ((spec.edge_delete_frac * m as f64).floor() as usize).min(m);
    let (mut targeted_edges, mut rest_edges): (Vec<_>, Vec<_>) = if adversarial {
        g.edges().partition(|&(u, v)| member(u) || member(v))
    } else {
        (Vec::new(), g.edges().collect())
    };
    let remove_edges = draw_preferring(&mut targeted_edges, &mut rest_edges, deletions, &mut rng);

    // Post-delta id space: survivors (compacted) then arrivals.
    let survivors = n - departures;
    let arrivals = (spec.node_insert_frac * n as f64).floor() as usize;
    let new_n = survivors + arrivals;
    let mut old_to_new = vec![NodeId::MAX; n];
    let mut next = 0 as NodeId;
    for v in 0..n {
        if !departed[v] {
            old_to_new[v] = next;
            next += 1;
        }
    }

    let mut add_edges: Vec<(NodeId, NodeId)> = Vec::new();
    // Edge insertions among the post-delta nodes. Skip pairs that
    // survive as edges (present in the old graph and not deleted this
    // batch) or were already inserted this batch, so the count of
    // distinct new edges matches the requested fraction; a bounded
    // retry budget keeps this O(count) in expectation and always
    // terminating on near-complete graphs.
    if new_n >= 2 {
        let insertions = (spec.edge_insert_frac * m as f64).floor() as usize;
        // Survivor new-id → old-id, to consult `has_edge` on the old graph.
        let mut new_to_old = vec![NodeId::MAX; survivors];
        for v in 0..n {
            if old_to_new[v] != NodeId::MAX {
                new_to_old[old_to_new[v] as usize] = v as NodeId;
            }
        }
        let deleted: std::collections::BTreeSet<(NodeId, NodeId)> =
            remove_edges.iter().copied().collect();
        let mut batch: std::collections::BTreeSet<(NodeId, NodeId)> =
            std::collections::BTreeSet::new();
        let mut budget = 12 * insertions + 64;
        let mut inserted = 0usize;
        while inserted < insertions && budget > 0 {
            budget -= 1;
            let u = rng.gen_range(0..new_n) as NodeId;
            let v = rng.gen_range(0..new_n) as NodeId;
            if u == v {
                continue;
            }
            let pair = if u < v { (u, v) } else { (v, u) };
            if batch.contains(&pair) {
                continue;
            }
            let survives = (u as usize) < survivors && (v as usize) < survivors && {
                let (ou, ov) = (new_to_old[u as usize], new_to_old[v as usize]);
                let old_pair = if ou < ov { (ou, ov) } else { (ov, ou) };
                g.has_edge(ou, ov) && !deleted.contains(&old_pair)
            };
            if survives {
                continue;
            }
            batch.insert(pair);
            add_edges.push(pair);
            inserted += 1;
        }
    }
    // Arrival attachment: each new node brings up to `arrival_degree`
    // distinct edges to uniformly random other nodes.
    for a in 0..arrivals {
        let v = (survivors + a) as NodeId;
        let others = new_n - 1;
        let degree = spec.arrival_degree.min(others);
        let mut chosen: Vec<NodeId> = Vec::with_capacity(degree);
        while chosen.len() < degree {
            let t = rng.gen_range(0..new_n) as NodeId;
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for t in chosen {
            add_edges.push(if t < v { (t, v) } else { (v, t) });
        }
    }
    // Arrival attachments sample independently of the insertion batch
    // (and of each other across arrivals), so normalize: with every pair
    // already stored as (min, max), a sort + dedup makes add_edges a set
    // of distinct edges and keeps `add_edges.len()` an honest count of
    // the edges the delta actually materializes.
    add_edges.sort_unstable();
    add_edges.dedup();
    Ok(GraphDelta { remove_edges, remove_nodes, add_nodes: arrivals, add_edges })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn empty_delta_is_identity_with_identity_mapping() {
        let g = generators::gnp(40, 0.1, 3).unwrap();
        let out = GraphDelta::empty().apply(&g).unwrap();
        assert_eq!(out.graph, g);
        assert!(out.old_to_new.iter().enumerate().all(|(v, &new)| new == Some(v as NodeId)));
        assert!(GraphDelta::empty().is_empty());
    }

    #[test]
    fn edge_mutations() {
        let g = generators::cycle(5).unwrap();
        let delta = GraphDelta {
            remove_edges: vec![(1, 0), (4, 0)], // either orientation
            add_edges: vec![(0, 2)],
            ..GraphDelta::default()
        };
        let out = delta.apply(&g).unwrap();
        assert_eq!(out.graph.n(), 5);
        assert!(!out.graph.has_edge(0, 1));
        assert!(!out.graph.has_edge(0, 4));
        assert!(out.graph.has_edge(0, 2));
        assert_eq!(out.graph.m(), 4);
    }

    #[test]
    fn removing_absent_edge_is_a_no_op() {
        let g = generators::path(4).unwrap();
        let delta = GraphDelta { remove_edges: vec![(0, 3)], ..GraphDelta::default() };
        assert_eq!(delta.apply(&g).unwrap().graph, g);
    }

    #[test]
    fn node_departure_compacts_ids() {
        let g = generators::path(5).unwrap(); // 0-1-2-3-4
        let delta = GraphDelta { remove_nodes: vec![2], ..GraphDelta::default() };
        let out = delta.apply(&g).unwrap();
        assert_eq!(out.graph.n(), 4);
        assert_eq!(out.old_to_new, vec![Some(0), Some(1), None, Some(2), Some(3)]);
        // Surviving edges 0-1 and 3-4 map to 0-1 and 2-3.
        assert!(out.graph.has_edge(0, 1));
        assert!(out.graph.has_edge(2, 3));
        assert_eq!(out.graph.m(), 2);
    }

    #[test]
    fn arrivals_append_after_survivors() {
        let g = generators::path(3).unwrap();
        let delta = GraphDelta {
            remove_nodes: vec![0],
            add_nodes: 2,
            add_edges: vec![(2, 0), (3, 2)], // new-id space: survivors are 0,1
            ..GraphDelta::default()
        };
        let out = delta.apply(&g).unwrap();
        assert_eq!(out.graph.n(), 4);
        assert_eq!(out.old_to_new, vec![None, Some(0), Some(1)]);
        assert!(out.graph.has_edge(0, 2));
        assert!(out.graph.has_edge(2, 3));
    }

    #[test]
    fn apply_rejects_bad_ids() {
        let g = generators::path(3).unwrap();
        let bad_node = GraphDelta { remove_nodes: vec![7], ..GraphDelta::default() };
        assert!(matches!(bad_node.apply(&g), Err(GraphError::NodeOutOfRange { node: 7, .. })));
        let bad_edge = GraphDelta { add_edges: vec![(0, 9)], ..GraphDelta::default() };
        assert!(matches!(bad_edge.apply(&g), Err(GraphError::NodeOutOfRange { node: 9, .. })));
        let self_loop = GraphDelta { add_edges: vec![(1, 1)], ..GraphDelta::default() };
        assert!(matches!(self_loop.apply(&g), Err(GraphError::SelfLoop { node: 1 })));
        let bad_removal = GraphDelta { remove_edges: vec![(0, 5)], ..GraphDelta::default() };
        assert!(bad_removal.apply(&g).is_err());
    }

    #[test]
    fn delta_can_empty_the_graph() {
        let g = generators::clique(4).unwrap();
        let delta = GraphDelta { remove_nodes: vec![0, 1, 2, 3], ..GraphDelta::default() };
        let out = delta.apply(&g).unwrap();
        assert_eq!(out.graph.n(), 0);
        assert!(out.old_to_new.iter().all(Option::is_none));
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let g = generators::gnp(120, 0.05, 9).unwrap();
        let spec = ChurnSpec {
            edge_delete_frac: 0.1,
            edge_insert_frac: 0.1,
            node_delete_frac: 0.05,
            node_insert_frac: 0.05,
            arrival_degree: 3,
            ..ChurnSpec::none()
        };
        let a = churn_delta(&g, &spec, 7).unwrap();
        assert_eq!(a, churn_delta(&g, &spec, 7).unwrap());
        assert_ne!(a, churn_delta(&g, &spec, 8).unwrap());
        assert!(!a.is_empty());
        let out = a.apply(&g).unwrap();
        // 5% of 120 depart and arrive: node count is preserved.
        assert_eq!(out.graph.n(), 120);
    }

    #[test]
    fn churn_respects_intensities() {
        let g = generators::gnp(200, 0.08, 4).unwrap();
        let m = g.m();
        let spec = ChurnSpec::edges(0.25);
        let delta = churn_delta(&g, &spec, 3).unwrap();
        assert_eq!(delta.remove_nodes.len(), 0);
        assert_eq!(delta.add_nodes, 0);
        assert_eq!(delta.remove_edges.len(), m / 4);
        assert_eq!(delta.add_edges.len(), m / 4);
        // Deleted edges are real, distinct edges.
        for &(u, v) in &delta.remove_edges {
            assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn churn_none_is_empty() {
        let g = generators::gnp(50, 0.1, 2).unwrap();
        assert!(ChurnSpec::none().is_none());
        assert!(churn_delta(&g, &ChurnSpec::none(), 1).unwrap().is_empty());
        assert_eq!(ChurnSpec::none().label(), "static");
        assert!(ChurnSpec::nodes(0.1, 2).label().contains("x2"));
    }

    #[test]
    fn churn_on_degenerate_graphs() {
        let spec = ChurnSpec {
            edge_delete_frac: 0.5,
            edge_insert_frac: 0.5,
            node_delete_frac: 0.5,
            node_insert_frac: 0.5,
            arrival_degree: 2,
            ..ChurnSpec::none()
        };
        for n in 0..4 {
            let g = generators::empty(n).unwrap();
            let delta = churn_delta(&g, &spec, 1).unwrap();
            let out = delta.apply(&g).unwrap();
            // No panics, and the result stays within the sampled bounds.
            assert!(out.graph.n() <= n + n / 2 + 1);
        }
    }

    #[test]
    fn churn_rejects_bad_fractions() {
        let g = generators::path(5).unwrap();
        let bad = ChurnSpec { edge_delete_frac: 1.5, ..ChurnSpec::none() };
        assert!(churn_delta(&g, &bad, 0).is_err());
        let bad = ChurnSpec { node_delete_frac: -0.1, ..ChurnSpec::none() };
        assert!(churn_delta(&g, &bad, 0).is_err());
        let bad = ChurnSpec { edge_insert_frac: f64::NAN, ..ChurnSpec::none() };
        assert!(churn_delta(&g, &bad, 0).is_err());
        let bad = ChurnSpec { node_insert_frac: -2.0, ..ChurnSpec::none() };
        assert!(churn_delta(&g, &bad, 0).is_err());
    }

    /// Applies `delta` one event at a time, composing the id mappings.
    fn apply_stepped(g: &Graph, delta: &GraphDelta) -> (Graph, Vec<Option<NodeId>>) {
        let mut graph = g.clone();
        let mut mapping: Vec<Option<NodeId>> = (0..g.n() as NodeId).map(Some).collect();
        for event in delta.events() {
            let out = event.to_delta().apply(&graph).unwrap();
            for slot in mapping.iter_mut() {
                *slot = slot.and_then(|v| out.old_to_new[v as usize]);
            }
            graph = out.graph;
        }
        (graph, mapping)
    }

    #[test]
    fn event_decomposition_reproduces_batch_apply() {
        let g = generators::gnp(60, 0.08, 11).unwrap();
        let spec = ChurnSpec {
            edge_delete_frac: 0.2,
            edge_insert_frac: 0.2,
            node_delete_frac: 0.15,
            node_insert_frac: 0.15,
            arrival_degree: 2,
            ..ChurnSpec::none()
        };
        for seed in 0..8 {
            let delta = churn_delta(&g, &spec, seed).unwrap();
            let batch = delta.apply(&g).unwrap();
            let (stepped, mapping) = apply_stepped(&g, &delta);
            assert_eq!(stepped, batch.graph, "seed {seed}");
            assert_eq!(mapping, batch.old_to_new, "seed {seed}");
            assert_eq!(
                delta.events().len(),
                delta.remove_edges.len()
                    + delta.remove_nodes.len()
                    + delta.add_nodes
                    + delta.add_edges.len()
            );
        }
    }

    #[test]
    fn event_labels_and_deltas() {
        assert_eq!(DeltaEvent::RemoveEdge(0, 1).label(), "edge-del");
        assert_eq!(DeltaEvent::RemoveNode(0).label(), "node-dep");
        assert_eq!(DeltaEvent::AddNode.label(), "node-arr");
        assert_eq!(DeltaEvent::AddEdge(0, 1).label(), "edge-ins");
        assert_eq!(DeltaEvent::AddNode.to_delta().add_nodes, 1);
        assert!(DeltaEvent::RemoveNode(3).to_delta().remove_nodes == vec![3]);
    }

    #[test]
    fn adversarial_churn_targets_mis_members() {
        let g = generators::gnp(100, 0.06, 3).unwrap();
        // A deterministic greedy MIS to aim at.
        let mut in_mis = vec![false; g.n()];
        for v in 0..g.n() {
            if !g.neighbors(v as NodeId).iter().any(|&w| in_mis[w as usize]) {
                in_mis[v] = true;
            }
        }
        let members = in_mis.iter().filter(|&&b| b).count();
        let spec = ChurnSpec { node_delete_frac: 0.1, edge_delete_frac: 0.3, ..ChurnSpec::none() }
            .adversarial();
        let delta = churn_delta_with_mis(&g, &spec, 9, Some(&in_mis)).unwrap();
        // 10% of 100 departures, all drawn from the member pool (which
        // is larger than the draw on this instance).
        assert_eq!(delta.remove_nodes.len(), 10);
        assert!(members > 10, "test instance must have enough members");
        assert!(delta.remove_nodes.iter().all(|&v| in_mis[v as usize]));
        // Every deleted edge touches a member (member-incident edges
        // outnumber the draw: every edge with a dominated endpoint is
        // incident to some member's neighborhood — check the pool).
        let targeted = g.edges().filter(|&(u, v)| in_mis[u as usize] || in_mis[v as usize]).count();
        assert!(targeted >= delta.remove_edges.len());
        assert!(delta.remove_edges.iter().all(|&(u, v)| in_mis[u as usize] || in_mis[v as usize]));
        // Deterministic, and distinct from the uniform draw.
        assert_eq!(delta, churn_delta_with_mis(&g, &spec, 9, Some(&in_mis)).unwrap());
        let uniform =
            churn_delta(&g, &ChurnSpec { model: ChurnModel::Uniform, ..spec }, 9).unwrap();
        assert_ne!(delta, uniform);
        // Without membership the adversarial model degrades to uniform.
        assert_eq!(churn_delta(&g, &spec, 9).unwrap().remove_nodes.len(), 10);
        assert!(spec.label().ends_with("!adv"));
    }

    #[test]
    fn adversarial_draw_falls_back_once_members_exhausted() {
        // Star: 1 member (the center) but 30% of 11 nodes = 3 departures.
        let g = generators::star(11).unwrap();
        let mut in_mis = vec![false; 11];
        in_mis[0] = true;
        let spec = ChurnSpec { node_delete_frac: 0.3, ..ChurnSpec::none() }.adversarial();
        let delta = churn_delta_with_mis(&g, &spec, 2, Some(&in_mis)).unwrap();
        assert_eq!(delta.remove_nodes.len(), 3, "intensity must still be met");
        assert!(delta.remove_nodes.contains(&0), "the lone member goes first");
    }

    #[test]
    fn mismatched_membership_is_rejected() {
        let g = generators::path(5).unwrap();
        let spec = ChurnSpec::edges(0.5).adversarial();
        let short = vec![true; 3];
        assert!(matches!(
            churn_delta_with_mis(&g, &spec, 0, Some(&short)),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn near_complete_graph_insertions_terminate() {
        // Insertion sampling must not spin when almost no non-edge exists.
        let g = generators::clique(12).unwrap();
        let spec = ChurnSpec { edge_insert_frac: 0.9, ..ChurnSpec::none() };
        let delta = churn_delta(&g, &spec, 5).unwrap();
        // Budget-bounded: fewer insertions than requested is acceptable.
        assert!(delta.add_edges.len() <= (0.9 * g.m() as f64) as usize);
        delta.apply(&g).unwrap();
    }
}
