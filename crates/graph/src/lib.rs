//! # sleepy-graph
//!
//! Port-numbered undirected graph substrate for sleeping-model CONGEST
//! simulations, together with deterministic, seedable workload generators.
//!
//! This crate is the workload layer of the reproduction of *"Sleeping is
//! Efficient: MIS in O(1)-rounds Node-averaged Awake Complexity"*
//! (Chatterjee, Gmyr, Pandurangan, PODC 2020). Everything a distributed
//! algorithm sees about the network — node count, per-node port lists, the
//! port-to-neighbor mapping — is provided by [`Graph`].
//!
//! ## Design
//!
//! * Nodes are dense indices `0..n` of type [`NodeId`] (`u32`).
//! * The graph is stored in compressed sparse row (CSR) form with neighbor
//!   lists sorted ascending; *port p of node v* is defined as the p-th entry
//!   of v's sorted neighbor list, matching the CONGEST convention that each
//!   incident edge is attached to a distinct local port.
//! * All generators take an explicit seed and are deterministic across runs
//!   and platforms for a fixed seed.
//!
//! ## Example
//!
//! ```
//! use sleepy_graph::{Graph, generators};
//!
//! let g = generators::cycle(5).unwrap();
//! assert_eq!(g.n(), 5);
//! assert_eq!(g.m(), 5);
//! assert_eq!(g.degree(0), 2);
//! assert_eq!(g.neighbors(0), &[1, 4]);
//! // Port 1 of node 0 leads to node 4:
//! assert_eq!(g.endpoint(0, 1), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod dynamic;
pub mod dyngraph;
mod error;
pub mod generators;
mod graph;
pub mod io;
pub mod ops;

pub use builder::GraphBuilder;
pub use dynamic::{
    churn_delta, churn_delta_with_mis, ChurnModel, ChurnSpec, DeltaEvent, DeltaOutcome, GraphDelta,
};
pub use dyngraph::DynGraph;
pub use error::GraphError;
pub use generators::GraphFamily;
pub use graph::{DegreeStats, Graph, NodeId, Port};
