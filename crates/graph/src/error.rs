//! Error types for graph construction and generation.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing or generating a [`Graph`](crate::Graph).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: u64,
        /// The number of nodes in the graph under construction.
        n: usize,
    },
    /// An edge connected a node to itself; simple graphs only.
    SelfLoop {
        /// The node with the self loop.
        node: u32,
    },
    /// The requested node count exceeds the `u32` index space.
    TooManyNodes {
        /// The requested node count.
        n: usize,
    },
    /// A generator received parameters it cannot satisfy
    /// (e.g. a d-regular graph with `n * d` odd, or `d >= n`).
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A randomized generator exhausted its retry budget without producing
    /// a valid graph (e.g. the configuration model for random regular
    /// graphs kept producing self loops or parallel edges).
    GenerationFailed {
        /// Which generator failed.
        generator: &'static str,
        /// Number of attempts made.
        attempts: usize,
    },
    /// Text input could not be parsed as an edge list.
    Parse {
        /// 1-based line number of the malformed input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self loop at node {node}"),
            GraphError::TooManyNodes { n } => {
                write!(f, "requested {n} nodes, exceeding the u32 index space")
            }
            GraphError::InvalidParameter { reason } => {
                write!(f, "invalid generator parameter: {reason}")
            }
            GraphError::GenerationFailed { generator, attempts } => {
                write!(f, "generator `{generator}` failed after {attempts} attempts")
            }
            GraphError::Parse { line, reason } => {
                write!(f, "edge list parse error on line {line}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errs = [
            GraphError::NodeOutOfRange { node: 9, n: 3 },
            GraphError::SelfLoop { node: 1 },
            GraphError::TooManyNodes { n: usize::MAX },
            GraphError::InvalidParameter { reason: "d >= n".into() },
            GraphError::GenerationFailed { generator: "random_regular", attempts: 100 },
            GraphError::Parse { line: 2, reason: "missing endpoint".into() },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("generator"));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
