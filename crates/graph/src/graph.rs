//! The CSR-backed undirected simple graph.

use crate::error::GraphError;
use serde::{Deserialize, Serialize};

/// Dense node identifier. Nodes of an `n`-node graph are `0..n as NodeId`.
pub type NodeId = u32;

/// Local port number of a node: `0..degree(v)`. Port `p` of node `v` is
/// attached to the edge leading to the p-th smallest neighbor of `v`.
pub type Port = usize;

/// An immutable, undirected, simple graph in compressed sparse row form.
///
/// Neighbor lists are sorted ascending, which fixes the CONGEST port
/// numbering: port `p` of `v` leads to `neighbors(v)[p]`.
///
/// Construct with [`Graph::from_edges`], [`GraphBuilder`](crate::GraphBuilder)
/// or one of the [`generators`](crate::generators).
///
/// # Example
///
/// ```
/// use sleepy_graph::Graph;
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert!(g.has_edge(0, 3));
/// assert!(!g.has_edge(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    n: usize,
    /// CSR offsets; `offsets[v]..offsets[v + 1]` indexes `adj`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    adj: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an edge iterator.
    ///
    /// Duplicate edges (in either orientation) are collapsed. Edge order does
    /// not affect the result.
    ///
    /// # Errors
    ///
    /// * [`GraphError::TooManyNodes`] if `n` exceeds the `u32` index space.
    /// * [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if an edge connects a node to itself.
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        if n > u32::MAX as usize {
            return Err(GraphError::TooManyNodes { n });
        }
        let mut deg = vec![0usize; n];
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
        for (u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u as u64, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v as u64, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            pairs.push((a, b));
        }
        pairs.sort_unstable();
        pairs.dedup();
        for &(a, b) in &pairs {
            deg[a as usize] += 1;
            deg[b as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &d in deg.iter().take(n) {
            acc += d;
            offsets.push(acc);
        }
        let mut adj = vec![0 as NodeId; acc];
        let mut cursor = offsets[..n].to_vec();
        for &(a, b) in &pairs {
            adj[cursor[a as usize]] = b;
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = a;
            cursor[b as usize] += 1;
        }
        // Each per-node slice is filled in ascending order of the partner id
        // for the `a` side; the `b` side receives partners in ascending order
        // of `a` as well because `pairs` is sorted by (a, b). Both sides are
        // therefore already sorted, but we assert it in debug builds.
        #[cfg(debug_assertions)]
        for v in 0..n {
            debug_assert!(adj[offsets[v]..offsets[v + 1]].windows(2).all(|w| w[0] < w[1]));
        }
        Ok(Graph { n, offsets, adj })
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.len() / 2
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of `v`. Port `p` of `v` leads to `neighbors(v)[p]`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        &self.adj[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The neighbor reached through port `p` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `p >= degree(v)`.
    #[inline]
    pub fn endpoint(&self, v: NodeId, p: Port) -> NodeId {
        self.neighbors(v)[p]
    }

    /// The port of `v` whose edge leads to `u`, if `{u, v}` is an edge.
    pub fn port_to(&self, v: NodeId, u: NodeId) -> Option<Port> {
        self.neighbors(v).binary_search(&u).ok()
    }

    /// Whether `{u, v}` is an edge.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        // Search from the lower-degree endpoint.
        let (a, b) = if self.degree(u) <= self.degree(v) { (u, v) } else { (v, u) };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Iterator over all node ids `0..n`.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.n as NodeId
    }

    /// Iterator over all undirected edges as `(u, v)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.n as NodeId).flat_map(move |u| {
            self.neighbors(u).iter().copied().filter(move |&v| u < v).map(move |v| (u, v))
        })
    }

    /// Maximum degree Δ, or 0 for the empty graph.
    pub fn max_degree(&self) -> usize {
        (0..self.n as NodeId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Summary degree statistics.
    pub fn degree_stats(&self) -> DegreeStats {
        if self.n == 0 {
            return DegreeStats { min: 0, max: 0, mean: 0.0, isolated: 0 };
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut isolated = 0usize;
        for v in 0..self.n as NodeId {
            let d = self.degree(v);
            min = min.min(d);
            max = max.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        DegreeStats { min, max, mean: 2.0 * self.m() as f64 / self.n as f64, isolated }
    }

    /// Builds the subgraph induced by `keep` (where `keep[v]` marks kept
    /// nodes), returning the subgraph together with the mapping from new
    /// ids to original ids.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != n`.
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(keep.len(), self.n, "keep mask length must equal n");
        let mut new_id = vec![NodeId::MAX; self.n];
        let mut orig = Vec::new();
        for v in 0..self.n {
            if keep[v] {
                new_id[v] = orig.len() as NodeId;
                orig.push(v as NodeId);
            }
        }
        let mut edges = Vec::new();
        for &(u, v) in self.edges().collect::<Vec<_>>().iter() {
            if keep[u as usize] && keep[v as usize] {
                edges.push((new_id[u as usize], new_id[v as usize]));
            }
        }
        let g = Graph::from_edges(orig.len(), edges).expect("induced subgraph edges are valid");
        (g, orig)
    }
}

/// Degree summary returned by [`Graph::degree_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree Δ.
    pub max: usize,
    /// Mean degree 2m/n.
    pub mean: f64,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = k4();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 6);
        assert_eq!(g.max_degree(), 3);
        for v in 0..4 {
            assert_eq!(g.degree(v), 3);
        }
    }

    #[test]
    fn neighbors_sorted_and_ports_consistent() {
        let g = Graph::from_edges(5, [(3, 1), (3, 0), (3, 4), (3, 2)]).unwrap();
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        for p in 0..g.degree(3) {
            let u = g.endpoint(3, p);
            assert_eq!(g.port_to(3, u), Some(p));
        }
        assert_eq!(g.port_to(3, 3), None);
        assert_eq!(g.port_to(0, 1), None);
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.m(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(3, [(1, 1)]).unwrap_err(), GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(matches!(
            Graph::from_edges(3, [(0, 7)]).unwrap_err(),
            GraphError::NodeOutOfRange { node: 7, n: 3 }
        ));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_allowed() {
        let g = Graph::from_edges(5, [(0, 1)]).unwrap();
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.degree_stats().isolated, 3);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn has_edge_symmetric() {
        let g = k4();
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
                assert_eq!(g.has_edge(u, v), u != v);
            }
        }
    }

    #[test]
    fn edges_iterator_lexicographic() {
        let g = k4();
        let e: Vec<_> = g.edges().collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn induced_subgraph_drops_edges() {
        let g = k4();
        let (sub, orig) = g.induced_subgraph(&[true, false, true, true]);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 3); // triangle on {0,2,3}
        assert_eq!(orig, vec![0, 2, 3]);
    }

    #[test]
    fn degree_stats_mean() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
        let s = g.degree_stats();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert!((s.mean - 1.0).abs() < 1e-12);
        assert_eq!(s.isolated, 1);
    }
}
