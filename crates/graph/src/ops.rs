//! Graph algorithms used by the experiment harness and verifiers:
//! traversal, connectivity, and degeneracy/arboricity bounds.

use crate::graph::{Graph, NodeId};

/// BFS distances from `source`; unreachable nodes get `usize::MAX`.
///
/// # Panics
///
/// Panics if `source >= n`.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<usize> {
    assert!((source as usize) < g.n(), "source out of range");
    let mut dist = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &v in g.neighbors(u) {
            if dist[v as usize] == usize::MAX {
                dist[v as usize] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected-component labels (0-based, in order of first discovery) and the
/// number of components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let mut label = vec![usize::MAX; g.n()];
    let mut count = 0usize;
    let mut stack = Vec::new();
    for s in 0..g.n() as NodeId {
        if label[s as usize] != usize::MAX {
            continue;
        }
        label[s as usize] = count;
        stack.push(s);
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if label[v as usize] == usize::MAX {
                    label[v as usize] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// Whether the graph is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    connected_components(g).1 == 1
}

/// The degeneracy of the graph and a degeneracy ordering (each node has at
/// most `degeneracy` neighbors later in the ordering).
///
/// Degeneracy `d` sandwiches the arboricity `a` of Barenboim–Tzur's
/// node-averaged bound: `a ≤ d ≤ 2a − 1`. Computed with the standard
/// bucket-queue peeling in O(n + m).
pub fn degeneracy(g: &Graph) -> (usize, Vec<NodeId>) {
    let n = g.n();
    if n == 0 {
        return (0, Vec::new());
    }
    let mut deg: Vec<usize> = (0..n as NodeId).map(|v| g.degree(v)).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as NodeId {
        buckets[deg[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the smallest non-empty bucket at or above `cursor` going down
        // to zero first (degrees only decrease, but the minimum can drop).
        cursor = cursor.min(max_deg);
        while cursor <= max_deg && buckets[cursor].is_empty() {
            cursor += 1;
        }
        // A removal may have pushed nodes into lower buckets; rescan.
        if let Some(min_nonempty) = (0..cursor.min(max_deg)).find(|&b| !buckets[b].is_empty()) {
            cursor = min_nonempty;
        }
        let v = loop {
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && deg[v as usize] == cursor => break v,
                Some(_) => continue, // stale entry
                None => {
                    cursor = (0..=max_deg)
                        .find(|&b| !buckets[b].is_empty())
                        .expect("bucket queue exhausted before all nodes were peeled");
                }
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cursor);
        order.push(v);
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                deg[u as usize] -= 1;
                buckets[deg[u as usize]].push(u);
            }
        }
    }
    (degeneracy, order)
}

/// Lower and upper bounds on the arboricity derived from the degeneracy `d`:
/// `ceil((d + 1) / 2) ≤ a ≤ d` (and `a ≥ 1` whenever the graph has an edge).
pub fn arboricity_bounds(g: &Graph) -> (usize, usize) {
    let (d, _) = degeneracy(g);
    if g.m() == 0 {
        return (0, 0);
    }
    (d.div_ceil(2).max(1), d.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path() {
        let g = generators::path(5).unwrap();
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], usize::MAX);
    }

    #[test]
    fn components_counts() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_ne!(labels[5], labels[0]);
    }

    #[test]
    fn connectivity() {
        assert!(is_connected(&generators::cycle(8).unwrap()));
        assert!(!is_connected(&generators::empty(3).unwrap()));
        assert!(is_connected(&generators::empty(0).unwrap()));
        assert!(is_connected(&generators::empty(1).unwrap()));
    }

    #[test]
    fn degeneracy_of_standard_graphs() {
        assert_eq!(degeneracy(&generators::clique(6).unwrap()).0, 5);
        assert_eq!(degeneracy(&generators::cycle(10).unwrap()).0, 2);
        assert_eq!(degeneracy(&generators::path(10).unwrap()).0, 1);
        assert_eq!(degeneracy(&generators::star(10).unwrap()).0, 1);
        assert_eq!(degeneracy(&generators::empty(5).unwrap()).0, 0);
        assert_eq!(degeneracy(&generators::grid2d(5, 5).unwrap()).0, 2);
    }

    #[test]
    fn degeneracy_ordering_property() {
        let g = generators::gnp(80, 0.1, 3).unwrap();
        let (d, order) = degeneracy(&g);
        assert_eq!(order.len(), g.n());
        let mut pos = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for &v in &order {
            let later =
                g.neighbors(v).iter().filter(|&&u| pos[u as usize] > pos[v as usize]).count();
            assert!(later <= d, "node {v} has {later} later neighbors > degeneracy {d}");
        }
    }

    #[test]
    fn arboricity_bounds_sane() {
        let (lo, hi) = arboricity_bounds(&generators::clique(8).unwrap());
        assert!(lo <= 4 && hi >= 4, "K8 arboricity is 4, got [{lo}, {hi}]");
        assert_eq!(arboricity_bounds(&generators::empty(5).unwrap()), (0, 0));
        let (lo, hi) = arboricity_bounds(&generators::random_tree(50, 1).unwrap());
        assert_eq!((lo, hi), (1, 1));
    }
}
