//! Erdős–Rényi G(n, p) random graphs.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples G(n, p): each of the n·(n−1)/2 possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skip sampling (Batagelj–Brandes), so the running time is
/// O(n + m) rather than O(n²) for sparse graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `p` is not in `[0, 1]` or is
/// not finite.
///
/// # Example
///
/// ```
/// use sleepy_graph::generators::gnp;
/// let g = gnp(50, 0.1, 7)?;
/// assert_eq!(g.n(), 50);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
pub fn gnp(n: usize, p: f64, seed: u64) -> Result<Graph, GraphError> {
    if !p.is_finite() || !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameter {
            reason: format!("edge probability p={p} must lie in [0, 1]"),
        });
    }
    if n <= 1 || p == 0.0 {
        return Graph::from_edges(n, []);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    if p >= 1.0 {
        for u in 0..n as NodeId {
            for v in (u + 1)..n as NodeId {
                edges.push((u, v));
            }
        }
        return Graph::from_edges(n, edges);
    }
    // Walk the strictly-upper-triangular adjacency in row-major order,
    // jumping ahead by geometrically distributed gaps.
    let log_q = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        w += 1 + (r.ln() / log_q).floor() as i64;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            edges.push((w as NodeId, v as NodeId));
        }
    }
    Graph::from_edges(n, edges)
}

/// Samples G(n, p) with `p = min(1, avg_degree / (n - 1))`, so the expected
/// average degree is (approximately) `avg_degree`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `avg_degree` is negative or
/// not finite.
pub fn gnp_avg_degree(n: usize, avg_degree: f64, seed: u64) -> Result<Graph, GraphError> {
    if !avg_degree.is_finite() || avg_degree < 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("average degree {avg_degree} must be a nonnegative finite number"),
        });
    }
    if n <= 1 {
        return Graph::from_edges(n, []);
    }
    let p = (avg_degree / (n - 1) as f64).min(1.0);
    gnp(n, p, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p_zero_is_empty_and_p_one_is_complete() {
        let g = gnp(20, 0.0, 1).unwrap();
        assert_eq!(g.m(), 0);
        let g = gnp(20, 1.0, 1).unwrap();
        assert_eq!(g.m(), 20 * 19 / 2);
    }

    #[test]
    fn rejects_bad_p() {
        assert!(gnp(5, -0.1, 0).is_err());
        assert!(gnp(5, 1.5, 0).is_err());
        assert!(gnp(5, f64::NAN, 0).is_err());
    }

    #[test]
    fn edge_count_near_expectation() {
        // n=400, p=0.05: E[m] = 0.05 * 400*399/2 = 3990. Std dev ~ 61.6.
        let g = gnp(400, 0.05, 99).unwrap();
        let expected = 0.05 * (400.0 * 399.0 / 2.0);
        let sd = (expected * 0.95_f64).sqrt();
        assert!(
            (g.m() as f64 - expected).abs() < 6.0 * sd,
            "m = {} far from expectation {expected}",
            g.m()
        );
    }

    #[test]
    fn avg_degree_hits_target() {
        let g = gnp_avg_degree(1000, 6.0, 5).unwrap();
        let mean = g.degree_stats().mean;
        assert!((mean - 6.0).abs() < 1.0, "mean degree {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(gnp(100, 0.07, 3).unwrap(), gnp(100, 0.07, 3).unwrap());
        assert_ne!(gnp(100, 0.07, 3).unwrap(), gnp(100, 0.07, 4).unwrap());
    }

    #[test]
    fn tiny_graphs() {
        assert_eq!(gnp(0, 0.5, 0).unwrap().n(), 0);
        assert_eq!(gnp(1, 0.5, 0).unwrap().m(), 0);
        let g = gnp(2, 1.0, 0).unwrap();
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn avg_degree_larger_than_n_saturates() {
        let g = gnp_avg_degree(10, 100.0, 0).unwrap();
        assert_eq!(g.m(), 45); // complete
    }
}
