//! Barabási–Albert preferential attachment (power-law degree) graphs.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples a Barabási–Albert preferential-attachment graph: starting from a
/// clique on `m + 1` nodes, each subsequent node attaches to `m` distinct
/// existing nodes chosen with probability proportional to their degree.
///
/// The resulting degree distribution follows a power law with exponent ≈ 3;
/// such graphs have hubs of degree Θ(√n), exercising the high-Δ regime where
/// the worst-case lower bounds discussed in the paper bite.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `m == 0` while `n > 1`.
///
/// # Example
///
/// ```
/// use sleepy_graph::generators::barabasi_albert;
/// let g = barabasi_albert(100, 2, 5)?;
/// assert_eq!(g.n(), 100);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Result<Graph, GraphError> {
    if n <= 1 {
        return Graph::from_edges(n, []);
    }
    if m == 0 {
        return Err(GraphError::InvalidParameter {
            reason: "Barabási–Albert attachment count m must be >= 1".to_string(),
        });
    }
    let m = m.min(n - 1);
    let mut rng = SmallRng::seed_from_u64(seed);
    // `targets` holds every edge endpoint once per incidence, so sampling a
    // uniform element of `targets` is degree-proportional sampling.
    let mut targets: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m);
    let seed_nodes = m + 1;
    for u in 0..seed_nodes.min(n) as NodeId {
        for v in (u + 1)..seed_nodes.min(n) as NodeId {
            edges.push((u, v));
            targets.push(u);
            targets.push(v);
        }
    }
    for v in seed_nodes..n {
        let v = v as NodeId;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
        // Rejection-sample m distinct degree-proportional targets.
        while chosen.len() < m {
            let t = targets[rng.gen_range(0..targets.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((t, v));
            targets.push(t);
            targets.push(v);
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn node_and_edge_counts() {
        let (n, m) = (200, 3);
        let g = barabasi_albert(n, m, 9).unwrap();
        assert_eq!(g.n(), n);
        // clique on m+1 nodes + m edges per remaining node
        assert_eq!(g.m(), m * (m + 1) / 2 + (n - m - 1) * m);
    }

    #[test]
    fn connected_and_min_degree_m() {
        let g = barabasi_albert(150, 2, 4).unwrap();
        assert!(ops::is_connected(&g));
        assert!(g.node_ids().all(|v| g.degree(v) >= 2));
    }

    #[test]
    fn hubs_emerge() {
        let g = barabasi_albert(600, 2, 11).unwrap();
        // Power-law graphs have max degree far above the mean (4).
        assert!(g.max_degree() > 20, "max degree {} suspiciously small", g.max_degree());
    }

    #[test]
    fn rejects_m_zero() {
        assert!(barabasi_albert(10, 0, 0).is_err());
    }

    #[test]
    fn degenerate() {
        assert_eq!(barabasi_albert(0, 2, 0).unwrap().n(), 0);
        assert_eq!(barabasi_albert(1, 2, 0).unwrap().m(), 0);
        // n=3, m=2 -> m clamped to 2, seed clique of 3 = triangle
        let g = barabasi_albert(3, 2, 0).unwrap();
        assert_eq!(g.m(), 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(80, 2, 3).unwrap(), barabasi_albert(80, 2, 3).unwrap());
    }
}
