//! Deterministic, seedable graph generators.
//!
//! Every randomized generator takes an explicit `seed: u64` and produces the
//! same graph for the same `(parameters, seed)` pair on every platform.
//!
//! The [`GraphFamily`] enum provides a uniform handle used by the experiment
//! harness to sweep workloads: a family plus `(n, seed)` yields a graph.

mod geometric;
mod gnp;
mod powerlaw;
mod regular;
mod structured;
mod trees;

pub use geometric::{radius_for_avg_degree, random_geometric};
pub use gnp::{gnp, gnp_avg_degree};
pub use powerlaw::barabasi_albert;
pub use regular::random_regular;
pub use structured::{clique, complete_bipartite, cycle, empty, grid2d, hypercube, path, star};
pub use trees::{balanced_binary_tree, random_tree};

use crate::error::GraphError;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parameterized family of graphs, used by the harness to generate
/// workloads of varying size with one description.
///
/// # Example
///
/// ```
/// use sleepy_graph::GraphFamily;
///
/// let fam = GraphFamily::GnpAvgDeg(4.0);
/// let g = fam.generate(100, 42)?;
/// assert_eq!(g.n(), 100);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum GraphFamily {
    /// Erdős–Rényi G(n, p) with p chosen so the expected average degree is
    /// the given constant (sparse regime).
    GnpAvgDeg(f64),
    /// Erdős–Rényi G(n, p) with p = min(1, c·ln n / n); with c > 1 the graph
    /// is connected with high probability.
    GnpLogDensity(f64),
    /// Random d-regular graph from the configuration model.
    RandomRegular(usize),
    /// Random geometric graph on the unit square with radius chosen for the
    /// given expected average degree — the ad-hoc wireless / sensor-network
    /// topology motivating the paper.
    GeometricAvgDeg(f64),
    /// Barabási–Albert preferential attachment, each new node bringing
    /// the given number of edges (power-law degrees).
    BarabasiAlbert(usize),
    /// Uniformly random recursive tree.
    Tree,
    /// Simple cycle C_n.
    Cycle,
    /// Simple path P_n.
    Path,
    /// Star K_{1,n-1}.
    Star,
    /// Complete graph K_n.
    Clique,
    /// Near-square 2D grid (`⌊√n⌋ × ⌊n/⌊√n⌋⌋` — may have slightly fewer
    /// than n nodes).
    Grid2d,
    /// Hypercube on the largest power of two that is at most n
    /// (the generated graph may have fewer than n nodes).
    Hypercube,
    /// Edgeless graph (every node isolated).
    Empty,
}

impl GraphFamily {
    /// Generates an instance of this family with `n` nodes (or, for
    /// [`GraphFamily::Hypercube`], the largest power of two at most `n`).
    ///
    /// # Errors
    ///
    /// Propagates the underlying generator error, e.g.
    /// [`GraphError::InvalidParameter`] for an infeasible degree.
    pub fn generate(&self, n: usize, seed: u64) -> Result<Graph, GraphError> {
        match *self {
            GraphFamily::GnpAvgDeg(d) => gnp_avg_degree(n, d, seed),
            GraphFamily::GnpLogDensity(c) => {
                let p = if n <= 1 { 0.0 } else { (c * (n as f64).ln() / n as f64).min(1.0) };
                gnp(n, p, seed)
            }
            GraphFamily::RandomRegular(d) => {
                // Keep d feasible for small n so sweeps do not error out.
                let d_eff = d.min(n.saturating_sub(1));
                let d_eff = if n * d_eff % 2 == 1 { d_eff.saturating_sub(1) } else { d_eff };
                random_regular(n, d_eff, seed)
            }
            GraphFamily::GeometricAvgDeg(d) => {
                random_geometric(n, radius_for_avg_degree(n, d), seed)
            }
            GraphFamily::BarabasiAlbert(m) => barabasi_albert(n, m, seed),
            GraphFamily::Tree => random_tree(n, seed),
            GraphFamily::Cycle => cycle(n),
            GraphFamily::Path => path(n),
            GraphFamily::Star => star(n),
            GraphFamily::Clique => clique(n),
            GraphFamily::Grid2d => {
                if n == 0 {
                    return empty(0);
                }
                let rows = ((n as f64).sqrt().floor() as usize).max(1);
                let cols = (n / rows).max(1);
                grid2d(rows, cols)
            }
            GraphFamily::Hypercube => {
                if n == 0 {
                    return empty(0);
                }
                let dim = if n == 1 { 0 } else { n.ilog2() as usize };
                hypercube(dim)
            }
            GraphFamily::Empty => empty(n),
        }
    }

    /// Short stable identifier used in reports and file names.
    pub fn label(&self) -> String {
        match *self {
            GraphFamily::GnpAvgDeg(d) => format!("gnp-avg{d}"),
            GraphFamily::GnpLogDensity(c) => format!("gnp-logn-c{c}"),
            GraphFamily::RandomRegular(d) => format!("regular-{d}"),
            GraphFamily::GeometricAvgDeg(d) => format!("geometric-avg{d}"),
            GraphFamily::BarabasiAlbert(m) => format!("ba-{m}"),
            GraphFamily::Tree => "tree".to_string(),
            GraphFamily::Cycle => "cycle".to_string(),
            GraphFamily::Path => "path".to_string(),
            GraphFamily::Star => "star".to_string(),
            GraphFamily::Clique => "clique".to_string(),
            GraphFamily::Grid2d => "grid2d".to_string(),
            GraphFamily::Hypercube => "hypercube".to_string(),
            GraphFamily::Empty => "empty".to_string(),
        }
    }
}

impl fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_generate() {
        let fams = [
            GraphFamily::GnpAvgDeg(4.0),
            GraphFamily::GnpLogDensity(2.0),
            GraphFamily::RandomRegular(3),
            GraphFamily::GeometricAvgDeg(5.0),
            GraphFamily::BarabasiAlbert(2),
            GraphFamily::Tree,
            GraphFamily::Cycle,
            GraphFamily::Path,
            GraphFamily::Star,
            GraphFamily::Clique,
            GraphFamily::Grid2d,
            GraphFamily::Hypercube,
            GraphFamily::Empty,
        ];
        for fam in fams {
            let g = fam.generate(32, 7).unwrap_or_else(|e| panic!("{fam}: {e}"));
            assert!(g.n() >= 16, "{fam} produced only {} nodes", g.n());
            assert!(!fam.label().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for fam in [
            GraphFamily::GnpAvgDeg(3.0),
            GraphFamily::RandomRegular(4),
            GraphFamily::GeometricAvgDeg(4.0),
            GraphFamily::BarabasiAlbert(2),
            GraphFamily::Tree,
        ] {
            let a = fam.generate(64, 123).unwrap();
            let b = fam.generate(64, 123).unwrap();
            assert_eq!(a, b, "{fam} not deterministic");
            let c = fam.generate(64, 124).unwrap();
            // Overwhelmingly likely to differ for randomized families.
            assert_ne!(a, c, "{fam} ignored seed");
        }
    }

    /// Every family the dynamic/churn path can hand a tiny or emptied
    /// instance to. Regression: Grid2d and Hypercube used to return a
    /// 1-node graph for n = 0.
    const ALL_FAMILIES: [GraphFamily; 13] = [
        GraphFamily::GnpAvgDeg(4.0),
        GraphFamily::GnpLogDensity(1.5),
        GraphFamily::RandomRegular(3),
        GraphFamily::GeometricAvgDeg(5.0),
        GraphFamily::BarabasiAlbert(2),
        GraphFamily::Tree,
        GraphFamily::Cycle,
        GraphFamily::Path,
        GraphFamily::Star,
        GraphFamily::Clique,
        GraphFamily::Grid2d,
        GraphFamily::Hypercube,
        GraphFamily::Empty,
    ];

    #[test]
    fn small_n_does_not_error() {
        for fam in ALL_FAMILIES {
            for n in 0..6 {
                let g = fam.generate(n, 1).unwrap_or_else(|e| panic!("{fam} n={n}: {e}"));
                assert!(g.n() <= n, "{fam} n={n} produced {} nodes", g.n());
            }
        }
    }

    #[test]
    fn n_zero_yields_the_empty_graph_everywhere() {
        for fam in ALL_FAMILIES {
            let g = fam.generate(0, 1).unwrap_or_else(|e| panic!("{fam}: {e}"));
            assert_eq!(g.n(), 0, "{fam} must produce the 0-node graph for n = 0");
            assert_eq!(g.m(), 0);
        }
    }
}
