//! Tree generators.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples a uniformly random recursive tree: node `v` (for `v ≥ 1`)
/// attaches to a uniformly random node in `0..v`.
///
/// Recursive trees have expected depth O(log n) and a heavy-ish degree
/// skew at early nodes, making them a good low-arboricity workload
/// (arboricity 1) for the node-averaged complexity experiments.
///
/// # Example
///
/// ```
/// use sleepy_graph::generators::random_tree;
/// let g = random_tree(10, 3)?;
/// assert_eq!(g.m(), 9);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
pub fn random_tree(n: usize, seed: u64) -> Result<Graph, GraphError> {
    if n <= 1 {
        return Graph::from_edges(n, []);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let edges = (1..n as NodeId).map(|v| {
        let parent = rng.gen_range(0..v);
        (parent, v)
    });
    // Collect eagerly: `from_edges` takes the iterator, but we need the
    // RNG borrow to end before the call in some compilers' view; also this
    // keeps error paths simple.
    let edges: Vec<_> = edges.collect();
    Graph::from_edges(n, edges)
}

/// The complete binary tree on `n` nodes in heap layout: node `v ≥ 1`
/// attaches to `(v − 1) / 2`.
pub fn balanced_binary_tree(n: usize) -> Result<Graph, GraphError> {
    Graph::from_edges(n, (1..n as NodeId).map(|v| ((v - 1) / 2, v)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn tree_has_n_minus_1_edges_and_is_connected() {
        for n in [1, 2, 3, 10, 100] {
            let g = random_tree(n, 42).unwrap();
            assert_eq!(g.m(), n.saturating_sub(1));
            assert!(ops::is_connected(&g), "n={n}");
        }
    }

    #[test]
    fn binary_tree_shape() {
        let g = balanced_binary_tree(7).unwrap();
        assert_eq!(g.m(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(6), 1);
        assert!(ops::is_connected(&g));
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_tree(50, 1).unwrap(), random_tree(50, 1).unwrap());
        assert_ne!(random_tree(50, 1).unwrap(), random_tree(50, 2).unwrap());
    }

    #[test]
    fn empty_and_single() {
        assert_eq!(random_tree(0, 0).unwrap().n(), 0);
        assert_eq!(random_tree(1, 0).unwrap().m(), 0);
        assert_eq!(balanced_binary_tree(1).unwrap().m(), 0);
    }
}
