//! Deterministic structured topologies: paths, cycles, stars, cliques,
//! bipartite graphs, grids, and hypercubes.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// The edgeless graph on `n` nodes (every node isolated).
pub fn empty(n: usize) -> Result<Graph, GraphError> {
    Graph::from_edges(n, [])
}

/// The path P_n: `0 — 1 — … — n−1`.
pub fn path(n: usize) -> Result<Graph, GraphError> {
    Graph::from_edges(n, (1..n as NodeId).map(|v| (v - 1, v)))
}

/// The cycle C_n (for `n < 3` this degenerates to a path).
pub fn cycle(n: usize) -> Result<Graph, GraphError> {
    if n < 3 {
        return path(n);
    }
    let mut edges: Vec<(NodeId, NodeId)> = (1..n as NodeId).map(|v| (v - 1, v)).collect();
    edges.push((0, n as NodeId - 1));
    Graph::from_edges(n, edges)
}

/// The star K_{1,n−1}: node 0 is the hub.
pub fn star(n: usize) -> Result<Graph, GraphError> {
    Graph::from_edges(n, (1..n as NodeId).map(|v| (0, v)))
}

/// The complete graph K_n.
pub fn clique(n: usize) -> Result<Graph, GraphError> {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// The complete bipartite graph K_{a,b}; the first `a` nodes form one side.
pub fn complete_bipartite(a: usize, b: usize) -> Result<Graph, GraphError> {
    let n = a + b;
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as NodeId {
        for v in a as NodeId..n as NodeId {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, edges)
}

/// A `rows × cols` 2D grid; node `(r, c)` has index `r * cols + c`.
pub fn grid2d(rows: usize, cols: usize) -> Result<Graph, GraphError> {
    let n = rows * cols;
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// The `dim`-dimensional hypercube Q_dim on 2^dim nodes; nodes are adjacent
/// iff their indices differ in exactly one bit.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `dim > 31` (index overflow).
pub fn hypercube(dim: usize) -> Result<Graph, GraphError> {
    if dim > 31 {
        return Err(GraphError::InvalidParameter {
            reason: format!("hypercube dimension {dim} exceeds 31"),
        });
    }
    let n = 1usize << dim;
    let mut edges = Vec::with_capacity(n * dim / 2);
    for u in 0..n {
        for bit in 0..dim {
            let v = u ^ (1 << bit);
            if u < v {
                edges.push((u as NodeId, v as NodeId));
            }
        }
    }
    Graph::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn path_shape() {
        let g = path(5).unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(ops::is_connected(&g));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6).unwrap();
        assert_eq!(g.m(), 6);
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(0, 5));
        // Degenerate cases fall back to paths.
        assert_eq!(cycle(2).unwrap().m(), 1);
        assert_eq!(cycle(1).unwrap().m(), 0);
    }

    #[test]
    fn star_shape() {
        let g = star(7).unwrap();
        assert_eq!(g.degree(0), 6);
        for v in 1..7 {
            assert_eq!(g.degree(v), 1);
        }
    }

    #[test]
    fn clique_shape() {
        let g = clique(6).unwrap();
        assert_eq!(g.m(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(3, 4).unwrap();
        assert_eq!(g.n(), 7);
        assert_eq!(g.m(), 12);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn grid_shape() {
        let g = grid2d(3, 4).unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // horizontal + vertical
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior (1,1)
        assert!(ops::is_connected(&g));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(4).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 32);
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(hypercube(40).is_err());
        assert_eq!(hypercube(0).unwrap().n(), 1);
    }

    #[test]
    fn zero_sized() {
        assert_eq!(path(0).unwrap().n(), 0);
        assert_eq!(star(0).unwrap().n(), 0);
        assert_eq!(clique(0).unwrap().n(), 0);
        assert_eq!(grid2d(0, 5).unwrap().n(), 0);
    }
}
