//! Random geometric graphs — the ad-hoc wireless / sensor-network topology.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples a random geometric graph: `n` points uniform on the unit square,
/// with an edge between every pair at Euclidean distance at most `radius`.
///
/// This is the standard model of an ad-hoc wireless or sensor network — the
/// setting whose energy constraints motivate the sleeping model (paper §1.1).
/// Uses a bucket grid of cell width `radius`, so the expected running time is
/// O(n + m).
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] if `radius` is negative or not
/// finite.
///
/// # Example
///
/// ```
/// use sleepy_graph::generators::{radius_for_avg_degree, random_geometric};
/// let r = radius_for_avg_degree(200, 6.0);
/// let g = random_geometric(200, r, 7)?;
/// assert_eq!(g.n(), 200);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Result<Graph, GraphError> {
    if !radius.is_finite() || radius < 0.0 {
        return Err(GraphError::InvalidParameter {
            reason: format!("geometric radius {radius} must be a nonnegative finite number"),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    if n == 0 || radius == 0.0 {
        return Graph::from_edges(n, []);
    }
    // Bucket grid with cell width >= radius: all neighbors of a point lie in
    // its own or the 8 adjacent cells.
    let cells = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<NodeId>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i as NodeId);
    }
    let r2 = radius * radius;
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x), cell_of(y));
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells as i64 || ny >= cells as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = pts[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        edges.push((i as NodeId, j));
                    }
                }
            }
        }
    }
    Graph::from_edges(n, edges)
}

/// The connection radius for which a random geometric graph on the unit
/// square has expected average degree approximately `avg_degree`
/// (ignoring boundary effects): `r = sqrt(avg_degree / (π·(n−1)))`, capped
/// at `sqrt(2)` (every pair connected).
pub fn radius_for_avg_degree(n: usize, avg_degree: f64) -> f64 {
    if n <= 1 || avg_degree <= 0.0 {
        return 0.0;
    }
    (avg_degree / (std::f64::consts::PI * (n - 1) as f64)).sqrt().min(std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radius_zero_is_empty() {
        let g = random_geometric(50, 0.0, 1).unwrap();
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn radius_sqrt2_is_complete() {
        let g = random_geometric(20, std::f64::consts::SQRT_2 + 0.01, 1).unwrap();
        assert_eq!(g.m(), 20 * 19 / 2);
    }

    #[test]
    fn rejects_bad_radius() {
        assert!(random_geometric(5, -1.0, 0).is_err());
        assert!(random_geometric(5, f64::NAN, 0).is_err());
    }

    #[test]
    fn bucket_grid_matches_brute_force() {
        let n = 120;
        let r = 0.17;
        let g = random_geometric(n, r, 33).unwrap();
        // Recompute points with the same RNG stream and brute-force edges.
        let mut rng = SmallRng::seed_from_u64(33);
        let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
        let mut brute = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (pts[i].0 - pts[j].0, pts[i].1 - pts[j].1);
                if dx * dx + dy * dy <= r * r {
                    brute.push((i as NodeId, j as NodeId));
                }
            }
        }
        let h = Graph::from_edges(n, brute).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn avg_degree_near_target() {
        let n = 2000;
        let target = 8.0;
        let g = random_geometric(n, radius_for_avg_degree(n, target), 5).unwrap();
        let mean = g.degree_stats().mean;
        // Boundary effects push the mean a bit below target.
        assert!(mean > target * 0.6 && mean < target * 1.3, "mean degree {mean}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_geometric(64, 0.2, 3).unwrap(), random_geometric(64, 0.2, 3).unwrap());
    }
}
