//! Random d-regular graphs via Steger–Wormald incremental pairing.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
// sleepy-lint: allow(no-hash-collections): membership-only dedup set in the hot
// Steger–Wormald pairing loop — it is never iterated, so its order cannot reach an
// artifact, and the O(1) probe matters at n*d/2 insertions per restart attempt.
use std::collections::HashSet;

/// Maximum number of full restarts before giving up.
const MAX_ATTEMPTS: usize = 200;

/// Samples a random d-regular simple graph on `n` nodes using the
/// Steger–Wormald incremental pairing heuristic: stubs are paired one edge
/// at a time, rejecting self loops and parallel edges as they arise, with a
/// full restart on the (rare) dead ends where no valid pair remains.
///
/// The distribution is asymptotically uniform for `d = O(n^{1/3})`
/// (Steger & Wormald 1999), which covers every parameterization used in
/// this repository's experiments.
///
/// # Errors
///
/// * [`GraphError::InvalidParameter`] if `d >= n` (when `n > 0`) or `n·d` is
///   odd, which make a d-regular simple graph impossible.
/// * [`GraphError::GenerationFailed`] if every restart hit a dead end
///   (practically unreachable for feasible parameters).
///
/// # Example
///
/// ```
/// use sleepy_graph::generators::random_regular;
/// let g = random_regular(20, 3, 11)?;
/// assert!(g.node_ids().all(|v| g.degree(v) == 3));
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
pub fn random_regular(n: usize, d: usize, seed: u64) -> Result<Graph, GraphError> {
    if n == 0 || d == 0 {
        return Graph::from_edges(n, []);
    }
    if d >= n {
        return Err(GraphError::InvalidParameter {
            reason: format!("regular degree d={d} must be < n={n}"),
        });
    }
    if n * d % 2 == 1 {
        return Err(GraphError::InvalidParameter {
            reason: format!("n*d = {} must be even for a d-regular graph", n * d),
        });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for _attempt in 0..MAX_ATTEMPTS {
        if let Some(edges) = try_incremental(n, d, &mut rng) {
            let g = Graph::from_edges(n, edges)?;
            debug_assert!(g.node_ids().all(|v| g.degree(v) == d));
            return Ok(g);
        }
    }
    Err(GraphError::GenerationFailed { generator: "random_regular", attempts: MAX_ATTEMPTS })
}

/// One Steger–Wormald pass; `None` on a dead end.
fn try_incremental(n: usize, d: usize, rng: &mut SmallRng) -> Option<Vec<(NodeId, NodeId)>> {
    let mut stubs: Vec<NodeId> = Vec::with_capacity(n * d);
    for v in 0..n as NodeId {
        for _ in 0..d {
            stubs.push(v);
        }
    }
    // sleepy-lint: allow(no-hash-collections): membership probes only (see import note);
    // edge order is carried by the `edges` Vec below.
    let mut present: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(n * d / 2);
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * d / 2);
    while !stubs.is_empty() {
        // Randomized picks; fall back to an exhaustive scan before declaring
        // a dead end.
        let budget = 8 + 4 * stubs.len();
        let mut accepted = false;
        for _ in 0..budget {
            let i = rng.gen_range(0..stubs.len());
            let j = rng.gen_range(0..stubs.len());
            if i == j {
                continue;
            }
            let (u, v) = (stubs[i], stubs[j]);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if present.contains(&key) {
                continue;
            }
            present.insert(key);
            edges.push(key);
            // Remove the higher index first so the lower stays valid.
            let (hi, lo) = if i > j { (i, j) } else { (j, i) };
            stubs.swap_remove(hi);
            stubs.swap_remove(lo);
            accepted = true;
            break;
        }
        if !accepted {
            // Exhaustive scan for any valid pair.
            let found = 'scan: {
                for i in 0..stubs.len() {
                    for j in (i + 1)..stubs.len() {
                        let (u, v) = (stubs[i], stubs[j]);
                        if u == v {
                            continue;
                        }
                        let key = if u < v { (u, v) } else { (v, u) };
                        if !present.contains(&key) {
                            break 'scan Some((i, j, key));
                        }
                    }
                }
                None
            };
            match found {
                Some((i, j, key)) => {
                    present.insert(key);
                    edges.push(key);
                    stubs.swap_remove(j);
                    stubs.swap_remove(i);
                }
                None => return None, // dead end; restart
            }
        }
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn degrees_are_regular() {
        for (n, d) in [(10, 3), (16, 4), (51, 2), (30, 7), (40, 12)] {
            let g = random_regular(n, d, 5).unwrap();
            assert_eq!(g.n(), n);
            for v in g.node_ids() {
                assert_eq!(g.degree(v), d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn rejects_infeasible() {
        assert!(random_regular(5, 5, 0).is_err()); // d >= n
        assert!(random_regular(5, 3, 0).is_err()); // n*d odd
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(random_regular(0, 3, 0).unwrap().n(), 0);
        assert_eq!(random_regular(7, 0, 0).unwrap().m(), 0);
        // 1-regular = perfect matching
        let g = random_regular(8, 1, 2).unwrap();
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn near_complete_feasible() {
        // d = n - 1 forces the complete graph; the incremental pairing must
        // find it (possibly via the exhaustive-scan path).
        let g = random_regular(6, 5, 3).unwrap();
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_regular(24, 3, 9).unwrap(), random_regular(24, 3, 9).unwrap());
    }

    #[test]
    fn three_regular_usually_connected() {
        // Random 3-regular graphs are connected whp; check one instance.
        let g = random_regular(64, 3, 13).unwrap();
        assert!(ops::is_connected(&g));
    }
}
