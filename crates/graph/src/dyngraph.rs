//! In-place dynamic adjacency: a mutable graph whose single-event
//! mutations cost O(degree · log n) instead of the O(n + m) CSR rebuild
//! that [`GraphDelta::apply`](crate::GraphDelta::apply) pays.
//!
//! # Two id spaces
//!
//! [`DynGraph`] hands out **stable slot handles**: a node keeps its slot
//! for its whole life, so per-node state held outside the graph
//! (membership flags, scratch marks) never has to be remapped when some
//! *other* node departs. The CSR world — [`Graph`], [`DeltaOutcome`],
//! phase reports — instead uses **compact ids**: departures shift every
//! higher id down by one and arrivals append at the end
//! ([`DeltaOutcome::old_to_new`] semantics).
//!
//! The bridge between the two is an order-statistics index over node
//! *birth sequence numbers*: survivors keep their relative birth order
//! under compaction and arrivals are always the youngest, so a node's
//! compact id is exactly the rank of its birth among the living. A
//! Fenwick tree maintains those ranks in O(log n) per query and per
//! mutation — this is what makes node departure O(degree · log n)
//! rather than the O(n) renumbering a dense mapping table would need.
//!
//! [`DynGraph::snapshot`] materializes the CSR [`Graph`] (and counts
//! how often it is asked to — the *rebuild counter* that lets tests
//! assert an event loop never fell back to O(n + m) work), and
//! [`Graph::to_dyn`] converts the other way. Event application parity
//! with the delta path is pinned by a proptest: a [`DeltaEvent`]
//! sequence applied via [`DynGraph::apply_event`] snapshots to the same
//! graph as the sequential `event.to_delta().apply(..)` chain.
//!
//! [`DeltaOutcome`]: crate::DeltaOutcome
//! [`DeltaOutcome::old_to_new`]: crate::DeltaOutcome::old_to_new

use crate::dynamic::DeltaEvent;
use crate::error::GraphError;
use crate::graph::{Graph, NodeId};
use std::cell::Cell;

/// Fenwick (binary indexed) tree over birth-sequence positions holding
/// one bit per node: 1 while the node is alive, 0 after it departs.
/// Prefix sums give compact ids; a descending select gives the inverse.
#[derive(Debug, Clone)]
struct AliveRanks {
    /// 1-indexed Fenwick array; `tree[0]` is unused.
    tree: Vec<u32>,
}

impl AliveRanks {
    /// Ranks over `len` positions, all alive. Built in O(len).
    fn all_alive(len: usize) -> Self {
        let mut tree = vec![1u32; len + 1];
        tree[0] = 0;
        for i in 1..=len {
            let j = i + (i & i.wrapping_neg());
            if j <= len {
                tree[j] += tree[i];
            }
        }
        AliveRanks { tree }
    }

    /// Number of positions tracked.
    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Appends one alive position at the end in O(log len).
    fn push_alive(&mut self) {
        let i = self.tree.len();
        let lsb = i & i.wrapping_neg();
        // tree[i] covers positions (i - lsb, i]: the new bit plus the
        // already-known sum of the covered prefix.
        let covered = self.prefix1(i - 1) - self.prefix1(i - lsb);
        self.tree.push(1 + covered as u32);
    }

    /// Marks 0-based position `pos` dead.
    fn clear(&mut self, pos: usize) {
        let mut i = pos + 1;
        while i < self.tree.len() {
            self.tree[i] -= 1;
            i += i & i.wrapping_neg();
        }
    }

    /// Alive count among 1-based positions `1..=i`.
    fn prefix1(&self, mut i: usize) -> usize {
        let mut sum = 0usize;
        while i > 0 {
            sum += self.tree[i] as usize;
            i -= i & i.wrapping_neg();
        }
        sum
    }

    /// Alive count among 0-based positions `0..=pos`.
    fn alive_through(&self, pos: usize) -> usize {
        self.prefix1(pos + 1)
    }

    /// 0-based position of the `k`-th alive bit (`k >= 1`), i.e. the
    /// smallest position whose prefix count reaches `k`.
    fn select(&self, k: usize) -> usize {
        let len = self.len();
        let mut step = len.next_power_of_two();
        let mut pos = 0usize;
        let mut remaining = k;
        while step > 0 {
            let next = pos + step;
            if next <= len && (self.tree[next] as usize) < remaining {
                pos = next;
                remaining -= self.tree[next] as usize;
            }
            step >>= 1;
        }
        pos // 1-based answer is pos + 1; as 0-based it is pos
    }
}

/// A mutable, undirected, simple graph with O(degree · log n) single
/// mutations — the in-place counterpart of the immutable CSR [`Graph`].
///
/// Nodes are addressed by **slot handles** (stable across unrelated
/// mutations, reused after departure); the compacted id space that
/// [`Graph`] and [`DeltaOutcome::old_to_new`](crate::DeltaOutcome::old_to_new)
/// speak is reachable through [`compact_id`](DynGraph::compact_id) /
/// [`slot_at`](DynGraph::slot_at). See the [module docs](self) for why
/// the two spaces exist and how they correspond.
///
/// # Example
///
/// ```
/// use sleepy_graph::{generators, DeltaEvent};
///
/// let mut g = generators::path(4).unwrap().to_dyn(); // 0-1-2-3
/// g.apply_event(DeltaEvent::RemoveNode(1)).unwrap(); // compact ids shift
/// g.apply_event(DeltaEvent::AddEdge(0, 1)).unwrap(); // post-compaction ids
/// assert_eq!(g.n(), 3);
/// let csr = g.snapshot();
/// assert!(csr.has_edge(0, 1)); // old node 2, now compact id 1
/// assert_eq!(g.rebuild_count(), 1); // the snapshot above
/// ```
#[derive(Debug, Clone)]
pub struct DynGraph {
    /// Per-slot sorted neighbor lists (slot handles). Empty for dead
    /// slots; capacity is retained across reuse.
    adj: Vec<Vec<NodeId>>,
    /// Per-slot birth sequence number (its position in `slot_of_seq`).
    seq_of: Vec<usize>,
    /// Birth order: `slot_of_seq[s]` is the slot born `s`-th. A dead
    /// birth keeps its entry (its bit in `ranks` is simply 0).
    slot_of_seq: Vec<NodeId>,
    /// Alive bits over birth positions; prefix ranks are compact ids.
    ranks: AliveRanks,
    /// Per-slot liveness (O(1) handle validation).
    alive: Vec<bool>,
    /// Dead slots available for reuse, youngest death first.
    free: Vec<NodeId>,
    /// Alive node count.
    n: usize,
    /// Undirected edge count.
    m: usize,
    /// Times [`snapshot`](DynGraph::snapshot) materialized a CSR graph.
    snapshots: Cell<u64>,
}

impl DynGraph {
    /// A graph of `n` isolated nodes (slots `0..n`, compact ids equal).
    pub fn new(n: usize) -> Self {
        DynGraph {
            adj: vec![Vec::new(); n],
            seq_of: (0..n).collect(),
            slot_of_seq: (0..n as NodeId).collect(),
            ranks: AliveRanks::all_alive(n),
            alive: vec![true; n],
            free: Vec::new(),
            n,
            m: 0,
            snapshots: Cell::new(0),
        }
    }

    /// Converts a CSR graph; slot `v` starts out as compact id `v`.
    pub fn from_graph(g: &Graph) -> Self {
        let mut dyn_g = DynGraph::new(g.n());
        for v in g.node_ids() {
            dyn_g.adj[v as usize] = g.neighbors(v).to_vec();
        }
        dyn_g.m = g.m();
        dyn_g
    }

    /// Alive node count.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Undirected edge count.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Slot-space size: every slot handle is `< capacity()`. Size
    /// slot-indexed scratch arrays (marks, membership) to this.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.adj.len()
    }

    /// Whether `slot` currently holds a living node.
    #[inline]
    pub fn is_alive(&self, slot: NodeId) -> bool {
        self.alive.get(slot as usize).copied().unwrap_or(false)
    }

    /// Degree of the node in `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not alive.
    #[inline]
    pub fn degree(&self, slot: NodeId) -> usize {
        assert!(self.is_alive(slot), "slot {slot} is not alive");
        self.adj[slot as usize].len()
    }

    /// Neighbor slots of `slot`, sorted by slot handle.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not alive.
    #[inline]
    pub fn neighbors(&self, slot: NodeId) -> &[NodeId] {
        assert!(self.is_alive(slot), "slot {slot} is not alive");
        &self.adj[slot as usize]
    }

    /// Whether the edge `{a, b}` (slot handles) exists.
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        if a == b || !self.is_alive(a) || !self.is_alive(b) {
            return false;
        }
        let (s, t) =
            if self.adj[a as usize].len() <= self.adj[b as usize].len() { (a, b) } else { (b, a) };
        self.adj[s as usize].binary_search(&t).is_ok()
    }

    /// Adds an isolated node in O(log n), returning its slot (a reused
    /// dead slot when one exists). Its compact id is `n() - 1`: compact
    /// ids order nodes by birth, so the newcomer is always last.
    pub fn add_node(&mut self) -> NodeId {
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.adj.push(Vec::new());
                self.seq_of.push(0); // overwritten below
                self.alive.push(false); // flipped below
                (self.adj.len() - 1) as NodeId
            }
        };
        self.seq_of[slot as usize] = self.slot_of_seq.len();
        self.slot_of_seq.push(slot);
        self.ranks.push_alive();
        self.alive[slot as usize] = true;
        self.n += 1;
        slot
    }

    /// Removes the node in `slot` and all incident edges, in
    /// O(Σ degree(neighbor) + log n). Compact ids above the departed
    /// node's shift down by one; slot handles are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not alive.
    pub fn remove_node(&mut self, slot: NodeId) {
        assert!(self.is_alive(slot), "slot {slot} is not alive");
        let nbrs = std::mem::take(&mut self.adj[slot as usize]);
        for &w in &nbrs {
            let list = &mut self.adj[w as usize];
            let at = list.binary_search(&slot).expect("adjacency is symmetric");
            list.remove(at);
        }
        self.m -= nbrs.len();
        // Hand the (now empty) allocation back to the slot so a future
        // arrival reusing it starts with capacity.
        let mut empty = nbrs;
        empty.clear();
        self.adj[slot as usize] = empty;
        self.ranks.clear(self.seq_of[slot as usize]);
        self.alive[slot as usize] = false;
        self.free.push(slot);
        self.n -= 1;
    }

    /// Inserts the edge `{a, b}` (slot handles) in O(degree), returning
    /// `false` if it already existed (duplicates collapse, exactly as
    /// [`Graph::from_edges`] collapses them).
    ///
    /// # Panics
    ///
    /// Panics on a self loop or a dead endpoint.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert_ne!(a, b, "self loops are not representable");
        assert!(self.is_alive(a) && self.is_alive(b), "edge endpoints must be alive");
        match self.adj[a as usize].binary_search(&b) {
            Ok(_) => false,
            Err(at_a) => {
                self.adj[a as usize].insert(at_a, b);
                let at_b =
                    self.adj[b as usize].binary_search(&a).expect_err("adjacency is symmetric");
                self.adj[b as usize].insert(at_b, a);
                self.m += 1;
                true
            }
        }
    }

    /// Deletes the edge `{a, b}` (slot handles) in O(degree), returning
    /// `false` if it was absent (a no-op, matching the delta path).
    ///
    /// # Panics
    ///
    /// Panics on a dead endpoint.
    pub fn remove_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(self.is_alive(a) && self.is_alive(b), "edge endpoints must be alive");
        if a == b {
            return false;
        }
        match self.adj[a as usize].binary_search(&b) {
            Err(_) => false,
            Ok(at_a) => {
                self.adj[a as usize].remove(at_a);
                let at_b = self.adj[b as usize].binary_search(&a).expect("adjacency is symmetric");
                self.adj[b as usize].remove(at_b);
                self.m -= 1;
                true
            }
        }
    }

    /// The compact id of the node in `slot`, in O(log n): its rank by
    /// birth among the living — exactly the id the node has in
    /// [`snapshot`](DynGraph::snapshot) and in the composed
    /// [`DeltaOutcome::old_to_new`](crate::DeltaOutcome::old_to_new)
    /// mapping of the event sequence applied so far.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is not alive.
    pub fn compact_id(&self, slot: NodeId) -> NodeId {
        assert!(self.is_alive(slot), "slot {slot} is not alive");
        (self.ranks.alive_through(self.seq_of[slot as usize]) - 1) as NodeId
    }

    /// The slot currently holding compact id `id`, in O(log n) — the
    /// inverse of [`compact_id`](DynGraph::compact_id).
    ///
    /// # Panics
    ///
    /// Panics if `id >= n()`.
    pub fn slot_at(&self, id: NodeId) -> NodeId {
        assert!((id as usize) < self.n, "compact id {id} out of range for {} nodes", self.n);
        self.slot_of_seq[self.ranks.select(id as usize + 1)]
    }

    /// Fills `out` (slot-indexed, resized to [`capacity`](DynGraph::capacity))
    /// with every living slot's compact id, [`NodeId::MAX`] for dead
    /// slots. O(births) — cheaper than n [`compact_id`](DynGraph::compact_id)
    /// calls when the whole mapping is needed at once.
    pub fn fill_compact_ids(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.resize(self.capacity(), NodeId::MAX);
        let mut next = 0 as NodeId;
        for (seq, &slot) in self.slot_of_seq.iter().enumerate() {
            // A birth is alive iff its slot still points back at it
            // (reuse bumps `seq_of`) and the slot itself is alive.
            if self.seq_of[slot as usize] == seq && self.alive[slot as usize] {
                out[slot as usize] = next;
                next += 1;
            }
        }
        debug_assert_eq!(next as usize, self.n);
    }

    /// Materializes the CSR [`Graph`] in compact-id order, in O(n + m
    /// log m). This is the **rebuild counter** hot spot: every call
    /// increments [`rebuild_count`](DynGraph::rebuild_count), so a test
    /// can assert that an event-absorption loop never paid for one.
    pub fn snapshot(&self) -> Graph {
        self.snapshot_with_ids().0
    }

    /// [`snapshot`](DynGraph::snapshot) plus the slot-indexed compact-id
    /// mapping it was built from (the [`fill_compact_ids`] layout), in
    /// one pass — for callers that project slot-indexed state into the
    /// snapshot's id space and would otherwise recompute the mapping.
    /// Counts as one rebuild.
    ///
    /// [`fill_compact_ids`]: DynGraph::fill_compact_ids
    pub fn snapshot_with_ids(&self) -> (Graph, Vec<NodeId>) {
        self.snapshots.set(self.snapshots.get() + 1);
        let mut compact = Vec::new();
        self.fill_compact_ids(&mut compact);
        let mut edges = Vec::with_capacity(self.m);
        for (slot, nbrs) in self.adj.iter().enumerate() {
            let cu = compact[slot];
            if cu == NodeId::MAX {
                continue;
            }
            for &w in nbrs {
                let cw = compact[w as usize];
                if cu < cw {
                    edges.push((cu, cw));
                }
            }
        }
        let graph =
            Graph::from_edges(self.n, edges).expect("dynamic adjacency is a valid simple graph");
        (graph, compact)
    }

    /// How many times [`snapshot`](DynGraph::snapshot) has materialized
    /// a CSR graph — O(n + m) work an incremental event loop must never
    /// do per event.
    pub fn rebuild_count(&self) -> u64 {
        self.snapshots.get()
    }

    /// Applies one [`DeltaEvent`] in place, with the event's node ids
    /// read in the **compact** space current at the call — the same
    /// contract as applying `event.to_delta()` to the CSR graph, with
    /// the same validation and the same duplicate/absent-edge no-op
    /// semantics, but in O(degree · log n) instead of O(n + m).
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] / [`GraphError::SelfLoop`] exactly
    /// when `event.to_delta().apply(..)` would return them.
    ///
    /// # Example
    ///
    /// ```
    /// use sleepy_graph::{generators, DeltaEvent, GraphDelta};
    ///
    /// let csr = generators::gnp(40, 0.1, 7).unwrap();
    /// let mut dyn_g = csr.to_dyn();
    /// let delta = GraphDelta { remove_nodes: vec![3, 11], add_nodes: 1,
    ///     ..GraphDelta::default() };
    /// for event in delta.events() {
    ///     dyn_g.apply_event(event).unwrap();
    /// }
    /// assert_eq!(dyn_g.snapshot(), delta.apply(&csr).unwrap().graph);
    /// ```
    pub fn apply_event(&mut self, event: DeltaEvent) -> Result<(), GraphError> {
        match event {
            DeltaEvent::RemoveEdge(u, v) => {
                self.check_compact(u)?;
                self.check_compact(v)?;
                if u != v {
                    let (a, b) = (self.slot_at(u), self.slot_at(v));
                    self.remove_edge(a, b);
                }
            }
            DeltaEvent::RemoveNode(v) => {
                self.check_compact(v)?;
                let slot = self.slot_at(v);
                self.remove_node(slot);
            }
            DeltaEvent::AddNode => {
                self.add_node();
            }
            DeltaEvent::AddEdge(u, v) => {
                self.check_compact(u)?;
                self.check_compact(v)?;
                if u == v {
                    return Err(GraphError::SelfLoop { node: u });
                }
                let (a, b) = (self.slot_at(u), self.slot_at(v));
                self.add_edge(a, b);
            }
        }
        Ok(())
    }

    /// Range-validates a compact id exactly the way the delta path
    /// ([`GraphDelta::apply`](crate::GraphDelta::apply)) does — the one
    /// definition of that rule, shared by [`apply_event`]
    /// (DynGraph::apply_event) and external event loops that must keep
    /// error parity with it.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] if `id >= n()`.
    ///
    /// [`apply_event`]: DynGraph::apply_event
    pub fn check_compact(&self, id: NodeId) -> Result<(), GraphError> {
        if (id as usize) >= self.n {
            return Err(GraphError::NodeOutOfRange { node: id as u64, n: self.n });
        }
        Ok(())
    }
}

impl Graph {
    /// This graph as an in-place-mutable [`DynGraph`] (slot `v` starts
    /// out as compact id `v`). See the [module docs](crate::dyngraph)
    /// for the id-space correspondence.
    ///
    /// # Example
    ///
    /// ```
    /// use sleepy_graph::generators;
    ///
    /// let g = generators::cycle(6).unwrap();
    /// let mut d = g.to_dyn();
    /// assert_eq!(d.n(), 6);
    /// d.remove_edge(0, 1);
    /// assert_eq!(d.m(), g.m() - 1);
    /// assert!(!d.snapshot().has_edge(0, 1));
    /// ```
    pub fn to_dyn(&self) -> DynGraph {
        DynGraph::from_graph(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::GraphDelta;
    use crate::generators;

    #[test]
    fn roundtrip_is_identity() {
        let g = generators::gnp(60, 0.08, 3).unwrap();
        let d = g.to_dyn();
        assert_eq!(d.n(), g.n());
        assert_eq!(d.m(), g.m());
        assert_eq!(d.snapshot(), g);
        assert_eq!(d.rebuild_count(), 1);
    }

    #[test]
    fn edge_mutations_are_exact_and_idempotent() {
        let g = generators::cycle(5).unwrap();
        let mut d = g.to_dyn();
        assert!(d.remove_edge(0, 1));
        assert!(!d.remove_edge(0, 1), "absent edge removal is a no-op");
        assert!(d.add_edge(0, 2));
        assert!(!d.add_edge(2, 0), "duplicate insertion collapses");
        assert!(d.has_edge(0, 2));
        assert!(!d.has_edge(0, 1));
        assert_eq!(d.m(), 5);
        let expected = GraphDelta {
            remove_edges: vec![(0, 1)],
            add_edges: vec![(0, 2)],
            ..GraphDelta::default()
        };
        assert_eq!(d.snapshot(), expected.apply(&g).unwrap().graph);
    }

    #[test]
    fn departure_shifts_compact_ids_but_not_slots() {
        let g = generators::path(5).unwrap(); // 0-1-2-3-4
        let mut d = g.to_dyn();
        d.remove_node(2);
        assert_eq!(d.n(), 4);
        assert!(!d.is_alive(2));
        // Slots 3 and 4 keep their handles but compact down by one.
        assert_eq!(d.compact_id(3), 2);
        assert_eq!(d.compact_id(4), 3);
        assert_eq!(d.compact_id(0), 0);
        assert_eq!(d.slot_at(2), 3);
        assert_eq!(d.slot_at(3), 4);
        // Same graph as the delta path.
        let delta = GraphDelta { remove_nodes: vec![2], ..GraphDelta::default() };
        assert_eq!(d.snapshot(), delta.apply(&g).unwrap().graph);
    }

    #[test]
    fn arrivals_reuse_slots_but_compact_last() {
        let mut d = DynGraph::new(3);
        d.remove_node(0);
        let slot = d.add_node();
        assert_eq!(slot, 0, "dead slot is reused");
        assert_eq!(d.n(), 3);
        // The reborn node is the youngest: compact id n - 1.
        assert_eq!(d.compact_id(0), 2);
        assert_eq!(d.compact_id(1), 0);
        assert_eq!(d.compact_id(2), 1);
        assert_eq!(d.slot_at(2), 0);
        let fresh = d.add_node();
        assert_eq!(fresh, 3, "no free slot left: slot space grows");
        assert_eq!(d.capacity(), 4);
        assert_eq!(d.compact_id(fresh), 3);
    }

    #[test]
    fn fill_compact_ids_matches_pointwise_queries() {
        let mut d = DynGraph::new(8);
        d.remove_node(1);
        d.remove_node(5);
        d.add_node(); // reuses slot 5
        let mut ids = Vec::new();
        d.fill_compact_ids(&mut ids);
        assert_eq!(ids.len(), d.capacity());
        for slot in 0..d.capacity() as NodeId {
            if d.is_alive(slot) {
                assert_eq!(ids[slot as usize], d.compact_id(slot), "slot {slot}");
                assert_eq!(d.slot_at(ids[slot as usize]), slot, "slot {slot}");
            } else {
                assert_eq!(ids[slot as usize], NodeId::MAX);
            }
        }
    }

    #[test]
    fn apply_event_validation_matches_delta_path() {
        let g = generators::path(3).unwrap();
        let mut d = g.to_dyn();
        for (event, csr_err) in [
            (DeltaEvent::RemoveNode(7), GraphDelta { remove_nodes: vec![7], ..Default::default() }),
            (
                DeltaEvent::AddEdge(0, 9),
                GraphDelta { add_edges: vec![(0, 9)], ..Default::default() },
            ),
            (
                DeltaEvent::AddEdge(1, 1),
                GraphDelta { add_edges: vec![(1, 1)], ..Default::default() },
            ),
            (
                DeltaEvent::RemoveEdge(0, 5),
                GraphDelta { remove_edges: vec![(0, 5)], ..Default::default() },
            ),
        ] {
            let expect = csr_err.apply(&g).unwrap_err();
            assert_eq!(d.apply_event(event).unwrap_err(), expect, "{event:?}");
        }
        // Valid events still apply after the failed attempts.
        d.apply_event(DeltaEvent::RemoveEdge(0, 1)).unwrap();
        assert_eq!(d.m(), 1);
    }

    #[test]
    fn event_sequence_matches_sequential_csr_applies() {
        // A hand-built mixed sequence crossing every event kind,
        // including a departure that shifts ids *under* later events.
        let g = generators::gnp(30, 0.12, 9).unwrap();
        let events = vec![
            DeltaEvent::RemoveNode(4),
            DeltaEvent::AddNode,
            DeltaEvent::AddEdge(0, 29), // the arrival, post-compaction id
            DeltaEvent::RemoveEdge(1, 2),
            DeltaEvent::RemoveNode(17),
            DeltaEvent::AddEdge(3, 5),
            DeltaEvent::AddNode,
            DeltaEvent::RemoveEdge(3, 5),
        ];
        let mut csr = g.clone();
        let mut dyn_g = g.to_dyn();
        for &event in &events {
            csr = event.to_delta().apply(&csr).unwrap().graph;
            dyn_g.apply_event(event).unwrap();
            assert_eq!(dyn_g.n(), csr.n());
            assert_eq!(dyn_g.m(), csr.m());
        }
        assert_eq!(dyn_g.snapshot(), csr);
    }

    #[test]
    fn empty_and_degenerate_graphs() {
        let mut d = DynGraph::new(0);
        assert_eq!(d.n(), 0);
        assert_eq!(d.capacity(), 0);
        let s = d.add_node();
        assert_eq!(d.compact_id(s), 0);
        d.remove_node(s);
        assert_eq!(d.n(), 0);
        assert_eq!(d.snapshot().n(), 0);
        assert!(matches!(
            d.apply_event(DeltaEvent::RemoveNode(0)),
            Err(GraphError::NodeOutOfRange { node: 0, n: 0 })
        ));
    }

    #[test]
    fn clone_keeps_independent_state() {
        let mut a = generators::clique(4).unwrap().to_dyn();
        let b = a.clone();
        a.remove_node(0);
        assert_eq!(a.n(), 3);
        assert_eq!(b.n(), 4);
        assert_eq!(b.snapshot(), generators::clique(4).unwrap());
    }
}
