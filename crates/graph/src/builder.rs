//! Incremental construction of [`Graph`]s.

use crate::error::GraphError;
use crate::graph::{Graph, NodeId};

/// Incremental builder for [`Graph`].
///
/// Use this when edges are produced one at a time and a single
/// [`Graph::from_edges`] call would be awkward. Edges may be added in any
/// order and duplicates are tolerated (collapsed at [`build`](Self::build)).
///
/// # Example
///
/// ```
/// use sleepy_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.edge(0, 1).edge(1, 2);
/// let g = b.build()?;
/// assert_eq!(g.m(), 2);
/// # Ok::<(), sleepy_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for an `n`-node graph with no edges yet.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Creates a builder with capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(m) }
    }

    /// Adds the undirected edge `{u, v}`. Validation is deferred to
    /// [`build`](Self::build).
    pub fn edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from the iterator.
    pub fn edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, it: I) -> &mut Self {
        self.edges.extend(it);
        self
    }

    /// Number of edge insertions so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`Graph::from_edges`]: out-of-range
    /// endpoints, self loops, or an oversized node count.
    pub fn build(&self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.n, self.edges.iter().copied())
    }
}

impl Extend<(NodeId, NodeId)> for GraphBuilder {
    fn extend<T: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: T) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_from_edges() {
        let mut b = GraphBuilder::new(4);
        b.edge(0, 1).edge(2, 3).edge(1, 2);
        let g = b.build().unwrap();
        let h = Graph::from_edges(4, [(0, 1), (2, 3), (1, 2)]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn builder_reports_errors_at_build() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 0);
        assert!(matches!(b.build().unwrap_err(), GraphError::SelfLoop { node: 0 }));
    }

    #[test]
    fn extend_and_pending() {
        let mut b = GraphBuilder::with_capacity(3, 2);
        b.extend([(0, 1), (1, 2)]);
        assert_eq!(b.pending_edges(), 2);
        assert_eq!(b.build().unwrap().m(), 2);
    }

    #[test]
    fn default_is_empty() {
        let b = GraphBuilder::default();
        let g = b.build().unwrap();
        assert_eq!(g.n(), 0);
    }
}
