//! Side-channel observability for the fleet runtime.
//!
//! This crate answers "where does wall-clock go?" for the machinery
//! *around* the CONGEST simulator — the worker pool, the result store,
//! shard-worker supervision, and the dynamic repair loop — without ever
//! touching the artifacts those layers produce. Three pieces:
//!
//! - **Spans** ([`span!`], [`span()`](fn@span), [`span_with`]): RAII guards that
//!   record `(category, name, thread, start, duration)` into per-thread
//!   buffers. When telemetry is [`Mode::Off`] a span is a no-op (no
//!   clock read, no lock, no allocation). [`Mode::Metrics`] keeps only
//!   bounded per-`(category, name)` aggregates; [`Mode::Trace`]
//!   additionally retains every event for trace export.
//! - **Registry** ([`counter_add`], [`gauge_max`], [`gauge_set`]):
//!   named monotonic counters and high-water gauges absorbing the
//!   runtime's ad-hoc numbers (cache hits per namespace, dynamic-graph
//!   rebuilds, scratch-buffer capacities, pool steals). Drained by
//!   [`snapshot_and_reset`] into a [`Snapshot`], which renders
//!   `run_metrics.json` and the end-of-run stderr summary.
//! - **Exporters**: [`Snapshot::chrome_trace_value`] emits Chrome
//!   trace-event JSON loadable in Perfetto or `chrome://tracing`;
//!   [`import_trace_file`] merges trace files produced by shard worker
//!   processes onto the same timeline (distinguished by `pid`/`tid`).
//!
//! **Invariant:** telemetry is side-channel only. Nothing here is ever
//! written into `phases.jsonl`, `aggregates.json`, or store records, so
//! those stay byte-identical with telemetry on, off, or at any thread
//! count. Timestamps exist only in the trace/metrics outputs.

// Unsafe audit (PR 7): the whole crate is safe code — the thread-local
// span stack uses `std::thread_local!` + `RefCell`, not raw TLS, so a
// full `forbid` holds. If a future TLS optimization ever needs
// `unsafe`, downgrade to `deny` with a scoped `allow` and record the
// justification here.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod registry;

pub use chrome::{
    protocol_trace_value, validate_trace, ProtoCounter, ProtoProcess, ProtoTrack, TraceCheck,
};
pub use registry::{
    counter_add, gauge_max, gauge_set, import_trace_file, snapshot_and_reset, Snapshot, SpanStat,
};
pub use serde::Value;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime};

/// How much the telemetry layer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Record nothing; spans and registry calls are no-ops.
    Off,
    /// Keep bounded per-`(category, name)` span aggregates plus the
    /// counter/gauge registry; individual events are discarded.
    Metrics,
    /// Everything in `Metrics`, plus every span event is retained for
    /// Chrome-trace export. Memory grows with the number of spans.
    Trace,
}

static MODE: AtomicU8 = AtomicU8::new(0);

/// Sets the global telemetry mode. Call once near process start;
/// switching modes mid-run is allowed but spans in flight record under
/// the mode seen when they *end*.
pub fn set_mode(mode: Mode) {
    let v = match mode {
        Mode::Off => 0,
        Mode::Metrics => 1,
        Mode::Trace => 2,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// The current global telemetry mode.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        0 => Mode::Off,
        1 => Mode::Metrics,
        _ => Mode::Trace,
    }
}

/// Whether any recording is active (`Metrics` or `Trace`).
pub fn enabled() -> bool {
    MODE.load(Ordering::Relaxed) != 0
}

/// Whether full event retention is active (`Trace`).
pub fn tracing() -> bool {
    MODE.load(Ordering::Relaxed) == 2
}

/// The process-wide clock epoch: a monotonic `Instant` anchored to the
/// Unix wall clock once, so timestamps are monotonic *within* a process
/// yet comparable *across* processes (shard workers merge onto the
/// coordinator's timeline with at most clock-sync skew).
struct Epoch {
    base_us: u64,
    start: Instant,
}

static EPOCH: OnceLock<Epoch> = OnceLock::new();

fn epoch() -> &'static Epoch {
    EPOCH.get_or_init(|| {
        let base_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros() as u64)
            .unwrap_or(0);
        Epoch { base_us, start: Instant::now() }
    })
}

/// Microseconds since the Unix epoch, measured monotonically after the
/// first call.
pub(crate) fn now_us() -> u64 {
    let e = epoch();
    e.base_us + e.start.elapsed().as_micros() as u64
}

/// An active span being timed; consumed when its [`SpanGuard`] drops.
struct ActiveSpan {
    cat: &'static str,
    name: &'static str,
    args: Option<Value>,
    start_us: u64,
}

/// RAII guard for a span: records the span into the current thread's
/// buffer when dropped. Obtained from [`span()`](fn@span), [`span_with`], or the
/// [`span!`] macro; holds nothing when telemetry is off.
pub struct SpanGuard(Option<ActiveSpan>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.0.take() {
            let end_us = now_us();
            registry::record_span(active.cat, active.name, active.args, active.start_us, end_us);
        }
    }
}

/// Starts a span with no arguments. Zero-cost when telemetry is off.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    SpanGuard(Some(ActiveSpan { cat, name, args: None, start_us: now_us() }))
}

/// Starts a span with lazy arguments: `args` is evaluated only in
/// [`Mode::Trace`] (aggregate-only modes never pay for argument
/// construction).
pub fn span_with<F: FnOnce() -> Value>(
    cat: &'static str,
    name: &'static str,
    args: F,
) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let args = if tracing() { Some(args()) } else { None };
    SpanGuard(Some(ActiveSpan { cat, name, args, start_us: now_us() }))
}

/// Converts one span argument into a [`Value`] (used by [`span!`]).
pub fn arg_value<T: serde::Serialize>(v: &T) -> Value {
    v.to_value()
}

/// Starts a span: `span!("cat", "name")` or
/// `span!("cat", "name", {"key": value, ...})`. Argument expressions
/// are evaluated only in [`Mode::Trace`]. Bind the result
/// (`let _span = span!(...)`) so the guard lives to the end of the
/// scope being timed.
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr $(,)?) => {
        $crate::span($cat, $name)
    };
    ($cat:expr, $name:expr, { $($k:literal : $v:expr),* $(,)? }) => {
        $crate::span_with($cat, $name, || {
            $crate::Value::Object(vec![$(($k.to_string(), $crate::arg_value(&$v))),*])
        })
    };
}

/// A stopwatch that both times a scope for the caller *and* records it
/// as a span. Unlike a bare [`SpanGuard`], the elapsed time is always
/// measured (even with telemetry off) so call sites that report
/// durations in their own output keep working on one code path.
pub struct Stopwatch {
    start: Instant,
    guard: SpanGuard,
}

/// Starts a [`Stopwatch`] recording under `cat`/`name`.
pub fn stopwatch(cat: &'static str, name: &'static str) -> Stopwatch {
    Stopwatch { start: Instant::now(), guard: span(cat, name) }
}

impl Stopwatch {
    /// Ends the span and returns the measured wall-clock duration.
    pub fn finish(self) -> Duration {
        let Stopwatch { start, guard } = self;
        drop(guard);
        start.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Telemetry state is process-global; serialize tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_mode_records_nothing() {
        let _l = locked();
        set_mode(Mode::Off);
        snapshot_and_reset();
        {
            let _s = span!("cat", "noop");
            counter_add("k", 3);
            gauge_max("g", 9);
        }
        let snap = snapshot_and_reset();
        assert!(snap.is_empty());
    }

    #[test]
    fn metrics_mode_aggregates_without_events() {
        let _l = locked();
        set_mode(Mode::Metrics);
        snapshot_and_reset();
        for _ in 0..3 {
            let _s = span!("trial", "static", {"seed": 7u64});
        }
        counter_add("cache.hits", 2);
        counter_add("cache.hits", 5);
        gauge_max("hw", 4);
        gauge_max("hw", 2);
        set_mode(Mode::Off);
        let snap = snapshot_and_reset();
        let stat = &snap.spans["trial/static"];
        assert_eq!(stat.count, 3);
        assert_eq!(snap.counters["cache.hits"], 7);
        assert_eq!(snap.gauges["hw"], 4);
        assert_eq!(snap.event_count(), 0);
    }

    #[test]
    fn trace_mode_retains_events_across_threads() {
        let _l = locked();
        set_mode(Mode::Trace);
        snapshot_and_reset();
        {
            let _outer = span!("run", "outer");
            let _inner = span!("pool", "shard", {"shard": 0usize});
        }
        std::thread::scope(|s| {
            s.spawn(|| {
                let _s = span!("trial", "static", {"job": "a", "seed": 1u64});
            });
        });
        set_mode(Mode::Off);
        let snap = snapshot_and_reset();
        assert_eq!(snap.event_count(), 3);
        let trace = snap.chrome_trace_value("test");
        let text = serde_json::to_string(&trace).expect("trace serializes");
        let check = validate_trace(&text).expect("trace validates");
        assert_eq!(check.spans, 3);
        assert!(check.timelines >= 2, "expected two thread timelines");
        assert!(check.categories.iter().any(|c| c == "trial"));
    }

    #[test]
    fn stopwatch_measures_even_when_off() {
        let _l = locked();
        set_mode(Mode::Off);
        snapshot_and_reset();
        let sw = stopwatch("run", "plan");
        std::thread::sleep(Duration::from_millis(1));
        assert!(sw.finish() >= Duration::from_millis(1));
        assert!(snapshot_and_reset().is_empty());
    }
}
