//! Per-thread span buffers, the counter/gauge registry, and the
//! drained [`Snapshot`] with its renderers.

use crate::chrome;
use crate::{enabled, mode, Mode};
use serde::Value;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One completed span, as retained in `Trace` mode.
#[derive(Debug, Clone)]
pub(crate) struct SpanEvent {
    pub(crate) cat: &'static str,
    pub(crate) name: &'static str,
    pub(crate) args: Option<Value>,
    pub(crate) tid: u64,
    pub(crate) start_us: u64,
    pub(crate) end_us: u64,
    pub(crate) seq: u64,
}

/// Aggregate statistics for one `(category, name)` span kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Spans recorded.
    pub count: u64,
    /// Summed duration, microseconds.
    pub total_us: u64,
    /// Longest single span, microseconds.
    pub max_us: u64,
}

#[derive(Default)]
struct ThreadBuf {
    events: Vec<SpanEvent>,
    agg: BTreeMap<(&'static str, &'static str), SpanStat>,
}

/// Every thread buffer ever registered. Buffers are drained in place by
/// [`snapshot_and_reset`] but never removed: a live thread keeps a
/// handle to its own buffer in thread-local storage.
static THREADS: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static SEQ: AtomicU64 = AtomicU64::new(0);
static COUNTERS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
static GAUGES: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
/// Raw Chrome trace events imported from worker processes.
static IMPORTED: Mutex<Vec<Value>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: RefCell<Option<(u64, Arc<Mutex<ThreadBuf>>)>> = const { RefCell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` with this thread's tid and buffer, registering the thread
/// on first use.
fn with_local<R>(f: impl FnOnce(u64, &mut ThreadBuf) -> R) -> R {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let buf = Arc::new(Mutex::new(ThreadBuf::default()));
            lock(&THREADS).push(Arc::clone(&buf));
            *slot = Some((tid, buf));
        }
        let (tid, buf) = slot.as_ref().expect("just initialized");
        let mut guard = lock(buf);
        f(*tid, &mut guard)
    })
}

/// Records one completed span into the current thread's buffer.
pub(crate) fn record_span(
    cat: &'static str,
    name: &'static str,
    args: Option<Value>,
    start_us: u64,
    end_us: u64,
) {
    let m = mode();
    if m == Mode::Off {
        return;
    }
    with_local(|tid, buf| {
        let stat = buf.agg.entry((cat, name)).or_default();
        stat.count += 1;
        let dur = end_us.saturating_sub(start_us);
        stat.total_us += dur;
        stat.max_us = stat.max_us.max(dur);
        if m == Mode::Trace {
            let seq = SEQ.fetch_add(1, Ordering::Relaxed);
            buf.events.push(SpanEvent { cat, name, args, tid, start_us, end_us, seq });
        }
    });
}

/// Adds `delta` to the named monotonic counter. A zero delta still
/// creates the key, so "this happened zero times" is visible in the
/// output. No-op when telemetry is off.
pub fn counter_add(key: &str, delta: u64) {
    if !enabled() {
        return;
    }
    *lock(&COUNTERS).entry(key.to_string()).or_insert(0) += delta;
}

/// Raises the named high-water gauge to at least `value`. No-op when
/// telemetry is off.
pub fn gauge_max(key: &str, value: u64) {
    if !enabled() {
        return;
    }
    let mut g = lock(&GAUGES);
    let slot = g.entry(key.to_string()).or_insert(0);
    *slot = (*slot).max(value);
}

/// Sets the named gauge to `value` (last write wins). No-op when
/// telemetry is off.
pub fn gauge_set(key: &str, value: u64) {
    if !enabled() {
        return;
    }
    lock(&GAUGES).insert(key.to_string(), value);
}

/// Reads a Chrome trace file produced by a worker process and queues
/// its events for inclusion in this process's trace export (worker
/// events keep their own `pid`/`tid`, so they land on separate rows of
/// the same timeline). Returns the number of events imported.
///
/// # Errors
///
/// A description of the I/O or parse failure.
pub fn import_trace_file(path: impl AsRef<Path>) -> Result<usize, String> {
    let path = path.as_ref();
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let doc = serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let events = match doc.get("traceEvents").and_then(Value::as_array) {
        Some(events) => events.clone(),
        None => match doc {
            Value::Array(events) => events,
            _ => return Err(format!("{}: no traceEvents array", path.display())),
        },
    };
    let n = events.len();
    lock(&IMPORTED).extend(events);
    Ok(n)
}

/// Everything the registry accumulated since the last drain.
#[derive(Debug, Default)]
pub struct Snapshot {
    /// Monotonic counters by key.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by key.
    pub gauges: BTreeMap<String, u64>,
    /// Span aggregates keyed `"category/name"`.
    pub spans: BTreeMap<String, SpanStat>,
    pub(crate) events: Vec<SpanEvent>,
    pub(crate) imported: Vec<Value>,
}

/// Drains all thread buffers, counters, gauges, and imported worker
/// events into a [`Snapshot`], leaving the registry empty.
pub fn snapshot_and_reset() -> Snapshot {
    let mut snap = Snapshot::default();
    for buf in lock(&THREADS).iter() {
        let mut buf = lock(buf);
        snap.events.append(&mut buf.events);
        for (&(cat, name), stat) in &buf.agg {
            let merged = snap.spans.entry(format!("{cat}/{name}")).or_default();
            merged.count += stat.count;
            merged.total_us += stat.total_us;
            merged.max_us = merged.max_us.max(stat.max_us);
        }
        buf.agg.clear();
    }
    std::mem::swap(&mut snap.counters, &mut lock(&COUNTERS));
    std::mem::swap(&mut snap.gauges, &mut lock(&GAUGES));
    std::mem::swap(&mut snap.imported, &mut lock(&IMPORTED));
    snap
}

impl Snapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.spans.is_empty()
            && self.events.is_empty()
            && self.imported.is_empty()
    }

    /// Retained span events (non-zero only after a `Trace`-mode run).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The `run_metrics.json` document: counters, gauges, and span
    /// aggregates. Wall-clock appears *here* and nowhere else.
    pub fn run_metrics_value(&self) -> Value {
        let counters: Vec<(String, Value)> =
            self.counters.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect();
        let gauges: Vec<(String, Value)> =
            self.gauges.iter().map(|(k, &v)| (k.clone(), Value::UInt(v))).collect();
        let spans: Vec<(String, Value)> = self
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Value::Object(vec![
                        ("count".to_string(), Value::UInt(s.count)),
                        ("total_us".to_string(), Value::UInt(s.total_us)),
                        ("max_us".to_string(), Value::UInt(s.max_us)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".to_string(), Value::Object(counters)),
            ("gauges".to_string(), Value::Object(gauges)),
            ("spans".to_string(), Value::Object(spans)),
        ])
    }

    /// Renders the end-of-run summary table (spans, then counters and
    /// gauges) for stderr. Empty string when nothing was recorded.
    pub fn render_summary(&self) -> String {
        if self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty() {
            return String::new();
        }
        let mut out = String::new();
        if !self.spans.is_empty() {
            let width = self.spans.keys().map(String::len).max().unwrap_or(0).max("span".len());
            out.push_str(&format!(
                "{:<width$}  {:>9}  {:>12}  {:>12}\n",
                "span", "count", "total", "max"
            ));
            for (key, s) in &self.spans {
                out.push_str(&format!(
                    "{key:<width$}  {:>9}  {:>12}  {:>12}\n",
                    s.count,
                    fmt_us(s.total_us),
                    fmt_us(s.max_us),
                ));
            }
        }
        if !(self.counters.is_empty() && self.gauges.is_empty()) {
            let width = self
                .counters
                .keys()
                .chain(self.gauges.keys())
                .map(String::len)
                .max()
                .unwrap_or(0)
                .max("counter".len());
            out.push_str(&format!("{:<width$}  {:>12}\n", "counter", "value"));
            for (key, v) in self.counters.iter().chain(self.gauges.iter()) {
                out.push_str(&format!("{key:<width$}  {v:>12}\n"));
            }
        }
        out
    }

    /// The Chrome trace-event document for this snapshot (own events
    /// plus any imported worker events), as a JSON value.
    pub fn chrome_trace_value(&self, process_name: &str) -> Value {
        chrome::trace_value(self, process_name)
    }

    /// Writes the Chrome trace-event document to `path`.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn write_chrome_trace(
        &self,
        path: impl AsRef<Path>,
        process_name: &str,
    ) -> std::io::Result<()> {
        let doc = self.chrome_trace_value(process_name);
        let text = serde::value::to_compact_string(&doc);
        let mut f = std::fs::File::create(path)?;
        f.write_all(text.as_bytes())?;
        f.write_all(b"\n")
    }
}

/// Formats microseconds human-readably for the summary table.
fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_us_scales() {
        assert_eq!(fmt_us(999), "999us");
        assert_eq!(fmt_us(1_500), "1.50ms");
        assert_eq!(fmt_us(2_500_000), "2.50s");
    }

    #[test]
    fn run_metrics_value_shape() {
        let mut snap = Snapshot::default();
        snap.counters.insert("a.b".to_string(), 3);
        snap.gauges.insert("hw".to_string(), 7);
        snap.spans
            .insert("trial/static".to_string(), SpanStat { count: 2, total_us: 10, max_us: 6 });
        let v = snap.run_metrics_value();
        assert_eq!(v.get("counters").and_then(|c| c.get("a.b")).and_then(Value::as_u64), Some(3));
        assert_eq!(v.get("gauges").and_then(|g| g.get("hw")).and_then(Value::as_u64), Some(7));
        let s = v.get("spans").and_then(|s| s.get("trial/static")).expect("span entry");
        assert_eq!(s.get("count").and_then(Value::as_u64), Some(2));
        let summary = snap.render_summary();
        assert!(summary.contains("trial/static"));
        assert!(summary.contains("a.b"));
    }
}
