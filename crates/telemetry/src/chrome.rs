//! Chrome trace-event export and validation.
//!
//! The exporter emits the JSON object form
//! (`{"traceEvents": [...], "displayTimeUnit": "ms"}`) with paired
//! `"B"`/`"E"` duration events plus `"M"` metadata naming the process
//! and threads. Perfetto and `chrome://tracing` both load it directly.
//!
//! Spans are recorded independently per thread, so on one thread two
//! spans may *overlap without nesting* (a guard kept alive across
//! another's lifetime). Chrome's B/E model only expresses stacks, so
//! the exporter runs a stack sweep per thread: events sort by
//! `(start, -end, seq)` and a child's end is clamped to its parent's
//! end. This guarantees — by construction — matched B/E pairs and
//! non-decreasing timestamps per thread, which [`validate_trace`]
//! checks.

use crate::registry::{Snapshot, SpanEvent};
use serde::Value;
use std::collections::BTreeMap;

/// Summary of a validated trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events, including metadata.
    pub events: usize,
    /// Matched B/E span pairs.
    pub spans: usize,
    /// Distinct `(pid, tid)` timelines carrying spans.
    pub timelines: usize,
    /// Distinct span categories, sorted.
    pub categories: Vec<String>,
    /// `"C"` counter samples.
    pub counters: usize,
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Builds the trace-event document for a snapshot. Own events carry
/// this process's pid; imported worker events keep their own pid/tid.
pub(crate) fn trace_value(snap: &Snapshot, process_name: &str) -> Value {
    let pid = std::process::id() as u64;
    let mut events: Vec<Value> = Vec::new();
    events.push(obj(vec![
        ("name", Value::String("process_name".to_string())),
        ("ph", Value::String("M".to_string())),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(0)),
        ("args", obj(vec![("name", Value::String(process_name.to_string()))])),
    ]));

    let mut by_tid: BTreeMap<u64, Vec<&SpanEvent>> = BTreeMap::new();
    for ev in &snap.events {
        by_tid.entry(ev.tid).or_default().push(ev);
    }
    for (&tid, list) in &mut by_tid {
        events.push(obj(vec![
            ("name", Value::String("thread_name".to_string())),
            ("ph", Value::String("M".to_string())),
            ("pid", Value::UInt(pid)),
            ("tid", Value::UInt(tid)),
            ("args", obj(vec![("name", Value::String(format!("thread-{tid}")))])),
        ]));
        // Parents sort before their children: earlier start first, and
        // on a start tie the longer span first.
        list.sort_by(|a, b| {
            a.start_us.cmp(&b.start_us).then(b.end_us.cmp(&a.end_us)).then(a.seq.cmp(&b.seq))
        });
        // Stack sweep: close every span that ends at or before the next
        // one starts, clamp children into their parents.
        let mut stack: Vec<(&SpanEvent, u64)> = Vec::new();
        for &ev in list.iter() {
            while let Some(&(top, top_end)) = stack.last() {
                if top_end > ev.start_us {
                    break;
                }
                events.push(end_event(top, pid, top_end));
                stack.pop();
            }
            let end = match stack.last() {
                Some(&(_, parent_end)) => ev.end_us.min(parent_end),
                None => ev.end_us,
            }
            .max(ev.start_us);
            events.push(begin_event(ev, pid));
            stack.push((ev, end));
        }
        while let Some((top, top_end)) = stack.pop() {
            events.push(end_event(top, pid, top_end));
        }
    }

    events.extend(snap.imported.iter().cloned());

    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ms".to_string())),
    ])
}

fn begin_event(ev: &SpanEvent, pid: u64) -> Value {
    let mut fields = vec![
        ("name", Value::String(ev.name.to_string())),
        ("cat", Value::String(ev.cat.to_string())),
        ("ph", Value::String("B".to_string())),
        ("ts", Value::UInt(ev.start_us)),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(ev.tid)),
    ];
    if let Some(args) = &ev.args {
        fields.push(("args", args.clone()));
    }
    obj(fields)
}

fn end_event(ev: &SpanEvent, pid: u64, ts: u64) -> Value {
    obj(vec![
        ("name", Value::String(ev.name.to_string())),
        ("cat", Value::String(ev.cat.to_string())),
        ("ph", Value::String("E".to_string())),
        ("ts", Value::UInt(ts)),
        ("pid", Value::UInt(pid)),
        ("tid", Value::UInt(ev.tid)),
    ])
}

/// One per-node timeline of a protocol-level trace: the rounds a node
/// spent awake, as `(start_us, end_us)` microsecond intervals (end
/// inclusive-rendered; an interval never overlaps the next). Rendered
/// as one Chrome thread of paired B/E `"awake"` spans.
#[derive(Debug, Clone, Default)]
pub struct ProtoTrack {
    /// Thread id inside the owning process (typically the node id + 1).
    pub tid: u64,
    /// Thread label shown by the viewer (e.g. `"node 7"`).
    pub name: String,
    /// Awake intervals, ascending and non-overlapping.
    pub spans: Vec<(u64, u64)>,
}

/// One counter series of a protocol-level trace (e.g. nodes awake per
/// round), rendered as Chrome `"C"` events on the process timeline.
#[derive(Debug, Clone, Default)]
pub struct ProtoCounter {
    /// Counter name shown by the viewer.
    pub name: String,
    /// `(ts_us, value)` samples, ascending in time.
    pub points: Vec<(u64, u64)>,
}

/// One simulated run in a protocol-level trace — its own Chrome
/// process, so several runs (or the PR-6 host trace) can sit side by
/// side in one Perfetto session.
#[derive(Debug, Clone, Default)]
pub struct ProtoProcess {
    /// Process id; pick ids that cannot collide with real host pids in
    /// the same viewer session (the fleet uses small 1-based indices).
    pub pid: u64,
    /// Process label (e.g. `"SleepingMIS on gnp-6 n=128"`).
    pub name: String,
    /// Per-node awake timelines.
    pub tracks: Vec<ProtoTrack>,
    /// Aggregate counter series.
    pub counters: Vec<ProtoCounter>,
}

/// Builds a Chrome trace-event document from protocol-level rows:
/// simulated rounds on the microsecond axis (the fleet maps 1 round to
/// 1 µs) instead of host wall-clock. The output passes
/// [`validate_trace`] by construction and loads alongside host traces
/// from [`Snapshot::write_chrome_trace`].
pub fn protocol_trace_value(processes: &[ProtoProcess]) -> Value {
    let mut events: Vec<Value> = Vec::new();
    for p in processes {
        events.push(obj(vec![
            ("name", Value::String("process_name".to_string())),
            ("ph", Value::String("M".to_string())),
            ("pid", Value::UInt(p.pid)),
            ("tid", Value::UInt(0)),
            ("args", obj(vec![("name", Value::String(p.name.clone()))])),
        ]));
        for t in &p.tracks {
            events.push(obj(vec![
                ("name", Value::String("thread_name".to_string())),
                ("ph", Value::String("M".to_string())),
                ("pid", Value::UInt(p.pid)),
                ("tid", Value::UInt(t.tid)),
                ("args", obj(vec![("name", Value::String(t.name.clone()))])),
            ]));
            for &(start, end) in &t.spans {
                for (ph, ts) in [("B", start), ("E", end.max(start))] {
                    events.push(obj(vec![
                        ("name", Value::String("awake".to_string())),
                        ("cat", Value::String("proto".to_string())),
                        ("ph", Value::String(ph.to_string())),
                        ("ts", Value::UInt(ts)),
                        ("pid", Value::UInt(p.pid)),
                        ("tid", Value::UInt(t.tid)),
                    ]));
                }
            }
        }
        // Counter samples share the process timeline (tid 0), so merge
        // the series into one time-sorted stream.
        let mut samples: Vec<(u64, &str, u64)> = Vec::new();
        for c in &p.counters {
            samples.extend(c.points.iter().map(|&(ts, v)| (ts, c.name.as_str(), v)));
        }
        samples.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(b.1)));
        for (ts, name, v) in samples {
            events.push(obj(vec![
                ("name", Value::String(name.to_string())),
                ("cat", Value::String("proto".to_string())),
                ("ph", Value::String("C".to_string())),
                ("ts", Value::UInt(ts)),
                ("pid", Value::UInt(p.pid)),
                ("tid", Value::UInt(0)),
                ("args", obj(vec![("value", Value::UInt(v))])),
            ]));
        }
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ms".to_string())),
    ])
}

/// Validates `text` as a Chrome trace-event document: every event has
/// the required fields, timestamps are non-decreasing within each
/// `(pid, tid)` timeline, every `"B"` has a matching same-name
/// `"E"` in stack order, and `"C"` counter samples carry timestamps.
///
/// # Errors
///
/// A description of the first violation found.
pub fn validate_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = serde_json::from_str(text).map_err(|e| format!("not JSON: {e}"))?;
    let events = match doc.get("traceEvents").and_then(Value::as_array) {
        Some(events) => events,
        None => doc
            .as_array()
            .ok_or_else(|| "neither a traceEvents object nor a bare array".to_string())?,
    };
    let mut check = TraceCheck { events: events.len(), ..TraceCheck::default() };
    let mut last_ts: BTreeMap<(u64, u64), u64> = BTreeMap::new();
    let mut stacks: BTreeMap<(u64, u64), Vec<String>> = BTreeMap::new();
    let mut cats: Vec<String> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing pid"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing tid"))?;
        if ph == "M" {
            continue;
        }
        if ph != "B" && ph != "E" && ph != "C" {
            return Err(format!("event {i} ({name}): unsupported ph {ph:?}"));
        }
        let ts = ev
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing ts"))?;
        let key = (pid, tid);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i} ({name}): ts {ts} < {prev} on timeline pid={pid} tid={tid}"
                ));
            }
        }
        last_ts.insert(key, ts);
        if ph == "C" {
            check.counters += 1;
            continue;
        }
        let stack = stacks.entry(key).or_default();
        if ph == "B" {
            stack.push(name.to_string());
            if let Some(cat) = ev.get("cat").and_then(Value::as_str) {
                if !cats.iter().any(|c| c == cat) {
                    cats.push(cat.to_string());
                }
            }
        } else {
            let open =
                stack.pop().ok_or_else(|| format!("event {i} ({name}): E without open B"))?;
            if open != name {
                return Err(format!("event {i}: E {name:?} closes open span {open:?}"));
            }
            check.spans += 1;
        }
    }
    for ((pid, tid), stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span {open:?} on timeline pid={pid} tid={tid}"));
        }
    }
    check.timelines = stacks.len();
    cats.sort();
    check.categories = cats;
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(
        tid: u64,
        cat: &'static str,
        name: &'static str,
        start: u64,
        end: u64,
        seq: u64,
    ) -> SpanEvent {
        SpanEvent { cat, name, args: None, tid, start_us: start, end_us: end, seq }
    }

    fn validate(snap: &Snapshot) -> TraceCheck {
        let text = serde::value::to_compact_string(&trace_value(snap, "t"));
        validate_trace(&text).expect("trace validates")
    }

    #[test]
    fn nested_and_sequential_spans_export_cleanly() {
        let snap = Snapshot {
            events: vec![
                span(1, "run", "plan", 100, 900, 0),
                span(1, "pool", "shard", 150, 400, 1),
                span(1, "pool", "shard", 450, 800, 2),
                span(2, "trial", "static", 200, 300, 3),
            ],
            ..Snapshot::default()
        };
        let check = validate(&snap);
        assert_eq!(check.spans, 4);
        assert_eq!(check.timelines, 2);
        assert_eq!(check.categories, vec!["pool", "run", "trial"]);
    }

    #[test]
    fn overlapping_spans_are_clamped_not_crossed() {
        // Overlap without nesting: [100, 500) and [300, 700).
        let snap = Snapshot {
            events: vec![span(1, "a", "first", 100, 500, 0), span(1, "a", "second", 300, 700, 1)],
            ..Snapshot::default()
        };
        let check = validate(&snap);
        assert_eq!(check.spans, 2);
    }

    #[test]
    fn identical_start_spans_keep_seq_order() {
        let snap = Snapshot {
            events: vec![span(1, "a", "outer", 100, 100, 0), span(1, "a", "inner", 100, 100, 1)],
            ..Snapshot::default()
        };
        let check = validate(&snap);
        assert_eq!(check.spans, 2);
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_trace("not json").is_err());
        assert!(validate_trace(r#"{"traceEvents": 3}"#).is_err());
        // Unmatched B.
        let unmatched = r#"[{"name":"x","ph":"B","ts":1,"pid":1,"tid":1}]"#;
        assert!(validate_trace(unmatched).unwrap_err().contains("unclosed"));
        // Decreasing ts.
        let unsorted = r#"[
            {"name":"x","ph":"B","ts":5,"pid":1,"tid":1},
            {"name":"x","ph":"E","ts":4,"pid":1,"tid":1}
        ]"#;
        assert!(validate_trace(unsorted).unwrap_err().contains("ts"));
        // Mismatched close.
        let crossed = r#"[
            {"name":"x","ph":"B","ts":1,"pid":1,"tid":1},
            {"name":"y","ph":"B","ts":2,"pid":1,"tid":1},
            {"name":"x","ph":"E","ts":3,"pid":1,"tid":1}
        ]"#;
        assert!(validate_trace(crossed).unwrap_err().contains("closes"));
    }

    #[test]
    fn protocol_trace_validates_with_counters() {
        let procs = vec![ProtoProcess {
            pid: 1,
            name: "SleepingMIS".to_string(),
            tracks: vec![
                ProtoTrack { tid: 1, name: "node 0".to_string(), spans: vec![(0, 3), (7, 7)] },
                ProtoTrack { tid: 2, name: "node 1".to_string(), spans: vec![(0, 5)] },
            ],
            counters: vec![ProtoCounter {
                name: "awake".to_string(),
                points: vec![(0, 2), (4, 1), (8, 0)],
            }],
        }];
        let text = serde::value::to_compact_string(&protocol_trace_value(&procs));
        let check = validate_trace(&text).expect("protocol trace validates");
        assert_eq!(check.spans, 3);
        assert_eq!(check.counters, 3);
        assert_eq!(check.categories, vec!["proto"]);
        // Per-node tracks plus the counter timeline on tid 0.
        assert_eq!(check.timelines, 2);
    }

    #[test]
    fn counter_events_need_timestamps() {
        let no_ts = r#"[{"name":"awake","ph":"C","pid":1,"tid":0}]"#;
        assert!(validate_trace(no_ts).unwrap_err().contains("missing ts"));
        let ok = r#"[{"name":"awake","ph":"C","ts":3,"pid":1,"tid":0,"args":{"value":2}}]"#;
        assert_eq!(validate_trace(ok).unwrap().counters, 1);
    }

    #[test]
    fn imported_worker_events_survive_export() {
        let snap = Snapshot {
            events: vec![span(1, "procs", "wait-worker", 100, 200, 0)],
            imported: vec![
                serde_json::from_str(
                    r#"{"name":"w","cat":"trial","ph":"B","ts":120,"pid":999,"tid":1}"#,
                )
                .unwrap(),
                serde_json::from_str(r#"{"name":"w","ph":"E","ts":180,"pid":999,"tid":1}"#)
                    .unwrap(),
            ],
            ..Snapshot::default()
        };
        let check = validate(&snap);
        assert_eq!(check.spans, 2);
        assert_eq!(check.timelines, 2);
    }
}
