//! Proper-coloring verification (for the (Δ+1)-coloring extension).

use serde::{Deserialize, Serialize};
use sleepy_graph::{Graph, NodeId};
use std::error::Error;
use std::fmt;

/// Why a coloring fails to be a proper (Δ+1)-coloring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ColoringViolation {
    /// Two adjacent nodes share a color.
    MonochromaticEdge {
        /// One endpoint.
        u: NodeId,
        /// The other endpoint.
        v: NodeId,
        /// The shared color.
        color: u32,
    },
    /// A node's color exceeds its degree (outside its deg+1 palette, and
    /// hence potentially outside Δ+1).
    ColorOutOfPalette {
        /// The offending node.
        node: NodeId,
        /// Its color.
        color: u32,
        /// Its degree (palette is {0..=degree}).
        degree: usize,
    },
    /// The color vector's length does not match the graph.
    WrongLength {
        /// Provided vector length.
        got: usize,
        /// Number of nodes.
        expected: usize,
    },
}

impl fmt::Display for ColoringViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringViolation::MonochromaticEdge { u, v, color } => {
                write!(f, "adjacent nodes {u} and {v} both have color {color}")
            }
            ColoringViolation::ColorOutOfPalette { node, color, degree } => {
                write!(f, "node {node} has color {color} outside its palette 0..={degree}")
            }
            ColoringViolation::WrongLength { got, expected } => {
                write!(f, "color vector has length {got}, expected {expected}")
            }
        }
    }
}

impl Error for ColoringViolation {}

/// Verifies a proper coloring where each node's color lies in its own
/// {0..=deg(v)} palette (which implies at most Δ+1 colors overall).
///
/// # Errors
///
/// The first violation found.
///
/// # Example
///
/// ```
/// use sleepy_graph::generators;
/// use sleepy_verify::verify_coloring;
///
/// let g = generators::path(3).unwrap();
/// assert!(verify_coloring(&g, &[0, 1, 0]).is_ok());
/// assert!(verify_coloring(&g, &[0, 0, 1]).is_err());
/// ```
pub fn verify_coloring(g: &Graph, colors: &[u32]) -> Result<(), ColoringViolation> {
    if colors.len() != g.n() {
        return Err(ColoringViolation::WrongLength { got: colors.len(), expected: g.n() });
    }
    for v in g.node_ids() {
        if colors[v as usize] > g.degree(v) as u32 {
            return Err(ColoringViolation::ColorOutOfPalette {
                node: v,
                color: colors[v as usize],
                degree: g.degree(v),
            });
        }
    }
    for (u, v) in g.edges() {
        if colors[u as usize] == colors[v as usize] {
            return Err(ColoringViolation::MonochromaticEdge { u, v, color: colors[u as usize] });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::generators;

    #[test]
    fn accepts_proper_coloring() {
        let g = generators::cycle(6).unwrap();
        assert!(verify_coloring(&g, &[0, 1, 0, 1, 0, 1]).is_ok());
    }

    #[test]
    fn rejects_monochromatic_edge() {
        let g = generators::path(2).unwrap();
        assert_eq!(
            verify_coloring(&g, &[1, 1]),
            Err(ColoringViolation::MonochromaticEdge { u: 0, v: 1, color: 1 })
        );
    }

    #[test]
    fn rejects_out_of_palette() {
        let g = generators::path(3).unwrap();
        // Endpoint of a path has degree 1: palette {0, 1}.
        assert_eq!(
            verify_coloring(&g, &[2, 1, 0]),
            Err(ColoringViolation::ColorOutOfPalette { node: 0, color: 2, degree: 1 })
        );
    }

    #[test]
    fn rejects_wrong_length() {
        let g = generators::path(3).unwrap();
        assert!(matches!(
            verify_coloring(&g, &[0]),
            Err(ColoringViolation::WrongLength { got: 1, expected: 3 })
        ));
    }

    #[test]
    fn displays() {
        assert!(!ColoringViolation::MonochromaticEdge { u: 0, v: 1, color: 2 }
            .to_string()
            .is_empty());
    }
}
