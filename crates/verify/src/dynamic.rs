//! Per-phase validity checking for dynamic (churn) workloads.

use crate::checker::{verify_mis, MisViolation};
use sleepy_graph::Graph;
use std::error::Error;
use std::fmt;

/// An MIS violation located in a specific phase of a dynamic run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseViolation {
    /// 0-based phase index in which the violation occurred.
    pub phase: usize,
    /// The violation itself.
    pub violation: MisViolation,
}

impl fmt::Display for PhaseViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase {}: {}", self.phase, self.violation)
    }
}

impl Error for PhaseViolation {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        Some(&self.violation)
    }
}

/// Verifies a whole dynamic run: each phase's candidate set must be a
/// valid MIS of that phase's (mutated) graph. Returns the number of
/// phases checked.
///
/// # Errors
///
/// The first failing phase's [`PhaseViolation`].
///
/// # Example
///
/// ```
/// use sleepy_graph::generators;
/// use sleepy_verify::verify_mis_phases;
///
/// let p3 = generators::path(3).unwrap();
/// let p2 = generators::path(2).unwrap();
/// let phases = [(&p3, vec![true, false, true]), (&p2, vec![false, true])];
/// let checked = verify_mis_phases(phases.iter().map(|(g, s)| (*g, s.as_slice())))?;
/// assert_eq!(checked, 2);
/// # Ok::<(), sleepy_verify::PhaseViolation>(())
/// ```
pub fn verify_mis_phases<'a, I>(phases: I) -> Result<usize, PhaseViolation>
where
    I: IntoIterator<Item = (&'a Graph, &'a [bool])>,
{
    let mut checked = 0usize;
    for (phase, (graph, in_set)) in phases.into_iter().enumerate() {
        verify_mis(graph, in_set).map_err(|violation| PhaseViolation { phase, violation })?;
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::generators;

    #[test]
    fn all_phases_valid() {
        let a = generators::cycle(6).unwrap();
        let b = generators::empty(0).unwrap();
        let sa = vec![true, false, true, false, true, false];
        let sb: Vec<bool> = vec![];
        let phases = [(&a, sa.as_slice()), (&b, sb.as_slice())];
        assert_eq!(verify_mis_phases(phases).unwrap(), 2);
    }

    #[test]
    fn violation_names_the_phase() {
        let a = generators::path(3).unwrap();
        let ok = vec![true, false, true];
        let bad = vec![true, true, false];
        let phases = [(&a, ok.as_slice()), (&a, bad.as_slice())];
        let err = verify_mis_phases(phases).unwrap_err();
        assert_eq!(err.phase, 1);
        assert_eq!(err.violation, MisViolation::NotIndependent { u: 0, v: 1 });
        assert!(err.to_string().contains("phase 1"));
    }

    #[test]
    fn empty_sequence_checks_zero_phases() {
        assert_eq!(verify_mis_phases(std::iter::empty()).unwrap(), 0);
    }
}
