//! Sequential greedy (lexicographically-first) MIS references.
//!
//! The paper's Corollary 1: `SleepingMISRecursive` computes exactly the MIS
//! the sequential greedy algorithm produces when processing nodes in
//! decreasing rank order (ranks as in Definition 1). These functions
//! compute that reference for arbitrary priority keys.

use sleepy_graph::{Graph, NodeId};

/// Sequential greedy MIS over an explicit processing order: scan `order`
/// front to back, adding a node iff none of its neighbors was added
/// before — the *lexicographically-first MIS* of that order.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..n`.
pub fn greedy_by_order(g: &Graph, order: &[NodeId]) -> Vec<bool> {
    assert_eq!(order.len(), g.n(), "order must cover every node exactly once");
    let mut seen = vec![false; g.n()];
    for &v in order {
        assert!(!seen[v as usize], "node {v} appears twice in the order");
        seen[v as usize] = true;
    }
    let mut in_mis = vec![false; g.n()];
    let mut decided = vec![false; g.n()];
    for &v in order {
        if decided[v as usize] {
            continue;
        }
        in_mis[v as usize] = true;
        decided[v as usize] = true;
        for &u in g.neighbors(v) {
            decided[u as usize] = true;
        }
    }
    in_mis
}

/// The lexicographically-first MIS under per-node priority keys, processing
/// nodes in **decreasing** key order. Ties are *not* broken: the key type's
/// `Ord` must already be total and injective enough for the caller's
/// purpose (the Corollary 1 experiments pass `(rank, id)` pairs or detect
/// tied ranks up front).
///
/// # Example
///
/// ```
/// use sleepy_graph::generators;
/// use sleepy_verify::lexicographically_first_mis;
///
/// let g = generators::path(3).unwrap();
/// // The middle node has the highest key, so it is processed first and
/// // joins; both endpoints are its neighbors and end up dominated.
/// let mis = lexicographically_first_mis(&g, &[1u64, 9, 2]);
/// assert_eq!(mis, vec![false, true, false]);
/// ```
pub fn lexicographically_first_mis<K: Ord>(g: &Graph, keys: &[K]) -> Vec<bool> {
    assert_eq!(keys.len(), g.n(), "one key per node required");
    let mut order: Vec<NodeId> = (0..g.n() as NodeId).collect();
    order.sort_by(|&a, &b| keys[b as usize].cmp(&keys[a as usize]));
    greedy_by_order(g, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::verify_mis;
    use sleepy_graph::generators;

    #[test]
    fn greedy_by_order_path() {
        let g = generators::path(4).unwrap();
        assert_eq!(greedy_by_order(&g, &[0, 1, 2, 3]), vec![true, false, true, false]);
        assert_eq!(greedy_by_order(&g, &[1, 0, 2, 3]), vec![false, true, false, true]);
    }

    #[test]
    fn output_is_always_a_valid_mis() {
        let g = generators::gnp(80, 0.08, 5).unwrap();
        for seed in 0..5u64 {
            // Pseudo-random keys from a simple LCG.
            let keys: Vec<u64> = (0..g.n() as u64)
                .map(|v| (seed + 1).wrapping_mul(6364136223846793005).wrapping_add(v * 999331))
                .map(|x| x ^ (x >> 17))
                .collect();
            let mis = lexicographically_first_mis(&g, &keys);
            verify_mis(&g, &mis).unwrap();
        }
    }

    #[test]
    fn decreasing_order_means_highest_key_always_in() {
        let g = generators::clique(6).unwrap();
        let keys = [3u64, 9, 1, 4, 2, 0];
        let mis = lexicographically_first_mis(&g, &keys);
        assert_eq!(mis, vec![false, true, false, false, false, false]);
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_panics() {
        let g = generators::path(3).unwrap();
        greedy_by_order(&g, &[0, 0, 1]);
    }

    #[test]
    #[should_panic(expected = "one key per node")]
    fn short_keys_panic() {
        let g = generators::path(3).unwrap();
        lexicographically_first_mis(&g, &[1u64]);
    }

    #[test]
    fn empty_graph() {
        let g = generators::empty(0).unwrap();
        assert!(greedy_by_order(&g, &[]).is_empty());
    }
}
