//! MIS validity checking with structured violation reports.

use serde::{Deserialize, Serialize};
use sleepy_graph::{Graph, NodeId};
use std::error::Error;
use std::fmt;

/// Why a candidate set fails to be a maximal independent set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum MisViolation {
    /// Two adjacent nodes are both in the set.
    NotIndependent {
        /// One endpoint in the set.
        u: NodeId,
        /// The adjacent other endpoint in the set.
        v: NodeId,
    },
    /// A node is outside the set and has no neighbor in the set.
    NotMaximal {
        /// The undominated node.
        node: NodeId,
    },
    /// The membership vector's length does not match the graph.
    WrongLength {
        /// Provided vector length.
        got: usize,
        /// Number of nodes in the graph.
        expected: usize,
    },
}

impl fmt::Display for MisViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisViolation::NotIndependent { u, v } => {
                write!(f, "nodes {u} and {v} are adjacent and both in the set")
            }
            MisViolation::NotMaximal { node } => {
                write!(f, "node {node} is outside the set and undominated")
            }
            MisViolation::WrongLength { got, expected } => {
                write!(f, "membership vector has length {got}, expected {expected}")
            }
        }
    }
}

impl Error for MisViolation {}

/// Whether `in_set` (of the right length) is an independent set of `g`.
pub fn is_independent(g: &Graph, in_set: &[bool]) -> bool {
    in_set.len() == g.n() && g.edges().all(|(u, v)| !(in_set[u as usize] && in_set[v as usize]))
}

/// Whether `in_set` is a *maximal* independent set of `g`.
pub fn is_maximal_independent(g: &Graph, in_set: &[bool]) -> bool {
    verify_mis(g, in_set).is_ok()
}

/// Full MIS verification: length, independence, then maximality. Returns
/// the first violation found (deterministically: smallest edge, then
/// smallest node).
///
/// # Errors
///
/// The discovered [`MisViolation`], if any.
///
/// # Example
///
/// ```
/// use sleepy_graph::generators;
/// use sleepy_verify::{verify_mis, MisViolation};
///
/// let g = generators::path(3).unwrap();
/// assert!(verify_mis(&g, &[true, false, true]).is_ok());
/// assert_eq!(
///     verify_mis(&g, &[true, true, false]),
///     Err(MisViolation::NotIndependent { u: 0, v: 1 })
/// );
/// assert_eq!(
///     verify_mis(&g, &[true, false, false]),
///     Err(MisViolation::NotMaximal { node: 2 })
/// );
/// ```
pub fn verify_mis(g: &Graph, in_set: &[bool]) -> Result<(), MisViolation> {
    if in_set.len() != g.n() {
        return Err(MisViolation::WrongLength { got: in_set.len(), expected: g.n() });
    }
    for (u, v) in g.edges() {
        if in_set[u as usize] && in_set[v as usize] {
            return Err(MisViolation::NotIndependent { u, v });
        }
    }
    for v in g.node_ids() {
        if !in_set[v as usize] && !g.neighbors(v).iter().any(|&u| in_set[u as usize]) {
            return Err(MisViolation::NotMaximal { node: v });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepy_graph::generators;

    #[test]
    fn accepts_valid_mis() {
        let g = generators::cycle(6).unwrap();
        assert!(verify_mis(&g, &[true, false, true, false, true, false]).is_ok());
        // Size-2 MIS of C6 is also valid (maximal but not maximum).
        assert!(verify_mis(&g, &[true, false, false, true, false, false]).is_ok());
    }

    #[test]
    fn detects_dependence() {
        let g = generators::path(4).unwrap();
        assert_eq!(
            verify_mis(&g, &[true, true, false, true]),
            Err(MisViolation::NotIndependent { u: 0, v: 1 })
        );
        assert!(!is_independent(&g, &[true, true, false, true]));
    }

    #[test]
    fn detects_non_maximality() {
        let g = generators::star(5).unwrap();
        // Empty set: hub undominated.
        assert_eq!(verify_mis(&g, &[false; 5]), Err(MisViolation::NotMaximal { node: 0 }));
        assert!(is_independent(&g, &[false; 5]));
        assert!(!is_maximal_independent(&g, &[false; 5]));
    }

    #[test]
    fn detects_wrong_length() {
        let g = generators::path(3).unwrap();
        assert_eq!(verify_mis(&g, &[true]), Err(MisViolation::WrongLength { got: 1, expected: 3 }));
    }

    #[test]
    fn empty_graph_conventions() {
        let g = generators::empty(0).unwrap();
        assert!(verify_mis(&g, &[]).is_ok());
        let g = generators::empty(3).unwrap();
        // Isolated nodes must all be in.
        assert!(verify_mis(&g, &[true, true, true]).is_ok());
        assert_eq!(verify_mis(&g, &[true, false, true]), Err(MisViolation::NotMaximal { node: 1 }));
    }

    #[test]
    fn violation_display() {
        assert!(!MisViolation::NotIndependent { u: 0, v: 1 }.to_string().is_empty());
        assert!(!MisViolation::NotMaximal { node: 2 }.to_string().is_empty());
        assert!(!MisViolation::WrongLength { got: 1, expected: 2 }.to_string().is_empty());
    }
}
