//! # sleepy-verify
//!
//! Verification of MIS outputs and the lexicographically-first MIS
//! references used to validate Corollary 1 of the paper ("Algorithm
//! SleepingMISRecursive(k) and the parallel/distributed randomized greedy
//! MIS algorithm produce the same MIS").
//!
//! * [`verify_mis`] checks independence and maximality (= domination),
//!   returning a structured [`MisViolation`] naming the offending nodes.
//! * [`verify_mis_phases`] extends the check to dynamic (churn)
//!   workloads, validating every phase of a mutating graph and naming
//!   the failing phase.
//! * [`lexicographically_first_mis`] computes the MIS the sequential greedy
//!   finds when processing nodes in a given priority order — the unique MIS
//!   the sleeping algorithms must reproduce given the same coins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod coloring;
mod dynamic;
mod reference;

pub use checker::{is_independent, is_maximal_independent, verify_mis, MisViolation};
pub use coloring::{verify_coloring, ColoringViolation};
pub use dynamic::{verify_mis_phases, PhaseViolation};
pub use reference::{greedy_by_order, lexicographically_first_mis};
