//! Per-phase streaming aggregation for dynamic (churn) workloads.

use crate::StreamingMoments;
use serde::{Deserialize, Serialize};

/// A mergeable sequence of [`StreamingMoments`], one per phase of a
/// dynamic workload.
///
/// Trials of a dynamic job each contribute one observation per phase;
/// the series keeps the phases separate so experiments can report how a
/// metric (awake complexity, repair scope, …) evolves across churn
/// events. Like [`StreamingMoments`], merging in a canonical order keeps
/// results byte-identical across thread counts.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseSeries {
    /// One accumulator per phase index.
    phases: Vec<StreamingMoments>,
}

impl PhaseSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of phases observed so far.
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no phase has been observed.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Accumulates one observation for `phase`, growing the series with
    /// empty accumulators as needed.
    pub fn push(&mut self, phase: usize, x: f64) {
        if phase >= self.phases.len() {
            self.phases.resize_with(phase + 1, StreamingMoments::new);
        }
        self.phases[phase].push(x);
    }

    /// The accumulator of `phase`, if any observation reached it.
    pub fn phase(&self, phase: usize) -> Option<&StreamingMoments> {
        self.phases.get(phase)
    }

    /// Iterates `(phase index, accumulator)` in phase order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &StreamingMoments)> {
        self.phases.iter().enumerate()
    }

    /// Merges another series phase-by-phase (callers merge in canonical
    /// shard order, as with [`StreamingMoments::merge`]).
    pub fn merge(&mut self, other: &PhaseSeries) {
        if other.phases.len() > self.phases.len() {
            self.phases.resize_with(other.phases.len(), StreamingMoments::new);
        }
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
    }

    /// Per-phase means, in phase order (0 for phases with no data).
    pub fn means(&self) -> Vec<f64> {
        self.phases.iter().map(|p| if p.count == 0 { 0.0 } else { p.mean }).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_grows_and_separates_phases() {
        let mut s = PhaseSeries::new();
        s.push(0, 1.0);
        s.push(2, 5.0);
        s.push(0, 3.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s.phase(0).unwrap().count, 2);
        assert_eq!(s.phase(1).unwrap().count, 0);
        assert_eq!(s.phase(2).unwrap().count, 1);
        assert_eq!(s.means(), vec![2.0, 0.0, 5.0]);
        assert!(s.iter().count() == 3 && !s.is_empty());
    }

    #[test]
    fn merge_matches_sequential_push() {
        let mut whole = PhaseSeries::new();
        let mut left = PhaseSeries::new();
        let mut right = PhaseSeries::new();
        for t in 0..20 {
            for phase in 0..4 {
                let x = ((t * 7 + phase * 3) % 11) as f64;
                whole.push(phase, x);
                if t < 9 {
                    left.push(phase, x);
                } else {
                    right.push(phase, x);
                }
            }
        }
        right.push(5, 42.0); // ragged lengths merge too
        whole.push(5, 42.0);
        left.merge(&right);
        assert_eq!(left.len(), whole.len());
        for (i, p) in whole.iter() {
            let l = left.phase(i).unwrap();
            assert_eq!(l.count, p.count, "phase {i}");
            assert!((l.mean - p.mean).abs() < 1e-12);
            assert!((l.std_dev() - p.std_dev()).abs() < 1e-9);
        }
    }

    #[test]
    fn merge_into_empty_copies() {
        let mut a = PhaseSeries::new();
        let mut b = PhaseSeries::new();
        b.push(1, 2.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.phase(1).unwrap().mean, 2.0);
    }
}
