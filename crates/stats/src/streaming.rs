//! Mergeable streaming moment accumulators for sharded trial execution.
//!
//! The fleet runtime aggregates metrics across thousands of trials that
//! finish on different worker threads in scheduling-dependent order. To
//! keep aggregate output *byte-identical* regardless of thread count, a
//! shard accumulates its trials in trial order into a
//! [`StreamingMoments`], and shards are merged in shard-index order —
//! the merge is mathematically associative (Chan et al. pairwise
//! update), and fixing the merge order also pins down the floating-point
//! rounding, so the combined result does not depend on which worker ran
//! which shard.

use crate::Summary;
use serde::{Deserialize, Serialize};

/// Streaming count/mean/M2/min/max in O(1) memory, combinable with other
/// accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    /// Number of observations.
    pub count: u64,
    /// Running mean (0 when empty).
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's M2).
    pub m2: f64,
    /// Minimum (+inf when empty).
    pub min: f64,
    /// Maximum (-inf when empty).
    pub max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        StreamingMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one observation (Welford's online update).
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Combines two accumulators (Chan et al. parallel update). The
    /// result summarizes the concatenation of both sample streams.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * (n2 / total);
        self.m2 += other.m2 + delta * delta * (n1 * n2 / total);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample standard deviation (n−1 denominator; 0 if count < 2).
    pub fn std_dev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).max(0.0).sqrt()
        }
    }

    /// Minimum, with empty accumulators reading 0 (matching
    /// [`Summary::of`] on an empty sample).
    pub fn min_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum, with empty accumulators reading 0.
    pub fn max_or_zero(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Converts into a [`Summary`], supplying the median from retained
    /// samples (the accumulator itself cannot produce quantiles).
    pub fn to_summary(&self, median: f64) -> Summary {
        Summary {
            count: self.count as usize,
            mean: if self.count == 0 { 0.0 } else { self.mean },
            std_dev: self.std_dev(),
            min: self.min_or_zero(),
            max: self.max_or_zero(),
            median,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn matches_batch_summary() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = StreamingMoments::new();
        for &x in &data {
            acc.push(x);
        }
        let s = Summary::of(&data);
        assert_eq!(acc.count as usize, s.count);
        assert_close(acc.mean, s.mean);
        assert_close(acc.std_dev(), s.std_dev);
        assert_close(acc.min_or_zero(), s.min);
        assert_close(acc.max_or_zero(), s.max);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| ((i * 37) % 11) as f64 / 3.0).collect();
        let mut whole = StreamingMoments::new();
        for &x in &data {
            whole.push(x);
        }
        for split in [1, 13, 50, 99] {
            let (a, b) = data.split_at(split);
            let mut left = StreamingMoments::new();
            a.iter().for_each(|&x| left.push(x));
            let mut right = StreamingMoments::new();
            b.iter().for_each(|&x| right.push(x));
            left.merge(&right);
            assert_eq!(left.count, whole.count);
            assert_close(left.mean, whole.mean);
            assert_close(left.std_dev(), whole.std_dev());
            assert_close(left.min, whole.min);
            assert_close(left.max, whole.max);
        }
    }

    #[test]
    fn merge_order_is_bit_stable_for_fixed_order() {
        // Merging the same shards in the same order twice gives identical
        // bits — the property the fleet's canonical shard-order reduction
        // relies on.
        let shards: Vec<StreamingMoments> = (0..8)
            .map(|s| {
                let mut acc = StreamingMoments::new();
                for i in 0..10 {
                    acc.push(((s * 31 + i * 7) % 13) as f64 / 7.0);
                }
                acc
            })
            .collect();
        let reduce = || {
            let mut total = StreamingMoments::new();
            for s in &shards {
                total.merge(s);
            }
            total
        };
        let a = reduce();
        let b = reduce();
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.m2.to_bits(), b.m2.to_bits());
    }

    #[test]
    fn empty_and_identity_merges() {
        let mut a = StreamingMoments::new();
        let empty = StreamingMoments::new();
        a.merge(&empty);
        assert_eq!(a.count, 0);
        assert_eq!(a.min_or_zero(), 0.0);
        assert_eq!(a.max_or_zero(), 0.0);
        a.push(3.0);
        a.merge(&empty);
        assert_eq!(a.count, 1);
        assert_close(a.mean, 3.0);
        let mut b = StreamingMoments::new();
        b.merge(&a);
        assert_close(b.mean, 3.0);
        assert_eq!(b.to_summary(3.0).median, 3.0);
    }
}
