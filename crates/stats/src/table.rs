//! Plain-text and markdown table rendering for experiment reports.

/// An incrementally built text table with aligned columns.
///
/// # Example
///
/// ```
/// use sleepy_stats::TextTable;
/// let mut t = TextTable::new(vec!["algo", "n", "avg awake"]);
/// t.row(vec!["SleepingMIS".into(), "1024".into(), "3.96".into()]);
/// t.row(vec!["Luby-B".into(), "1024".into(), "14.2".into()]);
/// let text = t.render();
/// assert!(text.contains("SleepingMIS"));
/// let md = t.render_markdown();
/// assert!(md.starts_with("| algo |"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.chars().count());
            }
        }
        w
    }

    /// Renders with space-aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        out.push_str(&w.iter().map(|n| "-".repeat(*n)).collect::<Vec<_>>().join("  "));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.headers.join(" | "));
        out.push_str(" |\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 3);
        // Column 2 starts at the same offset in header and row.
        let header_off = lines[0].find("long-header").unwrap();
        let row_off = lines[2].find('1').unwrap();
        assert_eq!(header_off, row_off);
    }

    #[test]
    fn padding_and_truncation() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into()]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        let md = t.render_markdown();
        assert!(md.contains("| 1 |  |"));
        assert!(!md.contains('3'));
    }

    #[test]
    fn markdown_shape() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["y".into()]);
        assert_eq!(t.render_markdown(), "| x |\n|---|\n| y |\n");
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new(vec!["only"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
