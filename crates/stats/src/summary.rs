//! Sample summaries.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of f64 observations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 if count < 2).
    pub std_dev: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Median (0 for an empty sample).
    pub median: f64,
}

impl Summary {
    /// Computes the summary of `data`.
    ///
    /// # Example
    ///
    /// ```
    /// use sleepy_stats::Summary;
    /// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
    /// assert_eq!(s.mean, 2.5);
    /// assert_eq!(s.median, 2.5);
    /// assert_eq!(s.min, 1.0);
    /// ```
    pub fn of(data: &[f64]) -> Self {
        let count = data.len();
        if count == 0 {
            return Summary { count: 0, mean: 0.0, std_dev: 0.0, min: 0.0, max: 0.0, median: 0.0 };
        }
        let mean = data.iter().sum::<f64>() / count as f64;
        let var = if count < 2 {
            0.0
        } else {
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        };
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
        let median = if count % 2 == 1 {
            sorted[count / 2]
        } else {
            (sorted[count / 2 - 1] + sorted[count / 2]) / 2.0
        };
        Summary { count, mean, std_dev: var.sqrt(), min: sorted[0], max: sorted[count - 1], median }
    }

    /// Half-width of the ~95% confidence interval of the mean
    /// (normal approximation: 1.96·σ/√n; 0 if count < 2).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// The p-th percentile (nearest-rank on the sorted data), p ∈ \[0, 100\].
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or p is out of range.
    pub fn percentile_of(data: &[f64], p: f64) -> f64 {
        assert!(!data.is_empty(), "percentile of an empty sample");
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
        let mut sorted = data.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in summaries"));
        let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
        sorted[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_summary() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138089935).abs() < 1e-6);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert!(s.ci95_half_width() > 0.0);
    }

    #[test]
    fn empty_and_singleton() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        let s = Summary::of(&[42.0]);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn percentiles() {
        let data: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert_eq!(Summary::percentile_of(&data, 0.0), 1.0);
        assert_eq!(Summary::percentile_of(&data, 100.0), 100.0);
        assert_eq!(Summary::percentile_of(&data, 50.0), 51.0); // nearest rank
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        Summary::percentile_of(&[], 50.0);
    }
}
