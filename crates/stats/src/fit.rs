//! Least-squares growth-shape fits.
//!
//! To decide whether a measured quantity f(n) behaves like a constant,
//! like log n, like (log n)^b, or like n^b, we fit straight lines in
//! transformed coordinates:
//!
//! * [`fit_power`]: log f = b·log n + log a  ⇒  f ≈ a·n^b
//!   (b ≈ 0 means "constant in n"),
//! * [`fit_log_power`]: log f = b·log(log n) + log a  ⇒  f ≈ a·(log₂ n)^b
//!   (b ≈ 1 means "logarithmic"; Algorithm 2's worst-case round complexity
//!   should fit with b ≈ ℓ + 1 ≈ 3.41).

use serde::{Deserialize, Serialize};

/// An ordinary least-squares line fit y = slope·x + intercept.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² ∈ \[0, 1\] (1 if the fit is exact;
    /// also 1 for a perfectly flat response).
    pub r_squared: f64,
}

/// Ordinary least-squares regression of y on x.
///
/// # Panics
///
/// Panics if fewer than two points are given or all x are identical.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    assert!(sxx > 0.0, "all x values identical");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r_squared = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    LinearFit { slope, intercept, r_squared }
}

/// A fitted growth model f(n) ≈ amplitude · base(n)^exponent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GrowthFit {
    /// The fitted exponent b.
    pub exponent: f64,
    /// The fitted amplitude a.
    pub amplitude: f64,
    /// R² of the underlying line fit in transformed coordinates.
    pub r_squared: f64,
}

/// Fits f(n) ≈ a·n^b by regressing log f on log n.
///
/// Exponent b ≈ 0 with a flat response indicates O(1) behavior; b ≈ 1
/// linear; b ≈ 3 cubic (Algorithm 1's worst-case round complexity).
/// Non-positive observations are clamped to a tiny positive value.
///
/// # Panics
///
/// Panics on fewer than two points or identical n values.
///
/// # Example
///
/// ```
/// use sleepy_stats::fit_power;
/// let ns = [64.0, 256.0, 1024.0, 4096.0];
/// let f: Vec<f64> = ns.iter().map(|n| 5.0 * n * n).collect();
/// let fit = fit_power(&ns, &f);
/// assert!((fit.exponent - 2.0).abs() < 1e-9);
/// assert!((fit.amplitude - 5.0).abs() < 1e-6);
/// ```
pub fn fit_power(ns: &[f64], fs: &[f64]) -> GrowthFit {
    let xs: Vec<f64> = ns.iter().map(|n| n.ln()).collect();
    let ys: Vec<f64> = fs.iter().map(|f| f.max(1e-12).ln()).collect();
    let line = linear_regression(&xs, &ys);
    GrowthFit { exponent: line.slope, amplitude: line.intercept.exp(), r_squared: line.r_squared }
}

/// Fits f(n) ≈ a·(log₂ n)^b by regressing log f on log log₂ n.
///
/// b ≈ 1 indicates Θ(log n); Algorithm 2's worst-case round complexity
/// should fit with b close to ℓ + 1 ≈ 3.41.
///
/// # Panics
///
/// Panics on fewer than two points, identical n values, or n ≤ 2 entries
/// (log log undefined).
pub fn fit_log_power(ns: &[f64], fs: &[f64]) -> GrowthFit {
    let xs: Vec<f64> = ns
        .iter()
        .map(|n| {
            assert!(*n > 2.0, "fit_log_power requires n > 2");
            n.log2().ln()
        })
        .collect();
    let ys: Vec<f64> = fs.iter().map(|f| f.max(1e-12).ln()).collect();
    let line = linear_regression(&xs, &ys);
    GrowthFit { exponent: line.slope, amplitude: line.intercept.exp(), r_squared: line.r_squared }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line() {
        let fit = linear_regression(&[1.0, 2.0, 3.0], &[3.0, 5.0, 7.0]);
        assert!((fit.slope - 2.0).abs() < 1e-12);
        assert!((fit.intercept - 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_r2_below_one() {
        let fit = linear_regression(&[1.0, 2.0, 3.0, 4.0], &[1.0, 2.5, 2.6, 4.2]);
        assert!(fit.r_squared < 1.0);
        assert!(fit.r_squared > 0.8);
    }

    #[test]
    fn flat_response_is_exponent_zero() {
        let ns = [100.0, 1000.0, 10000.0];
        let fit = fit_power(&ns, &[7.0, 7.0, 7.0]);
        assert!(fit.exponent.abs() < 1e-12);
        assert!((fit.amplitude - 7.0).abs() < 1e-9);
    }

    #[test]
    fn cubic_growth_detected() {
        let ns: Vec<f64> = [64.0, 128.0, 256.0, 512.0].to_vec();
        let fs: Vec<f64> = ns.iter().map(|n| 3.0 * n.powi(3)).collect();
        let fit = fit_power(&ns, &fs);
        assert!((fit.exponent - 3.0).abs() < 1e-9);
    }

    #[test]
    fn log_power_fit_recovers_exponent() {
        let ns: Vec<f64> = (6..=20).map(|e| (1u64 << e) as f64).collect();
        let fs: Vec<f64> = ns.iter().map(|n| 2.0 * n.log2().powf(3.41)).collect();
        let fit = fit_log_power(&ns, &fs);
        assert!((fit.exponent - 3.41).abs() < 1e-9, "exponent {}", fit.exponent);
        assert!((fit.amplitude - 2.0).abs() < 1e-6);
    }

    #[test]
    fn pure_log_has_log_exponent_one() {
        let ns: Vec<f64> = (4..=16).map(|e| (1u64 << e) as f64).collect();
        let fs: Vec<f64> = ns.iter().map(|n| 4.0 * n.log2()).collect();
        let fit = fit_log_power(&ns, &fs);
        assert!((fit.exponent - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn one_point_panics() {
        linear_regression(&[1.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        linear_regression(&[2.0, 2.0], &[1.0, 3.0]);
    }
}
