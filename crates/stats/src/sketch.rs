//! A mergeable KLL-style quantile sketch.
//!
//! [`MetricAggregate`] keeps raw samples for *exact* p50/p99 — 8 bytes
//! per trial per metric, fine at thousands of trials but not at the
//! millions-of-trials scale the fleet is headed for, and the samples
//! are exactly what multi-process shard merges would otherwise have to
//! ship between processes. This sketch is the groundwork for dropping
//! them: O(k · log(n/k)) memory, mergeable, and deterministic.
//!
//! The structure follows Karnin–Lall–Liberty: a stack of buffers where
//! items in level `i` each stand for `2^i` original observations. A
//! full buffer *compacts* — sort, keep every other item, promote the
//! survivors one level up. Where KLL flips a coin for the survivor
//! parity, this implementation alternates it deterministically (a
//! compaction counter), trading a little worst-case adversarial
//! robustness for the reproducibility the fleet guarantees everywhere
//! else: same pushes, same sketch, bit for bit.
//!
//! Rank error is O(log(n/k)/k) of the total count — with the default
//! `k = 200`, well under 1% at a million observations.
//!
//! [`MetricAggregate`]: https://docs.rs/sleepy-fleet

use serde::{Deserialize, Serialize};

/// Default per-level buffer capacity (≈1.6 kB per level).
pub const DEFAULT_SKETCH_K: usize = 200;

/// A deterministic mergeable quantile sketch. See the module docs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Per-level buffer capacity.
    k: usize,
    /// `levels[i]` holds items of weight `2^i`, unsorted.
    levels: Vec<Vec<f64>>,
    /// Total observations represented.
    count: u64,
    /// Compaction counter; its parity picks which half survives, so
    /// rounding alternates instead of drifting one-sided.
    compactions: u64,
    /// Exact minimum (+inf when empty) — quantile 0 is never approximate.
    min: f64,
    /// Exact maximum (-inf when empty).
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::with_k(DEFAULT_SKETCH_K)
    }
}

impl QuantileSketch {
    /// An empty sketch with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty sketch with per-level capacity `k` (minimum 2; larger
    /// is more accurate and bigger).
    pub fn with_k(k: usize) -> Self {
        QuantileSketch {
            k: k.max(2),
            levels: vec![Vec::new()],
            count: 0,
            compactions: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Total observations represented.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has seen no observations.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Retained items across all levels (the memory footprint).
    pub fn retained(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// Accumulates one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.levels[0].push(x);
        self.compact_from(0);
    }

    /// Merges another sketch (level-wise concatenation, then
    /// compaction). The result summarizes the union of both streams.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.levels.len() < other.levels.len() {
            self.levels.resize_with(other.levels.len(), Vec::new);
        }
        for (mine, theirs) in self.levels.iter_mut().zip(&other.levels) {
            mine.extend_from_slice(theirs);
        }
        self.count += other.count;
        self.compactions += other.compactions;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.compact_from(0);
    }

    /// Compacts any over-full buffer from `level` upward: sort, keep
    /// alternating items (parity from the compaction counter), promote
    /// survivors one level. Each promotion doubles item weight, which
    /// is exactly what dropping every other sorted item preserves in
    /// expectation.
    fn compact_from(&mut self, level: usize) {
        let mut level = level;
        while level < self.levels.len() {
            if self.levels[level].len() < self.k {
                level += 1;
                continue;
            }
            let mut buf = std::mem::take(&mut self.levels[level]);
            buf.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in metrics"));
            let offset = (self.compactions & 1) as usize;
            self.compactions += 1;
            if self.levels.len() == level + 1 {
                self.levels.push(Vec::new());
            }
            let survivors = buf.iter().copied().skip(offset).step_by(2);
            self.levels[level + 1].extend(survivors);
            level += 1;
        }
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`): the smallest
    /// retained value whose estimated rank reaches `q · count`.
    /// Exact at `q = 0` and `q = 1`, and exact everywhere while no
    /// compaction has happened yet. Returns 0 for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let mut weighted: Vec<(f64, u64)> = Vec::with_capacity(self.retained());
        for (level, buf) in self.levels.iter().enumerate() {
            let w = 1u64 << level;
            weighted.extend(buf.iter().map(|&x| (x, w)));
        }
        weighted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN in metrics"));
        let total: u64 = weighted.iter().map(|&(_, w)| w).sum();
        let target = (q * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (x, w) in weighted {
            cum += w;
            if cum >= target {
                return x;
            }
        }
        self.max
    }

    /// The approximate `p`-th percentile (`p` in `[0, 100]`).
    pub fn percentile(&self, p: f64) -> f64 {
        self.quantile(p / 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-shuffled stream of 0..n.
    fn stream(n: u64) -> impl Iterator<Item = f64> {
        // A full-period LCG over 0..n is overkill; multiplying by a
        // coprime constant mod n visits every residue.
        (0..n).map(move |i| ((i * 48271) % n) as f64)
    }

    #[test]
    fn exact_below_capacity() {
        let mut s = QuantileSketch::with_k(64);
        for x in [5.0, 1.0, 9.0, 3.0, 7.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(0.5), 5.0);
        assert_eq!(s.quantile(1.0), 9.0);
        assert_eq!(s.percentile(50.0), 5.0);
    }

    #[test]
    fn empty_sketch_reads_zero() {
        let s = QuantileSketch::new();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0.0);
    }

    #[test]
    fn rank_error_is_bounded_after_compaction() {
        let n = 100_000u64;
        let mut s = QuantileSketch::new();
        for x in stream(n) {
            s.push(x);
        }
        assert_eq!(s.count(), n);
        assert!(
            s.retained() < 4_000,
            "sketch must be far smaller than the stream: {}",
            s.retained()
        );
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let estimate = s.quantile(q);
            let true_rank = q * (n as f64 - 1.0);
            let err = (estimate - true_rank).abs() / n as f64;
            assert!(err < 0.02, "q={q}: estimate {estimate}, true {true_rank}, err {err}");
        }
        // Extremes stay exact.
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), (n - 1) as f64);
    }

    #[test]
    fn merge_approximates_the_union() {
        let n = 40_000u64;
        let all: Vec<f64> = stream(n).collect();
        let mut whole = QuantileSketch::new();
        all.iter().for_each(|&x| whole.push(x));
        let mut merged = QuantileSketch::new();
        for chunk in all.chunks(9_999) {
            let mut shard = QuantileSketch::new();
            chunk.iter().for_each(|&x| shard.push(x));
            merged.merge(&shard);
        }
        assert_eq!(merged.count(), n);
        for q in [0.1, 0.5, 0.9, 0.99] {
            let err = (merged.quantile(q) - q * n as f64).abs() / n as f64;
            assert!(err < 0.03, "q={q} err {err}");
        }
        assert_eq!(merged.quantile(0.0), 0.0);
        assert_eq!(merged.quantile(1.0), (n - 1) as f64);
    }

    #[test]
    fn deterministic_for_fixed_input_order() {
        let build = || {
            let mut s = QuantileSketch::new();
            for x in stream(10_000) {
                s.push(x);
            }
            s
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut s = QuantileSketch::new();
        s.push(4.0);
        let before = s.clone();
        s.merge(&QuantileSketch::new());
        assert_eq!(s, before);
        let mut e = QuantileSketch::new();
        e.merge(&before);
        assert_eq!(e.count(), 1);
        assert_eq!(e.quantile(0.5), 4.0);
    }
}
