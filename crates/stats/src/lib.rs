//! # sleepy-stats
//!
//! Statistics for the experiment harness: summaries with confidence
//! intervals, least-squares growth-shape fits (is a measured curve
//! constant, logarithmic, polylogarithmic, or polynomial in n?), and plain
//! text / markdown table rendering.
//!
//! The growth fits are how the harness turns raw sweeps into the *shape*
//! claims of the paper's Table 1 and Theorems 1–2 — e.g. "node-averaged
//! awake complexity is O(1)" becomes "the fitted polynomial exponent of
//! the measured curve is ≈ 0 and the curve is flat within noise".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fit;
mod phases;
mod sketch;
mod streaming;
mod summary;
mod table;
mod updates;

pub use fit::{fit_log_power, fit_power, linear_regression, GrowthFit, LinearFit};
pub use phases::PhaseSeries;
pub use sketch::{QuantileSketch, DEFAULT_SKETCH_K};
pub use streaming::StreamingMoments;
pub use summary::Summary;
pub use table::TextTable;
pub use updates::UpdateSeries;
