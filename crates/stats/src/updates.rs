//! Per-update cost accounting for incremental dynamic workloads.
//!
//! An *update* is one atomic graph mutation (edge insert/delete, node
//! arrival/departure) absorbed by an incremental repair strategy. The
//! Ghaffari–Portmann line of work states its dynamic sleeping-model
//! bounds as *amortized awake rounds per update*; [`UpdateSeries`] is
//! the mergeable accumulator that measures exactly that quantity
//! across every update of every trial.

use crate::StreamingMoments;
use serde::{Deserialize, Serialize};

/// A mergeable aggregate of per-update repair costs.
///
/// Each observation is one absorbed update: the total awake rounds the
/// repair spent on it (summed over the nodes that woke) and the repair
/// scope (how many nodes re-ran). Like [`StreamingMoments`], merging in
/// a canonical order keeps results byte-identical across thread counts.
///
/// # Example
///
/// ```
/// use sleepy_stats::UpdateSeries;
///
/// let mut s = UpdateSeries::new();
/// s.push(6.0, 3); // an update that woke 3 nodes for 6 awake rounds total
/// s.push(0.0, 0); // an update absorbed without waking anyone
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.zero_scope, 1);
/// assert_eq!(s.amortized_awake(), 3.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct UpdateSeries {
    /// Awake-round cost per update (summed over the woken nodes).
    pub awake: StreamingMoments,
    /// Repair scope per update (nodes the algorithm re-ran on).
    pub scope: StreamingMoments,
    /// Updates absorbed without re-running on any node at all.
    pub zero_scope: u64,
}

impl UpdateSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates one absorbed update.
    pub fn push(&mut self, awake_sum: f64, scope: usize) {
        self.awake.push(awake_sum);
        self.scope.push(scope as f64);
        self.zero_scope += u64::from(scope == 0);
    }

    /// Updates observed.
    pub fn count(&self) -> u64 {
        self.awake.count
    }

    /// Whether no update has been observed.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// The amortized awake cost per update — total awake rounds spent
    /// absorbing updates divided by the number of updates (0 when
    /// empty). This is the quantity Ghaffari–Portmann-style bounds
    /// speak about.
    pub fn amortized_awake(&self) -> f64 {
        if self.awake.count == 0 {
            0.0
        } else {
            self.awake.mean
        }
    }

    /// Merges a later shard's series (callers merge in canonical shard
    /// order, as with [`StreamingMoments::merge`]).
    pub fn merge(&mut self, other: &UpdateSeries) {
        self.awake.merge(&other.awake);
        self.scope.merge(&other.scope);
        self.zero_scope += other.zero_scope;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_accumulates_and_amortizes() {
        let mut s = UpdateSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.amortized_awake(), 0.0);
        s.push(4.0, 2);
        s.push(2.0, 1);
        s.push(0.0, 0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.zero_scope, 1);
        assert!((s.amortized_awake() - 2.0).abs() < 1e-12);
        assert!((s.scope.mean - 1.0).abs() < 1e-12);
        assert_eq!(s.awake.max_or_zero(), 4.0);
    }

    #[test]
    fn merge_matches_sequential_push() {
        let obs: Vec<(f64, usize)> = (0..50).map(|i| ((i % 7) as f64, i % 3)).collect();
        let mut whole = UpdateSeries::new();
        obs.iter().for_each(|&(a, s)| whole.push(a, s));
        let mut merged = UpdateSeries::new();
        for chunk in obs.chunks(13) {
            let mut shard = UpdateSeries::new();
            chunk.iter().for_each(|&(a, s)| shard.push(a, s));
            merged.merge(&shard);
        }
        assert_eq!(merged.count(), whole.count());
        assert_eq!(merged.zero_scope, whole.zero_scope);
        assert!((merged.amortized_awake() - whole.amortized_awake()).abs() < 1e-12);
        assert!((merged.scope.std_dev() - whole.scope.std_dev()).abs() < 1e-9);
    }
}
