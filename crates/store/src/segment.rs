//! Segment line format: one self-checking JSON object per entry.
//!
//! A line is `{"key":K,"stamp":S,"payload":P,"sum":H}` where `H` is the
//! FNV-1a-64 checksum (16 lowercase hex digits) of the compact
//! serialization of the same object *without* the `sum` field. The
//! checksum makes every line independently verifiable, so truncation
//! and bit-rot are detected on read rather than silently aggregated.

use serde::Value;

/// One stored entry: a content key, a TTL stamp, and an opaque payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The content-address of the entry (e.g. a fleet trial key).
    pub key: String,
    /// Unix seconds at write time; drives TTL garbage collection.
    pub stamp: u64,
    /// The stored document.
    pub payload: Value,
}

/// FNV-1a 64-bit hash — small, dependency-free, and plenty for
/// detecting truncation and corruption (not an integrity MAC).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The compact serialization of an entry without its checksum — the
/// exact byte string the checksum covers.
fn body_json(entry: &Entry) -> String {
    let body = Value::Object(vec![
        ("key".to_string(), Value::String(entry.key.clone())),
        ("stamp".to_string(), Value::UInt(entry.stamp)),
        ("payload".to_string(), entry.payload.clone()),
    ]);
    serde_json::to_string(&body).expect("value serializes")
}

/// Encodes an entry as one JSONL line (no trailing newline).
pub fn encode_line(entry: &Entry) -> String {
    let body = body_json(entry);
    let sum = fnv1a64(body.as_bytes());
    let full = Value::Object(vec![
        ("key".to_string(), Value::String(entry.key.clone())),
        ("stamp".to_string(), Value::UInt(entry.stamp)),
        ("payload".to_string(), entry.payload.clone()),
        ("sum".to_string(), Value::String(format!("{sum:016x}"))),
    ]);
    serde_json::to_string(&full).expect("value serializes")
}

/// Decodes and verifies one segment line. `None` means the line is
/// corrupt (unparsable, missing fields, or checksum mismatch) — the
/// caller quarantines the whole segment.
pub fn decode_line(line: &str) -> Option<Entry> {
    let value = serde_json::from_str(line).ok()?;
    let key = value.get("key")?.as_str()?.to_string();
    let stamp = value.get("stamp")?.as_u64()?;
    let payload = value.get("payload")?.clone();
    let sum = u64::from_str_radix(value.get("sum")?.as_str()?, 16).ok()?;
    let entry = Entry { key, stamp, payload };
    // The payload re-serializes byte-identically to what was hashed at
    // write time: parsing preserves number kinds (UInt/Int/Float) and
    // object field order, and float formatting is shortest-round-trip.
    if fnv1a64(body_json(&entry).as_bytes()) == sum {
        Some(entry)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> Entry {
        Entry {
            key: "SleepingMIS@gnp-avg8:4020000000000000/n=96#xAuto#s0000000000051ee9/t00ff".into(),
            stamp: 1_753_833_600,
            payload: serde_json::json!({
                "node_avg_awake": 3.0517578125e-5,
                "worst_round": 17u64,
                "valid": true,
                "nested": serde_json::json!([1u64, 2.5f64, "x"])
            }),
        }
    }

    #[test]
    fn round_trips() {
        let e = entry();
        let line = encode_line(&e);
        assert!(!line.contains('\n'));
        assert_eq!(decode_line(&line), Some(e));
    }

    #[test]
    fn float_payloads_round_trip_bit_exactly() {
        for bits in [0x3ff0_0000_0000_0001u64, 0x4008_0000_0000_0000, 0x3f50_624d_d2f1_a9fc] {
            let x = f64::from_bits(bits);
            let e = Entry { key: "k".into(), stamp: 0, payload: serde_json::json!(x) };
            let back = decode_line(&encode_line(&e)).unwrap();
            assert_eq!(back.payload.as_f64().unwrap().to_bits(), bits);
        }
    }

    #[test]
    fn corruption_is_detected() {
        let line = encode_line(&entry());
        // Flip a digit inside the payload.
        let bad = line.replacen("17", "18", 1);
        assert_ne!(bad, line);
        assert_eq!(decode_line(&bad), None);
        // Truncation.
        assert_eq!(decode_line(&line[..line.len() - 10]), None);
        // Garbage.
        assert_eq!(decode_line("not json at all"), None);
        assert_eq!(decode_line("{\"key\":\"k\"}"), None);
    }

    #[test]
    fn checksum_is_stable() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        let e = entry();
        assert_eq!(encode_line(&e), encode_line(&e));
    }
}
