//! Store error type.

use std::error::Error;
use std::fmt;
use std::path::PathBuf;

/// Any failure opening or writing a store. Corrupt *segments* are not
/// errors — they are quarantined on open and reported via
/// [`StoreStats`](crate::StoreStats) — but unusable directories and
/// failed writes are.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// Filesystem operation failed, with the path it failed on.
    Io(PathBuf, std::io::Error),
    /// The store was asked to do something invalid.
    Config(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "store I/O failed on {}: {e}", path.display()),
            StoreError::Config(msg) => write!(f, "invalid store operation: {msg}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(_, e) => Some(e),
            StoreError::Config(_) => None,
        }
    }
}
