//! Deterministic fault injection against a store directory on disk.
//!
//! [`StoreFaultInjector`] corrupts the on-disk representation of a
//! [`Store`](crate::Store) the way real crashes and bad disks do —
//! truncated segment files, flipped bits, torn manifests — but from a
//! seed, so a failing chaos trial is replayable byte-for-byte. The
//! store's own invariants (self-checking lines, wholesale quarantine,
//! manifest rebuild) guarantee a reopened store never *serves*
//! corrupted data; the injector exists so tests and `fleet chaos` can
//! prove that claim against arbitrary corruption instead of the two or
//! three hand-written cases.
//!
//! The injector never touches the [`Store`](crate::Store) API: it
//! mutates files directly, between a close and a reopen, exactly like
//! an external corruption event. All randomness comes from an internal
//! SplitMix64 stream seeded at construction (this crate deliberately
//! has no RNG dependency).

use crate::error::StoreError;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// What a single injected fault did — returned so tests can log the
/// exact corruption and assert on its class.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreFault {
    /// A segment file was truncated from `old_len` to `new_len` bytes.
    TruncatedSegment {
        /// Segment file name.
        name: String,
        /// Length before the cut, in bytes.
        old_len: u64,
        /// Length after the cut, in bytes.
        new_len: u64,
    },
    /// One bit of a segment file was flipped.
    FlippedBit {
        /// Segment file name.
        name: String,
        /// Byte offset of the corrupted byte.
        offset: u64,
        /// Which bit (0–7) was flipped.
        bit: u8,
    },
    /// The manifest was truncated (a torn metadata write).
    TornManifest {
        /// Length before the cut, in bytes.
        old_len: u64,
        /// Length after the cut, in bytes.
        new_len: u64,
    },
    /// No fault was injected (the store has nothing to corrupt).
    Nothing,
}

impl fmt::Display for StoreFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreFault::TruncatedSegment { name, old_len, new_len } => {
                write!(f, "truncated {name}: {old_len} -> {new_len} bytes")
            }
            StoreFault::FlippedBit { name, offset, bit } => {
                write!(f, "flipped bit {bit} of byte {offset} in {name}")
            }
            StoreFault::TornManifest { old_len, new_len } => {
                write!(f, "tore manifest: {old_len} -> {new_len} bytes")
            }
            StoreFault::Nothing => write!(f, "nothing to corrupt"),
        }
    }
}

/// Seeded corruption of a store directory (see the module docs).
#[derive(Debug)]
pub struct StoreFaultInjector {
    dir: PathBuf,
    state: u64,
}

impl StoreFaultInjector {
    /// An injector over `dir`, drawing all its choices from `seed`.
    pub fn new(dir: impl Into<PathBuf>, seed: u64) -> Self {
        StoreFaultInjector { dir: dir.into(), state: seed }
    }

    /// The next value of the internal SplitMix64 stream.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (`n` must be nonzero). Uses the high-quality
    /// high bits via 128-bit multiply, like the fleet seed streams.
    fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// The store's live segment file names, sorted — a deterministic
    /// population regardless of directory iteration order.
    ///
    /// # Errors
    ///
    /// Directory read failures.
    pub fn segments(&self) -> Result<Vec<String>, StoreError> {
        let io = |e| StoreError::Io(self.dir.clone(), e);
        let mut names = Vec::new();
        for entry in fs::read_dir(&self.dir).map_err(io)? {
            let entry = entry.map_err(io)?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.starts_with("seg-") && name.ends_with(".jsonl") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Truncates a seeded segment at a seeded byte offset (simulating
    /// a crash mid-write or a filesystem that lost a tail). The cut
    /// point ranges over the whole file, so it may or may not land on
    /// a line boundary — the store must quarantine either way unless
    /// the surviving prefix is a whole number of valid lines.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn truncate_segment(&mut self) -> Result<StoreFault, StoreError> {
        let Some((name, path, len)) = self.pick_segment()? else {
            return Ok(StoreFault::Nothing);
        };
        let new_len = self.below(len);
        truncate_file(&path, new_len)?;
        Ok(StoreFault::TruncatedSegment { name, old_len: len, new_len })
    }

    /// Flips one seeded bit of one seeded segment (simulating media
    /// corruption). The per-line checksum must catch it; the segment
    /// is quarantined wholesale.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn flip_bit(&mut self) -> Result<StoreFault, StoreError> {
        let Some((name, path, len)) = self.pick_segment()? else {
            return Ok(StoreFault::Nothing);
        };
        let offset = self.below(len);
        let bit = (self.next_u64() % 8) as u8;
        let io = |e| StoreError::Io(path.clone(), e);
        let mut bytes = fs::read(&path).map_err(io)?;
        bytes[offset as usize] ^= 1 << bit;
        fs::write(&path, &bytes).map_err(io)?;
        Ok(StoreFault::FlippedBit { name, offset, bit })
    }

    /// Truncates the manifest at a seeded offset (a torn metadata
    /// write). The store must rebuild the segment list from the
    /// self-validating segment files and lose nothing.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn tear_manifest(&mut self) -> Result<StoreFault, StoreError> {
        let path = self.dir.join("manifest.json");
        let io = |e| StoreError::Io(path.clone(), e);
        let len = match fs::metadata(&path) {
            Ok(meta) => meta.len(),
            Err(_) => return Ok(StoreFault::Nothing),
        };
        if len == 0 {
            return Ok(StoreFault::Nothing);
        }
        let new_len = self.below(len);
        fs::read(&path)
            .map_err(io)
            .and_then(|bytes| fs::write(&path, &bytes[..new_len as usize]).map_err(io))?;
        Ok(StoreFault::TornManifest { old_len: len, new_len })
    }

    /// Injects one seeded fault of a seeded class — the general move
    /// of a chaos matrix trial.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn corrupt_one(&mut self) -> Result<StoreFault, StoreError> {
        match self.next_u64() % 3 {
            0 => self.truncate_segment(),
            1 => self.flip_bit(),
            _ => self.tear_manifest(),
        }
    }

    /// Picks a seeded nonempty segment: `(name, path, len)`.
    fn pick_segment(&mut self) -> Result<Option<(String, PathBuf, u64)>, StoreError> {
        let mut candidates = Vec::new();
        for name in self.segments()? {
            let path = self.dir.join(&name);
            let len = fs::metadata(&path).map_err(|e| StoreError::Io(path.clone(), e))?.len();
            if len > 0 {
                candidates.push((name, path, len));
            }
        }
        if candidates.is_empty() {
            return Ok(None);
        }
        let idx = self.below(candidates.len() as u64) as usize;
        Ok(Some(candidates.swap_remove(idx)))
    }
}

/// Truncates `path` to `len` bytes.
fn truncate_file(path: &Path, len: u64) -> Result<(), StoreError> {
    let io = |e| StoreError::Io(path.to_path_buf(), e);
    let bytes = fs::read(path).map_err(io)?;
    fs::write(path, &bytes[..len as usize]).map_err(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use serde_json::json;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sleepy-store-chaos-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn seeded_store(dir: &Path, entries: u64) -> Store {
        let mut store = Store::open(dir).unwrap();
        let batch: Vec<(String, serde::Value)> =
            (0..entries).map(|i| (format!("k/{i}"), json!({"v": i}))).collect();
        store.append(batch).unwrap();
        store
    }

    #[test]
    fn injector_is_deterministic() {
        let dir_a = tmp_dir("det-a");
        let dir_b = tmp_dir("det-b");
        drop(seeded_store(&dir_a, 8));
        drop(seeded_store(&dir_b, 8));
        let fault_a = StoreFaultInjector::new(&dir_a, 42).corrupt_one().unwrap();
        let fault_b = StoreFaultInjector::new(&dir_b, 42).corrupt_one().unwrap();
        // Same seed, same directory contents: identical fault.
        assert_eq!(fault_a, fault_b);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn empty_store_yields_nothing() {
        let dir = tmp_dir("empty");
        drop(Store::open(&dir).unwrap());
        let mut inj = StoreFaultInjector::new(&dir, 7);
        assert_eq!(inj.truncate_segment().unwrap(), StoreFault::Nothing);
        assert_eq!(inj.flip_bit().unwrap(), StoreFault::Nothing);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bit_never_serves_corrupt_data() {
        for seed in 0..16 {
            let dir = tmp_dir(&format!("flip-{seed}"));
            drop(seeded_store(&dir, 8));
            let fault = StoreFaultInjector::new(&dir, seed).flip_bit().unwrap();
            assert!(matches!(fault, StoreFault::FlippedBit { .. }), "{fault:?}");
            let store = Store::open(&dir).unwrap();
            // Every surviving entry must carry its original payload —
            // the checksum quarantines the whole corrupted segment, so
            // nothing readable can be wrong.
            for e in store.entries() {
                let i: u64 = e.key.strip_prefix("k/").unwrap().parse().unwrap();
                assert_eq!(e.payload.get("v").and_then(|v| v.as_u64()), Some(i));
            }
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn torn_manifest_loses_nothing() {
        for seed in 0..8 {
            let dir = tmp_dir(&format!("tear-{seed}"));
            drop(seeded_store(&dir, 8));
            let fault = StoreFaultInjector::new(&dir, seed).tear_manifest().unwrap();
            assert!(matches!(fault, StoreFault::TornManifest { .. }), "{fault:?}");
            let store = Store::open(&dir).unwrap();
            // Segments are self-validating: a torn manifest is rebuilt
            // and every entry survives.
            assert_eq!(store.len(), 8);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
