//! The store proper: directory layout, manifest handling, index,
//! append, merge, and GC compaction.

use crate::error::StoreError;
use crate::segment::{decode_line, encode_line, Entry};
use serde::Value;
use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "manifest.json";
const MANIFEST_VERSION: u64 = 1;

/// One live segment as recorded in the manifest.
#[derive(Debug, Clone)]
struct SegmentMeta {
    name: String,
    entries: u64,
}

/// Aggregate facts about an open store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Distinct keys in the index.
    pub entries: u64,
    /// Live segment files.
    pub segments: u64,
    /// Segments quarantined on open (corrupt or truncated).
    pub quarantined: u64,
    /// Duplicate-key lines skipped on load (first write wins).
    pub duplicates: u64,
}

/// Result of a [`Store::gc`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Entries surviving the cutoff.
    pub kept: u64,
    /// Entries dropped as expired.
    pub dropped: u64,
    /// Segment files before compaction.
    pub segments_before: u64,
    /// Segment files after compaction (1, or 0 for an emptied store).
    pub segments_after: u64,
}

/// An on-disk content-addressed store with an in-memory index.
///
/// All lookups hit the in-memory index (loaded once at [`open`]); all
/// writes go through [`append`]-style batch operations that publish one
/// new immutable segment atomically. See the crate docs for the format.
///
/// [`open`]: Store::open
/// [`append`]: Store::append
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    entries: Vec<Entry>,
    // Key → position in `entries`. Lookup-only today, but a BTreeMap
    // keeps even an accidental future iteration deterministic
    // (no-hash-collections).
    index: BTreeMap<String, usize>,
    segments: Vec<SegmentMeta>,
    next_segment: u64,
    stats_quarantined: u64,
    stats_duplicates: u64,
}

impl Store {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// Loads the manifest, verifies every listed segment line-by-line,
    /// quarantines corrupt segments, and adopts valid segments present
    /// on disk but missing from the manifest (published just before a
    /// crash). A missing or corrupt manifest is rebuilt from the
    /// segment files.
    ///
    /// # Errors
    ///
    /// Filesystem failures only — corrupt data is quarantined, not
    /// fatal.
    pub fn open(dir: impl AsRef<Path>) -> Result<Store, StoreError> {
        let _span = sleepy_telemetry::span("store", "open");
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir).map_err(|e| StoreError::Io(dir.clone(), e))?;
        let mut store = Store {
            dir: dir.clone(),
            entries: Vec::new(),
            index: BTreeMap::new(),
            segments: Vec::new(),
            next_segment: 1,
            stats_quarantined: 0,
            stats_duplicates: 0,
        };

        let listed = store.read_manifest();
        store.sweep_leftovers()?;
        let mut on_disk = store.scan_segment_files()?;
        // Manifest order first (the canonical entry order), then any
        // orphans in name order.
        let mut names: Vec<String> = Vec::new();
        for name in &listed {
            if on_disk.contains(name) {
                names.push(name.clone());
                on_disk.retain(|n| n != name);
            }
        }
        let adopted = !on_disk.is_empty();
        names.extend(on_disk);

        for name in names {
            store.load_segment(&name)?;
        }
        // Persist the reconciled view whenever it differs from what the
        // manifest said (orphans adopted, segments quarantined or gone).
        let live: Vec<String> = store.segments.iter().map(|s| s.name.clone()).collect();
        if adopted || live != listed {
            store.write_manifest()?;
        }
        let stats = store.stats();
        sleepy_telemetry::counter_add("store.segments_loaded", stats.segments);
        sleepy_telemetry::counter_add("store.entries_loaded", stats.entries);
        sleepy_telemetry::counter_add("store.quarantined", stats.quarantined);
        Ok(store)
    }

    /// The directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Looks a payload up by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.index.get(key).map(|&i| &self.entries[i].payload)
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.index.contains_key(key)
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// All live entries in canonical (segment, line) order. (Shadowed
    /// duplicates are dropped at load/append time, so everything held
    /// in memory is live.)
    pub fn entries(&self) -> impl Iterator<Item = &Entry> {
        self.entries.iter()
    }

    /// Aggregate stats (entry/segment counts, quarantine tally).
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            entries: self.index.len() as u64,
            segments: self.segments.len() as u64,
            quarantined: self.stats_quarantined,
            duplicates: self.stats_duplicates,
        }
    }

    /// Appends a batch of `(key, payload)` pairs stamped with the
    /// current wall-clock time, publishing them as one new segment.
    /// Keys already present are skipped (first write wins). Returns the
    /// number of entries actually written.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn append(&mut self, batch: Vec<(String, Value)>) -> Result<u64, StoreError> {
        let stamp = now_unix();
        self.append_stamped(batch, stamp)
    }

    /// [`append`](Store::append) with an explicit stamp — for tests and
    /// for callers that manage TTL time themselves.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn append_stamped(
        &mut self,
        batch: Vec<(String, Value)>,
        stamp: u64,
    ) -> Result<u64, StoreError> {
        let _span = sleepy_telemetry::span("store", "append");
        let added = self.append_entries(
            batch.into_iter().map(|(key, payload)| Entry { key, stamp, payload }).collect(),
        )?;
        sleepy_telemetry::counter_add("store.records_stored", added);
        Ok(added)
    }

    /// Unions `other` into this store: every entry of `other` whose key
    /// is absent here is appended (stamps preserved), as one new
    /// segment, in `other`'s canonical entry order. Returns the number
    /// of entries added. The operation is idempotent and associative on
    /// key sets, so shard stores produced by independent processes can
    /// be merged in any grouping.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn merge_from(&mut self, other: &Store) -> Result<u64, StoreError> {
        let _span = sleepy_telemetry::span("store", "merge");
        let fresh: Vec<Entry> =
            other.entries().filter(|e| !self.contains(&e.key)).cloned().collect();
        let added = self.append_entries(fresh)?;
        sleepy_telemetry::counter_add("store.records_merged", added);
        Ok(added)
    }

    /// Drops every entry stamped strictly before `expire_before` (pass
    /// 0 to keep everything) and compacts all surviving entries into a
    /// single fresh segment, deleting the old segment files.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn gc(&mut self, expire_before: u64) -> Result<GcStats, StoreError> {
        let _span = sleepy_telemetry::span("store", "gc");
        let segments_before = self.segments.len() as u64;
        let survivors: Vec<Entry> =
            self.entries().filter(|e| e.stamp >= expire_before).cloned().collect();
        let dropped = self.index.len() as u64 - survivors.len() as u64;
        let old: Vec<String> = self.segments.iter().map(|s| s.name.clone()).collect();

        // Retire the old segments FIRST, by renaming them to a name the
        // open-time orphan scan never adopts. Crash before any retire:
        // nothing happened. Crash mid-retire: the manifest still lists
        // the old names, so the survivors load and expired entries in
        // already-retired files are merely re-executed later — expired
        // entries can never be resurrected by orphan adoption.
        for name in &old {
            let path = self.dir.join(name);
            let target = self.dir.join(format!("{name}.retired"));
            fs::rename(&path, &target).map_err(|e| StoreError::Io(path, e))?;
        }
        self.segments.clear();
        self.entries.clear();
        self.index.clear();
        self.stats_duplicates = 0;
        let kept = self.append_entries(survivors)?;
        self.write_manifest()?;
        for name in old {
            let path = self.dir.join(format!("{name}.retired"));
            fs::remove_file(&path).map_err(|e| StoreError::Io(path, e))?;
        }
        Ok(GcStats { kept, dropped, segments_before, segments_after: self.segments.len() as u64 })
    }

    /// Core append: filters out keys already present, writes one
    /// segment atomically, and updates manifest + index.
    fn append_entries(&mut self, batch: Vec<Entry>) -> Result<u64, StoreError> {
        let mut fresh: Vec<Entry> = Vec::with_capacity(batch.len());
        let mut batch_keys: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
        for e in batch {
            // Skip keys already stored and duplicates within the batch
            // itself; only the key is cloned, never the payload.
            if !self.contains(&e.key) && batch_keys.insert(e.key.clone()) {
                fresh.push(e);
            }
        }
        drop(batch_keys);
        if fresh.is_empty() {
            return Ok(0);
        }
        let name = format!("seg-{:08}.jsonl", self.next_segment);
        self.next_segment += 1;
        let mut text = String::new();
        for e in &fresh {
            text.push_str(&encode_line(e));
            text.push('\n');
        }
        self.write_atomic(&name, text.as_bytes())?;
        self.segments.push(SegmentMeta { name, entries: fresh.len() as u64 });
        self.write_manifest()?;
        let added = fresh.len() as u64;
        for e in fresh {
            self.index.insert(e.key.clone(), self.entries.len());
            self.entries.push(e);
        }
        Ok(added)
    }

    /// Reads the manifest's segment list; a missing or corrupt manifest
    /// yields an empty list (the caller rebuilds from the segment scan).
    fn read_manifest(&mut self) -> Vec<String> {
        let path = self.dir.join(MANIFEST);
        let Ok(text) = fs::read_to_string(&path) else { return Vec::new() };
        let parsed = serde_json::from_str(&text).ok().and_then(|v: Value| {
            let next = v.get("next_segment")?.as_u64()?;
            let segs = v.get("segments")?.as_array()?.clone();
            let names: Option<Vec<String>> =
                segs.iter().map(|s| Some(s.get("name")?.as_str()?.to_string())).collect();
            Some((next, names?))
        });
        match parsed {
            Some((next, names)) => {
                self.next_segment = self.next_segment.max(next);
                names
            }
            None => {
                // Corrupt manifest: set it aside and rebuild from disk.
                let _ = fs::rename(&path, self.dir.join("manifest.json.quarantined"));
                self.stats_quarantined += 1;
                Vec::new()
            }
        }
    }

    /// Removes leftovers of interrupted operations: `.tmp-*` files
    /// (writes that never renamed into place) and `*.retired` segments
    /// (a GC that died between retiring and deleting). Neither is ever
    /// loaded or adopted, so deleting them only reclaims space; entries
    /// lost this way re-execute on the next run — see [`gc`](Store::gc).
    fn sweep_leftovers(&self) -> Result<(), StoreError> {
        let iter = fs::read_dir(&self.dir).map_err(|e| StoreError::Io(self.dir.clone(), e))?;
        for dent in iter {
            let dent = dent.map_err(|e| StoreError::Io(self.dir.clone(), e))?;
            let name = dent.file_name().to_string_lossy().into_owned();
            if name.starts_with(".tmp-") || name.ends_with(".retired") {
                let path = self.dir.join(&name);
                fs::remove_file(&path).map_err(|e| StoreError::Io(path, e))?;
            }
        }
        Ok(())
    }

    /// Lists `seg-*.jsonl` files in the store directory, name-sorted.
    fn scan_segment_files(&self) -> Result<Vec<String>, StoreError> {
        let mut names = Vec::new();
        let iter = fs::read_dir(&self.dir).map_err(|e| StoreError::Io(self.dir.clone(), e))?;
        for dent in iter {
            let dent = dent.map_err(|e| StoreError::Io(self.dir.clone(), e))?;
            let name = dent.file_name().to_string_lossy().into_owned();
            if name.starts_with("seg-") && name.ends_with(".jsonl") {
                names.push(name);
            }
        }
        names.sort();
        Ok(names)
    }

    /// Loads one segment into the index, quarantining it wholesale on
    /// the first corrupt line.
    fn load_segment(&mut self, name: &str) -> Result<(), StoreError> {
        let path = self.dir.join(name);
        let bytes = fs::read(&path).map_err(|e| StoreError::Io(path.clone(), e))?;
        // A segment must be valid UTF-8 lines of self-checking JSON; any
        // deviation (including a missing trailing newline — truncation)
        // condemns the file.
        let decoded: Option<Vec<Entry>> = std::str::from_utf8(&bytes)
            .ok()
            .filter(|text| text.is_empty() || text.ends_with('\n'))
            .map(|text| text.lines().map(decode_line).collect::<Option<Vec<_>>>())
            .unwrap_or(None);
        let Some(decoded) = decoded else {
            let target = self.dir.join(format!("{name}.quarantined"));
            fs::rename(&path, &target).map_err(|e| StoreError::Io(path.clone(), e))?;
            self.stats_quarantined += 1;
            return Ok(());
        };
        // Keep next_segment ahead of every on-disk segment number.
        if let Some(num) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".jsonl"))
            .and_then(|s| s.parse::<u64>().ok())
        {
            self.next_segment = self.next_segment.max(num + 1);
        }
        let mut live = 0u64;
        for e in decoded {
            if self.index.contains_key(&e.key) {
                // Shadowed by an earlier segment (first write wins);
                // dropping it here keeps losers out of memory entirely.
                self.stats_duplicates += 1;
            } else {
                self.index.insert(e.key.clone(), self.entries.len());
                self.entries.push(e);
                live += 1;
            }
        }
        self.segments.push(SegmentMeta { name: name.to_string(), entries: live });
        Ok(())
    }

    /// Atomically replaces the manifest.
    fn write_manifest(&self) -> Result<(), StoreError> {
        let segments: Vec<Value> = self
            .segments
            .iter()
            .map(|s| {
                Value::Object(vec![
                    ("name".to_string(), Value::String(s.name.clone())),
                    ("entries".to_string(), Value::UInt(s.entries)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("version".to_string(), Value::UInt(MANIFEST_VERSION)),
            ("next_segment".to_string(), Value::UInt(self.next_segment)),
            ("segments".to_string(), Value::Array(segments)),
        ]);
        let text = serde_json::to_string_pretty(&doc).expect("manifest serializes");
        self.write_atomic(MANIFEST, format!("{text}\n").as_bytes())
    }

    /// Writes `name` under the store directory via temp-file + rename.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(".tmp-{name}"));
        let target = self.dir.join(name);
        let io = |e| StoreError::Io(tmp.clone(), e);
        let mut f = fs::File::create(&tmp).map_err(io)?;
        f.write_all(bytes).map_err(io)?;
        f.sync_all().map_err(io)?;
        drop(f);
        fs::rename(&tmp, &target).map_err(|e| StoreError::Io(target.clone(), e))
    }
}

/// Current unix time in seconds (0 if the clock is before the epoch).
fn now_unix() -> u64 {
    // sleepy-lint: allow(no-wall-clock): TTL stamps are cache *metadata* — they gate gc
    // expiry only and are never part of a content-addressed key or a replayed payload,
    // so byte identity of artifacts is untouched (pinned by cache_semantics.rs).
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sleepy-store-test-{tag}-{}-{:?}",
            std::process::id(),
            {
                use std::time::{SystemTime, UNIX_EPOCH};
                // sleepy-lint: allow(no-wall-clock): test-only temp-dir nonce; cannot
                // reach any artifact bytes.
                SystemTime::now().duration_since(UNIX_EPOCH).unwrap().subsec_nanos()
            }
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn payload(i: u64) -> Value {
        serde_json::json!({ "value": i, "half": i as f64 / 2.0 })
    }

    #[test]
    fn append_get_and_reopen() {
        let dir = tmp_dir("basic");
        let mut s = Store::open(&dir).unwrap();
        assert!(s.is_empty());
        let added = s.append(vec![("a".into(), payload(1)), ("b".into(), payload(2))]).unwrap();
        assert_eq!(added, 2);
        assert_eq!(s.get("a"), Some(&payload(1)));
        assert!(s.contains("b"));
        assert!(!s.contains("c"));
        // First write wins; duplicate appends are no-ops.
        assert_eq!(s.append(vec![("a".into(), payload(9))]).unwrap(), 0);
        assert_eq!(s.get("a"), Some(&payload(1)));
        drop(s);
        let s2 = Store::open(&dir).unwrap();
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get("a"), Some(&payload(1)));
        assert_eq!(s2.stats().segments, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_append_writes_no_segment() {
        let dir = tmp_dir("empty");
        let mut s = Store::open(&dir).unwrap();
        assert_eq!(s.append(Vec::new()).unwrap(), 0);
        assert_eq!(s.stats().segments, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_is_quarantined_not_served() {
        let dir = tmp_dir("corrupt");
        let mut s = Store::open(&dir).unwrap();
        s.append(vec![("a".into(), payload(1))]).unwrap();
        s.append(vec![("b".into(), payload(2))]).unwrap();
        drop(s);
        // Corrupt the second segment in place.
        let seg = dir.join("seg-00000002.jsonl");
        let text = fs::read_to_string(&seg).unwrap();
        fs::write(&seg, text.replace("\"value\":2", "\"value\":3")).unwrap();
        let s = Store::open(&dir).unwrap();
        assert!(s.contains("a"));
        assert!(!s.contains("b"), "corrupted entry must not be served");
        assert_eq!(s.stats().quarantined, 1);
        assert!(dir.join("seg-00000002.jsonl.quarantined").exists());
        assert!(!seg.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_segment_is_quarantined() {
        let dir = tmp_dir("trunc");
        let mut s = Store::open(&dir).unwrap();
        s.append(vec![("a".into(), payload(1)), ("b".into(), payload(2))]).unwrap();
        drop(s);
        let seg = dir.join("seg-00000001.jsonl");
        let text = fs::read_to_string(&seg).unwrap();
        fs::write(&seg, &text[..text.len() - 7]).unwrap();
        let s = Store::open(&dir).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.stats().quarantined, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn orphan_segment_is_adopted() {
        let dir = tmp_dir("orphan");
        let mut s = Store::open(&dir).unwrap();
        s.append(vec![("a".into(), payload(1))]).unwrap();
        drop(s);
        // Simulate a crash that lost the manifest update: hand-write a
        // valid segment the manifest doesn't know about.
        let entry = Entry { key: "x".into(), stamp: 5, payload: payload(7) };
        fs::write(dir.join("seg-00000009.jsonl"), format!("{}\n", encode_line(&entry))).unwrap();
        let s = Store::open(&dir).unwrap();
        assert!(s.contains("a"));
        assert_eq!(s.get("x"), Some(&payload(7)));
        assert_eq!(s.stats().segments, 2);
        drop(s);
        // And the adoption was persisted.
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.stats().segments, 2);
        // next_segment moved past the adopted number.
        let mut s = s;
        s.append(vec![("y".into(), payload(8))]).unwrap();
        assert!(dir.join("seg-00000010.jsonl").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_manifest_is_rebuilt_from_segments() {
        let dir = tmp_dir("manifest");
        let mut s = Store::open(&dir).unwrap();
        s.append(vec![("a".into(), payload(1))]).unwrap();
        drop(s);
        fs::write(dir.join(MANIFEST), "{{{ not json").unwrap();
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.get("a"), Some(&payload(1)));
        assert!(dir.join("manifest.json.quarantined").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_unions_and_is_idempotent() {
        let dir_a = tmp_dir("merge-a");
        let dir_b = tmp_dir("merge-b");
        let mut a = Store::open(&dir_a).unwrap();
        a.append(vec![("k1".into(), payload(1)), ("k2".into(), payload(2))]).unwrap();
        let mut b = Store::open(&dir_b).unwrap();
        b.append(vec![("k2".into(), payload(99)), ("k3".into(), payload(3))]).unwrap();
        assert_eq!(a.merge_from(&b).unwrap(), 1);
        assert_eq!(a.len(), 3);
        // k2 kept the first-written payload.
        assert_eq!(a.get("k2"), Some(&payload(2)));
        assert_eq!(a.get("k3"), Some(&payload(3)));
        // Idempotent.
        assert_eq!(a.merge_from(&b).unwrap(), 0);
        fs::remove_dir_all(&dir_a).unwrap();
        fs::remove_dir_all(&dir_b).unwrap();
    }

    #[test]
    fn gc_expires_and_compacts() {
        let dir = tmp_dir("gc");
        let mut s = Store::open(&dir).unwrap();
        s.append_stamped(vec![("old".into(), payload(1))], 100).unwrap();
        s.append_stamped(vec![("new".into(), payload(2))], 200).unwrap();
        s.append_stamped(vec![("newer".into(), payload(3))], 300).unwrap();
        assert_eq!(s.stats().segments, 3);
        let gc = s.gc(150).unwrap();
        assert_eq!(gc, GcStats { kept: 2, dropped: 1, segments_before: 3, segments_after: 1 });
        assert!(!s.contains("old"));
        assert!(s.contains("new") && s.contains("newer"));
        drop(s);
        let s = Store::open(&dir).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().segments, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gc_everything_leaves_empty_store() {
        let dir = tmp_dir("gc-all");
        let mut s = Store::open(&dir).unwrap();
        s.append_stamped(vec![("a".into(), payload(1))], 10).unwrap();
        let gc = s.gc(u64::MAX).unwrap();
        assert_eq!(gc.kept, 0);
        assert_eq!(gc.segments_after, 0);
        assert!(s.is_empty());
        drop(s);
        assert!(Store::open(&dir).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retired_and_tmp_leftovers_are_swept_not_adopted() {
        // Simulate a gc that died between retiring the old segments and
        // deleting them, plus an interrupted atomic write: neither file
        // may be adopted (that would resurrect expired entries), and
        // both are cleaned up on open.
        let dir = tmp_dir("retired");
        let mut s = Store::open(&dir).unwrap();
        s.append_stamped(vec![("expired".into(), payload(1))], 10).unwrap();
        drop(s);
        fs::rename(dir.join("seg-00000001.jsonl"), dir.join("seg-00000001.jsonl.retired")).unwrap();
        fs::write(dir.join(".tmp-seg-00000002.jsonl"), "half a li").unwrap();
        let s = Store::open(&dir).unwrap();
        assert!(s.is_empty(), "retired segments must not resurrect entries");
        assert!(!dir.join("seg-00000001.jsonl.retired").exists());
        assert!(!dir.join(".tmp-seg-00000002.jsonl").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn entries_iterate_in_canonical_order() {
        let dir = tmp_dir("iter");
        let mut s = Store::open(&dir).unwrap();
        s.append_stamped(vec![("b".into(), payload(2))], 1).unwrap();
        s.append_stamped(vec![("a".into(), payload(1))], 1).unwrap();
        let keys: Vec<&str> = s.entries().map(|e| e.key.as_str()).collect();
        assert_eq!(keys, vec!["b", "a"], "segment order, not key order");
        fs::remove_dir_all(&dir).unwrap();
    }
}
