//! # sleepy-store
//!
//! A persistent, content-addressed result store — the "sleeping" idea
//! applied to the runtime itself: work already done stays asleep. The
//! fleet runtime keys every trial by a content key (algorithm ×
//! workload × execution × seed); this crate persists the keyed results
//! so re-running an overlapping plan only executes trials never seen
//! before.
//!
//! ## Design
//!
//! * **Append-only JSONL segments.** Each write batch becomes one
//!   immutable segment file (`seg-NNNNNNNN.jsonl`), one JSON object per
//!   line carrying `key`, `stamp` (unix seconds, for TTL), `payload`
//!   (an arbitrary JSON value), and `sum` (an FNV-1a-64 checksum of the
//!   rest of the line). Segments are written to a temp file and
//!   published with an atomic rename, so a crash can never leave a
//!   half-written segment under its final name.
//! * **Manifest.** `manifest.json` lists the live segments in order. It
//!   is itself replaced atomically. The manifest is an accelerator, not
//!   the source of truth: segments are self-validating, so a missing or
//!   corrupt manifest is rebuilt from the segment files on disk, and a
//!   segment published after a crash that lost the manifest update is
//!   *adopted* on the next open.
//! * **Corruption quarantine.** A segment with any unparsable or
//!   checksum-mismatching line is renamed to `*.quarantined` on open
//!   and none of its entries are used — corrupted data is never
//!   silently served; the affected trials simply re-execute.
//! * **First write wins.** Duplicate keys across segments resolve to
//!   the earliest entry, so replays and merges are idempotent.
//! * **TTL/GC compaction.** [`Store::gc`] drops entries stamped before
//!   a cutoff and rewrites the survivors as a single compacted segment.
//! * **Merge.** [`Store::merge_from`] unions another store into this
//!   one — the coordinator step of multi-process sharding, where every
//!   worker process fills its own store and the results are combined.
//!
//! The payload is an opaque [`serde::Value`]; this crate knows nothing
//! about trials or MIS algorithms. `sleepy-fleet` layers the trial
//! encoding and cache lookups on top (static records under `s/` keys,
//! dynamic per-phase records under `d/` — see `docs/store_format.md`).
//!
//! ## Example
//!
//! ```
//! use sleepy_store::Store;
//!
//! let dir = std::env::temp_dir().join(format!("sleepy-store-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = Store::open(&dir)?;
//! store.append(vec![("job/t1".into(), serde_json::json!({"awake": 2.5}))])?;
//! assert!(store.contains("job/t1"));
//! drop(store);
//!
//! // Reopen from disk: entries persist; duplicate appends are no-ops
//! // (first write wins).
//! let mut store = Store::open(&dir)?;
//! assert_eq!(store.append(vec![("job/t1".into(), serde_json::json!(null))])?, 0);
//! let awake = store.get("job/t1").and_then(|v| v.get("awake")).and_then(|v| v.as_f64());
//! assert_eq!(awake, Some(2.5));
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), sleepy_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chaos;
mod error;
mod segment;
mod store;

pub use chaos::{StoreFault, StoreFaultInjector};
pub use error::StoreError;
pub use segment::{decode_line, encode_line, fnv1a64, Entry};
pub use store::{GcStats, Store, StoreStats};
