//! The per-node protocol interface.

use crate::message::{Incoming, MessageSize, Outbox};
use crate::Round;
use sleepy_graph::NodeId;

/// What a node does at the end of an awake round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Stay awake; participate in the next round.
    Continue,
    /// Go to sleep and wake at the given **absolute** round (exclusive of
    /// the current one — it must be strictly in the future). While asleep
    /// the node neither sends nor receives; messages addressed to it are
    /// dropped, exactly as in the paper's sleeping model.
    SleepUntil(Round),
    /// Finish the algorithm locally. [`Protocol::output`] must return
    /// `Some` at this point.
    Terminate,
}

/// Read-only per-round context handed to the protocol callbacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCtx {
    /// This node's id (ids are `0..n`, known to the node as in the model).
    pub id: NodeId,
    /// Number of nodes in the network (known to all nodes, as the paper
    /// assumes).
    pub n: usize,
    /// This node's degree in the communication graph.
    pub degree: usize,
    /// The current round (nodes know the global round whenever awake).
    pub round: Round,
}

/// A synchronous sleeping-model protocol, instantiated once per node.
///
/// Each round a node is awake, the engine calls [`send`](Protocol::send)
/// (emit messages for this round) and then [`receive`](Protocol::receive)
/// (process the messages that arrived this round and choose an [`Action`]).
/// Both callbacks see the same `ctx.round`.
///
/// Nodes all start awake at round 0. Randomness should be owned by the
/// protocol value (seeded at construction) so runs are reproducible.
pub trait Protocol {
    /// Message type exchanged on edges.
    type Msg: Clone + MessageSize;
    /// The node's final output (e.g. `bool` for MIS membership).
    type Output: Clone + std::fmt::Debug;

    /// Send phase: queue this round's outgoing messages into `out`.
    fn send(&mut self, ctx: &NodeCtx, out: &mut Outbox<Self::Msg>);

    /// Receive phase: process this round's inbox and decide what to do next.
    ///
    /// The inbox contains only messages sent *this round* by awake
    /// neighbors; there is no cross-round buffering (synchronous model).
    fn receive(&mut self, ctx: &NodeCtx, inbox: &[Incoming<Self::Msg>]) -> Action;

    /// The node's output, once determined. The engine records the first
    /// round at which this becomes `Some` as the node's *decide round*;
    /// it must be `Some` when the node terminates.
    fn output(&self) -> Option<Self::Output>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn action_equality() {
        assert_eq!(Action::Continue, Action::Continue);
        assert_ne!(Action::Continue, Action::SleepUntil(3));
        assert_ne!(Action::SleepUntil(3), Action::SleepUntil(4));
    }

    #[test]
    fn ctx_is_copy() {
        let ctx = NodeCtx { id: 1, n: 10, degree: 3, round: 7 };
        let ctx2 = ctx;
        assert_eq!(ctx, ctx2);
    }
}
