//! Streaming observers for engine execution: the [`TraceSink`] trait and
//! its built-in implementations.
//!
//! The engine narrates every run through a sink —
//! [`run_protocol_with_sink`](crate::run_protocol_with_sink) — instead of
//! materializing a `Vec<TraceEvent>` unconditionally. The classic
//! [`Trace`] is now just one sink ([`TraceBuffer`]); aggregate-only
//! observers like [`RoundSeries`] keep O(1) state per round, which is what
//! makes round-level recording affordable on runs whose full event log
//! would dwarf the graph.
//!
//! Sinks receive events in the engine's deterministic order: for each
//! active round, one [`TraceSink::round_begin`] carrying the awake count,
//! then `Wake` events (ascending node id), then the send phase's
//! `Message`/`MessageLost` events (sender-major, ascending id), then the
//! receive phase's `Decide`/`Sleep`/`Terminate` events (ascending id).

use crate::trace::{Trace, TraceEvent};
use crate::Round;
use serde::Serialize;

/// A streaming observer of one engine run.
///
/// All methods are called single-threaded, in deterministic engine order,
/// so a sink's output is a pure function of the run.
pub trait TraceSink {
    /// Whether the engine should generate message-level events
    /// (`Message`/`MessageLost`) for this sink. Message traffic dominates
    /// event volume, so sinks must opt in. The engine reads this once per
    /// run; it must be constant.
    fn wants_messages(&self) -> bool {
        false
    }

    /// A new active round begins: `round` is the round number, `awake` the
    /// number of nodes awake in it (carried-over plus newly woken).
    fn round_begin(&mut self, round: Round, awake: usize) {
        let _ = (round, awake);
    }

    /// One engine event, in deterministic engine order.
    fn event(&mut self, event: &TraceEvent);
}

/// The no-op sink: recording disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _event: &TraceEvent) {}
}

/// The classic full-trace sink: buffers every event into a [`Trace`].
///
/// This is what [`run_protocol`](crate::run_protocol) uses when
/// [`EngineConfig::trace`](crate::EngineConfig::trace) is set. Message
/// events are kept only when constructed with `messages = true`, so a
/// `TraceBuffer` records the same `Trace` whether it runs alone or teed
/// with a message-hungry sink.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    trace: Trace,
    messages: bool,
}

impl TraceBuffer {
    /// A new buffer; `messages` controls whether message-level events are
    /// retained.
    pub fn new(messages: bool) -> Self {
        TraceBuffer { trace: Trace::default(), messages }
    }

    /// Consumes the buffer, yielding the recorded [`Trace`].
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl TraceSink for TraceBuffer {
    fn wants_messages(&self) -> bool {
        self.messages
    }

    fn event(&mut self, event: &TraceEvent) {
        if !self.messages
            && matches!(event, TraceEvent::Message { .. } | TraceEvent::MessageLost { .. })
        {
            return;
        }
        self.trace.events.push(*event);
    }
}

/// Fans one engine run out to two sinks.
pub struct Tee<'a> {
    a: &'a mut dyn TraceSink,
    b: &'a mut dyn TraceSink,
}

impl<'a> Tee<'a> {
    /// Tees `a` and `b`; both observe every round and event.
    pub fn new(a: &'a mut dyn TraceSink, b: &'a mut dyn TraceSink) -> Self {
        Tee { a, b }
    }
}

impl TraceSink for Tee<'_> {
    fn wants_messages(&self) -> bool {
        self.a.wants_messages() || self.b.wants_messages()
    }

    fn round_begin(&mut self, round: Round, awake: usize) {
        self.a.round_begin(round, awake);
        self.b.round_begin(round, awake);
    }

    fn event(&mut self, event: &TraceEvent) {
        self.a.event(event);
        self.b.event(event);
    }
}

/// Per-round aggregates of one engine run, as computed by [`RoundSeries`].
///
/// Every field is an integer so the row has one canonical rendering —
/// round outputs stay byte-identical across platforms and thread counts.
/// The running node-averaged awake complexity after this round is
/// `cum_awake / n` (left to consumers so no float ever enters the row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct RoundRow {
    /// The round number (active rounds only; skipped idle rounds never get
    /// a row).
    pub round: Round,
    /// Nodes awake this round.
    pub awake: u64,
    /// Nodes that woke from sleep at the start of this round.
    pub wakes: u64,
    /// Nodes that went to sleep at the end of this round.
    pub sleeps: u64,
    /// Nodes that terminated this round.
    pub terminations: u64,
    /// Nodes whose output first became `Some` this round.
    pub decided: u64,
    /// Messages sent this round (delivered + dropped + lost).
    pub sent: u64,
    /// Messages dropped at sleeping addressees this round.
    pub dropped: u64,
    /// Messages lost to injected transit failure this round.
    pub lost: u64,
    /// Total awake rounds accrued by all nodes through this round — the
    /// numerator of the paper's node-averaged awake complexity.
    pub cum_awake: u64,
}

/// An O(1)-memory-per-round sink computing the per-round aggregate
/// timeline: awake counts, lifecycle transitions, message totals, and the
/// running awake-round sum.
#[derive(Debug, Clone, Default)]
pub struct RoundSeries {
    rows: Vec<RoundRow>,
    cum_awake: u64,
}

impl RoundSeries {
    /// An empty series.
    pub fn new() -> Self {
        RoundSeries::default()
    }

    /// The rows recorded so far, one per active round, in round order.
    pub fn rows(&self) -> &[RoundRow] {
        &self.rows
    }

    /// Consumes the series, yielding its rows.
    pub fn into_rows(self) -> Vec<RoundRow> {
        self.rows
    }
}

impl TraceSink for RoundSeries {
    fn wants_messages(&self) -> bool {
        true
    }

    fn round_begin(&mut self, round: Round, awake: usize) {
        self.cum_awake += awake as u64;
        self.rows.push(RoundRow {
            round,
            awake: awake as u64,
            cum_awake: self.cum_awake,
            ..RoundRow::default()
        });
    }

    fn event(&mut self, event: &TraceEvent) {
        let Some(row) = self.rows.last_mut() else {
            return;
        };
        match event {
            TraceEvent::Wake { .. } => row.wakes += 1,
            TraceEvent::Sleep { .. } => row.sleeps += 1,
            TraceEvent::Terminate { .. } => row.terminations += 1,
            TraceEvent::Decide { .. } => row.decided += 1,
            TraceEvent::Message { dropped, .. } => {
                row.sent += 1;
                if *dropped {
                    row.dropped += 1;
                }
            }
            TraceEvent::MessageLost { .. } => {
                row.sent += 1;
                row.lost += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut dyn TraceSink) {
        sink.round_begin(0, 3);
        sink.event(&TraceEvent::Message { round: 0, from: 0, to: 1, dropped: false });
        sink.event(&TraceEvent::Message { round: 0, from: 1, to: 2, dropped: true });
        sink.event(&TraceEvent::MessageLost { round: 0, from: 2, to: 0 });
        sink.event(&TraceEvent::Decide { round: 0, node: 0 });
        sink.event(&TraceEvent::Sleep { round: 0, node: 0, until: 4 });
        sink.event(&TraceEvent::Terminate { round: 0, node: 1 });
        sink.round_begin(4, 2);
        sink.event(&TraceEvent::Wake { round: 4, node: 0 });
        sink.event(&TraceEvent::Terminate { round: 4, node: 0 });
        sink.event(&TraceEvent::Terminate { round: 4, node: 2 });
    }

    #[test]
    fn round_series_aggregates_per_round() {
        let mut series = RoundSeries::new();
        feed(&mut series);
        let rows = series.into_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            RoundRow {
                round: 0,
                awake: 3,
                wakes: 0,
                sleeps: 1,
                terminations: 1,
                decided: 1,
                sent: 3,
                dropped: 1,
                lost: 1,
                cum_awake: 3,
            }
        );
        assert_eq!(
            rows[1],
            RoundRow {
                round: 4,
                awake: 2,
                wakes: 1,
                sleeps: 0,
                terminations: 2,
                decided: 0,
                sent: 0,
                dropped: 0,
                lost: 0,
                cum_awake: 5,
            }
        );
    }

    #[test]
    fn trace_buffer_filters_messages_unless_asked() {
        let mut quiet = TraceBuffer::new(false);
        feed(&mut quiet);
        let mut chatty = TraceBuffer::new(true);
        feed(&mut chatty);
        let quiet = quiet.into_trace();
        let chatty = chatty.into_trace();
        assert_eq!(quiet.events.len(), 6);
        assert_eq!(chatty.events.len(), 9);
        assert!(quiet
            .events
            .iter()
            .all(|e| !matches!(e, TraceEvent::Message { .. } | TraceEvent::MessageLost { .. })));
    }

    #[test]
    fn tee_feeds_both_and_unions_message_appetite() {
        let mut buffer = TraceBuffer::new(false);
        let mut series = RoundSeries::new();
        {
            let mut tee = Tee::new(&mut buffer, &mut series);
            assert!(tee.wants_messages(), "RoundSeries needs messages");
            feed(&mut tee);
        }
        // The buffer still excludes message events despite the tee.
        assert_eq!(buffer.into_trace().events.len(), 6);
        assert_eq!(series.rows().len(), 2);
        assert_eq!(series.rows()[0].sent, 3);
        let mut a = NullSink;
        let mut b = NullSink;
        assert!(!Tee::new(&mut a, &mut b).wants_messages());
    }
}
