//! Schedule validation: cross-checks a run's trace-derived totals against
//! the engine's own accounting.
//!
//! The engine maintains [`NodeMetrics`]/[`RunMetrics`] incrementally while
//! the trace (or a [`RoundSeries`]) records the same run event by event.
//! These are two independent derivations of identical quantities — awake
//! rounds, finish/decide rounds, message counts — so any disagreement
//! means the engine's accounting drifted. The fleet's protocol recorder
//! runs these checks on every recorded trial, turning such drift into a
//! hard failure instead of a silently wrong plot.

use crate::metrics::RunMetrics;
use crate::sink::RoundRow;
use crate::trace::{Trace, TraceEvent};
use crate::Round;
use sleepy_graph::NodeId;

/// Per-node tallies reconstructed from a [`Trace`].
#[derive(Debug, Clone, Copy, Default)]
struct NodeTally {
    /// Round the node's current awake interval started, if awake.
    awake_since: Option<Round>,
    /// Wake round promised by the node's last `Sleep`, while asleep.
    pending_wake: Option<Round>,
    awake_rounds: u64,
    finish_round: Option<Round>,
    decide_round: Option<Round>,
    sent: u64,
    received: u64,
    dropped: u64,
    lost: u64,
}

fn err(node: NodeId, what: impl std::fmt::Display) -> String {
    format!("node {node}: {what}")
}

/// Replays `trace` and cross-checks every derivable quantity against
/// `metrics`: per-node awake rounds (from wake/sleep/terminate intervals),
/// finish and decide rounds, total rounds, and — when the trace carries
/// message events (`messages_traced`) — per-node sent/received/dropped/
/// lost counts.
///
/// # Errors
///
/// A description of the first discrepancy found.
pub fn validate_trace_against_metrics(
    trace: &Trace,
    metrics: &RunMetrics,
    messages_traced: bool,
) -> Result<(), String> {
    let n = metrics.per_node.len();
    // Every node starts awake at round 0.
    let mut tally = vec![NodeTally { awake_since: Some(0), ..NodeTally::default() }; n];
    let get = |v: NodeId| -> Result<usize, String> {
        if (v as usize) < n {
            Ok(v as usize)
        } else {
            Err(format!("trace names node {v} but the run has {n} nodes"))
        }
    };

    for e in &trace.events {
        match *e {
            TraceEvent::Wake { round, node } => {
                let t = &mut tally[get(node)?];
                match t.pending_wake.take() {
                    Some(until) if until == round => {}
                    Some(until) => {
                        return Err(err(node, format!("woke at {round} but slept until {until}")))
                    }
                    None => return Err(err(node, format!("wake at {round} without sleep"))),
                }
                t.awake_since = Some(round);
            }
            TraceEvent::Sleep { round, node, until } => {
                let t = &mut tally[get(node)?];
                let Some(since) = t.awake_since.take() else {
                    return Err(err(node, format!("sleep at {round} while not awake")));
                };
                if until <= round {
                    return Err(err(node, format!("sleep at {round} until past round {until}")));
                }
                t.awake_rounds += round - since + 1;
                t.pending_wake = Some(until);
            }
            TraceEvent::Terminate { round, node } => {
                let t = &mut tally[get(node)?];
                let Some(since) = t.awake_since.take() else {
                    return Err(err(node, format!("terminate at {round} while not awake")));
                };
                if t.finish_round.is_some() {
                    return Err(err(node, format!("terminated twice (again at {round})")));
                }
                t.awake_rounds += round - since + 1;
                t.finish_round = Some(round);
            }
            TraceEvent::Decide { round, node } => {
                let t = &mut tally[get(node)?];
                if t.decide_round.is_some() {
                    return Err(err(node, format!("decided twice (again at {round})")));
                }
                t.decide_round = Some(round);
            }
            TraceEvent::Message { from, to, dropped, .. } => {
                tally[get(from)?].sent += 1;
                let t = &mut tally[get(to)?];
                if dropped {
                    t.dropped += 1;
                } else {
                    t.received += 1;
                }
            }
            TraceEvent::MessageLost { from, to, .. } => {
                tally[get(from)?].sent += 1;
                tally[get(to)?].lost += 1;
            }
        }
    }

    let mut max_finish: Round = 0;
    for (v, (t, m)) in tally.iter().zip(&metrics.per_node).enumerate() {
        let v = v as NodeId;
        if t.awake_since.is_some() || t.pending_wake.is_some() {
            return Err(err(v, "never terminated in the trace"));
        }
        if t.awake_rounds != m.awake_rounds {
            return Err(err(
                v,
                format!("trace shows {} awake rounds, metrics {}", t.awake_rounds, m.awake_rounds),
            ));
        }
        if t.finish_round != m.finish_round {
            return Err(err(
                v,
                format!("trace finish {:?} != metrics {:?}", t.finish_round, m.finish_round),
            ));
        }
        if t.decide_round != m.decide_round {
            return Err(err(
                v,
                format!("trace decide {:?} != metrics {:?}", t.decide_round, m.decide_round),
            ));
        }
        max_finish = max_finish.max(t.finish_round.unwrap_or(0));
        if messages_traced {
            let pairs = [
                ("sent", t.sent, m.messages_sent),
                ("received", t.received, m.messages_received),
                ("dropped", t.dropped, m.messages_dropped),
                ("lost", t.lost, m.messages_lost),
            ];
            for (what, traced, counted) in pairs {
                if traced != counted {
                    return Err(err(
                        v,
                        format!("trace shows {traced} messages {what}, metrics {counted}"),
                    ));
                }
            }
        }
    }
    let total_rounds = if n == 0 { 0 } else { max_finish + 1 };
    if total_rounds != metrics.total_rounds {
        return Err(format!(
            "trace-derived total_rounds {total_rounds} != metrics {}",
            metrics.total_rounds
        ));
    }
    Ok(())
}

/// Cross-checks a [`RoundSeries`](crate::RoundSeries) timeline against
/// `metrics`: one row per active round, strictly increasing rounds ending
/// at `total_rounds - 1`, awake/cumulative sums equal to the summed
/// per-node awake rounds, message totals equal to the per-node counter
/// sums, and exactly `n` terminations and decisions.
///
/// # Errors
///
/// A description of the first discrepancy found.
pub fn validate_series_against_metrics(
    rows: &[RoundRow],
    metrics: &RunMetrics,
) -> Result<(), String> {
    let n = metrics.per_node.len() as u64;
    if rows.len() as u64 != metrics.active_rounds {
        return Err(format!(
            "{} timeline rows but {} active rounds",
            rows.len(),
            metrics.active_rounds
        ));
    }
    let mut cum = 0u64;
    for (i, row) in rows.iter().enumerate() {
        if i > 0 && rows[i - 1].round >= row.round {
            return Err(format!(
                "rounds not strictly increasing at row {i} ({} then {})",
                rows[i - 1].round,
                row.round
            ));
        }
        cum += row.awake;
        if row.cum_awake != cum {
            return Err(format!("row {i}: cum_awake {} != running sum {cum}", row.cum_awake));
        }
        if row.dropped + row.lost > row.sent {
            return Err(format!("row {i}: dropped+lost exceed sent"));
        }
    }
    if n > 0 {
        let last = rows.last().expect("active_rounds > 0 whenever n > 0");
        if last.round + 1 != metrics.total_rounds {
            return Err(format!(
                "last row is round {} but total_rounds is {}",
                last.round, metrics.total_rounds
            ));
        }
    }
    let awake_sum: u64 = metrics.per_node.iter().map(|m| m.awake_rounds).sum();
    if cum != awake_sum {
        return Err(format!("timeline awake sum {cum} != per-node awake sum {awake_sum}"));
    }
    let checks = [
        ("sent", rows.iter().map(|r| r.sent).sum::<u64>(), {
            metrics.per_node.iter().map(|m| m.messages_sent).sum::<u64>()
        }),
        ("dropped", rows.iter().map(|r| r.dropped).sum::<u64>(), {
            metrics.per_node.iter().map(|m| m.messages_dropped).sum::<u64>()
        }),
        ("lost", rows.iter().map(|r| r.lost).sum::<u64>(), {
            metrics.per_node.iter().map(|m| m.messages_lost).sum::<u64>()
        }),
        ("terminations", rows.iter().map(|r| r.terminations).sum::<u64>(), n),
        ("decisions", rows.iter().map(|r| r.decided).sum::<u64>(), n),
    ];
    for (what, series, counted) in checks {
        if series != counted {
            return Err(format!("timeline shows {series} {what}, metrics say {counted}"));
        }
    }
    let wakes: u64 = rows.iter().map(|r| r.wakes).sum();
    let sleeps: u64 = rows.iter().map(|r| r.sleeps).sum();
    if wakes != sleeps {
        return Err(format!(
            "{wakes} wakes vs {sleeps} sleeps — every completed run must pair them"
        ));
    }
    Ok(())
}

/// Cross-checks a [`RoundSeries`](crate::RoundSeries) timeline against a
/// full message-level [`Trace`] of the same run: for every row, the event
/// counts in that round (via [`Trace::round_range`]) must reproduce the
/// row's wake/sleep/termination/decision and message tallies, and the
/// trace must contain no events in rounds without a row.
///
/// # Errors
///
/// A description of the first discrepancy found.
pub fn validate_series_against_trace(rows: &[RoundRow], trace: &Trace) -> Result<(), String> {
    let mut covered = 0usize;
    for (i, row) in rows.iter().enumerate() {
        let mut derived = RoundRow { round: row.round, awake: row.awake, ..RoundRow::default() };
        let events = trace.round_range(row.round);
        covered += events.len();
        for e in events {
            match e {
                TraceEvent::Wake { .. } => derived.wakes += 1,
                TraceEvent::Sleep { .. } => derived.sleeps += 1,
                TraceEvent::Terminate { .. } => derived.terminations += 1,
                TraceEvent::Decide { .. } => derived.decided += 1,
                TraceEvent::Message { dropped, .. } => {
                    derived.sent += 1;
                    if *dropped {
                        derived.dropped += 1;
                    }
                }
                TraceEvent::MessageLost { .. } => {
                    derived.sent += 1;
                    derived.lost += 1;
                }
            }
        }
        derived.cum_awake = row.cum_awake;
        if derived != *row {
            return Err(format!(
                "row {i} (round {}): trace-derived {derived:?} != recorded {row:?}",
                row.round
            ));
        }
    }
    if covered != trace.events.len() {
        return Err(format!(
            "trace has {} events but timeline rounds cover only {covered}",
            trace.events.len()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::NodeMetrics;

    fn node(awake: u64, finish: Round) -> NodeMetrics {
        NodeMetrics {
            awake_rounds: awake,
            finish_round: Some(finish),
            decide_round: Some(finish),
            ..NodeMetrics::default()
        }
    }

    /// One node: awake rounds 0..=1, asleep 2..=4, awake 5, terminating
    /// and deciding at 5.
    fn consistent() -> (Trace, RunMetrics) {
        let trace = Trace {
            events: vec![
                TraceEvent::Sleep { round: 1, node: 0, until: 5 },
                TraceEvent::Wake { round: 5, node: 0 },
                TraceEvent::Decide { round: 5, node: 0 },
                TraceEvent::Terminate { round: 5, node: 0 },
            ],
        };
        let metrics = RunMetrics { per_node: vec![node(3, 5)], total_rounds: 6, active_rounds: 3 };
        (trace, metrics)
    }

    #[test]
    fn consistent_trace_passes() {
        let (trace, metrics) = consistent();
        validate_trace_against_metrics(&trace, &metrics, false).unwrap();
    }

    #[test]
    fn awake_round_drift_is_caught() {
        let (trace, mut metrics) = consistent();
        metrics.per_node[0].awake_rounds = 4;
        let e = validate_trace_against_metrics(&trace, &metrics, false).unwrap_err();
        assert!(e.contains("awake rounds"), "{e}");
    }

    #[test]
    fn wake_must_match_promised_round() {
        let (mut trace, metrics) = consistent();
        trace.events[1] = TraceEvent::Wake { round: 4, node: 0 };
        let e = validate_trace_against_metrics(&trace, &metrics, false).unwrap_err();
        assert!(e.contains("slept until"), "{e}");
    }

    #[test]
    fn message_counts_checked_only_when_traced() {
        let (mut trace, mut metrics) = consistent();
        metrics.per_node.push(node(3, 5));
        metrics.per_node[1].messages_sent = 1;
        metrics.per_node[0].messages_lost = 1;
        trace.events.insert(0, TraceEvent::Sleep { round: 1, node: 1, until: 5 });
        trace.events.insert(2, TraceEvent::Wake { round: 5, node: 1 });
        trace.events.push(TraceEvent::Decide { round: 5, node: 1 });
        trace.events.push(TraceEvent::Terminate { round: 5, node: 1 });
        // Without message events: passes when not messages_traced, fails
        // when the caller claims messages were traced.
        validate_trace_against_metrics(&trace, &metrics, false).unwrap();
        let e = validate_trace_against_metrics(&trace, &metrics, true).unwrap_err();
        assert!(e.contains("messages lost"), "{e}");
        // Adding the matching loss event reconciles it.
        trace.events.insert(4, TraceEvent::MessageLost { round: 5, from: 1, to: 0 });
        validate_trace_against_metrics(&trace, &metrics, true).unwrap();
    }

    #[test]
    fn series_totals_must_match_metrics() {
        let rows = vec![
            RoundRow { round: 0, awake: 1, sleeps: 1, cum_awake: 1, ..RoundRow::default() },
            RoundRow { round: 1, awake: 1, cum_awake: 2, ..RoundRow::default() },
            RoundRow {
                round: 5,
                awake: 1,
                wakes: 1,
                terminations: 1,
                decided: 1,
                cum_awake: 3,
                ..RoundRow::default()
            },
        ];
        let metrics = RunMetrics { per_node: vec![node(3, 5)], total_rounds: 6, active_rounds: 3 };
        validate_series_against_metrics(&rows, &metrics).unwrap();

        let mut short = metrics.clone();
        short.active_rounds = 2;
        assert!(validate_series_against_metrics(&rows, &short)
            .unwrap_err()
            .contains("active rounds"));

        let mut drifted = metrics.clone();
        drifted.per_node[0].awake_rounds = 9;
        assert!(validate_series_against_metrics(&rows, &drifted)
            .unwrap_err()
            .contains("awake sum"));

        let mut bad_rows = rows.clone();
        bad_rows[2].cum_awake = 7;
        assert!(validate_series_against_metrics(&bad_rows, &metrics)
            .unwrap_err()
            .contains("cum_awake"));
    }

    #[test]
    fn series_cross_checks_against_trace() {
        let (trace, _) = consistent();
        let rows = vec![
            RoundRow { round: 0, awake: 1, cum_awake: 1, ..RoundRow::default() },
            RoundRow { round: 1, awake: 1, sleeps: 1, cum_awake: 2, ..RoundRow::default() },
            RoundRow {
                round: 5,
                awake: 1,
                wakes: 1,
                terminations: 1,
                decided: 1,
                cum_awake: 3,
                ..RoundRow::default()
            },
        ];
        validate_series_against_trace(&rows, &trace).unwrap();
        let mut bad = rows.clone();
        bad[1].sleeps = 0;
        assert!(validate_series_against_trace(&bad, &trace).is_err());
        // A trace event in a round the series missed is also drift
        // (inserted in round order — the `round_range` precondition).
        let mut extra = trace.clone();
        extra.events.insert(1, TraceEvent::Decide { round: 3, node: 0 });
        assert!(validate_series_against_trace(&rows, &extra).unwrap_err().contains("cover"));
    }

    #[test]
    fn empty_run_validates() {
        let metrics = RunMetrics { per_node: vec![], total_rounds: 0, active_rounds: 0 };
        validate_trace_against_metrics(&Trace::default(), &metrics, true).unwrap();
        validate_series_against_metrics(&[], &metrics).unwrap();
        validate_series_against_trace(&[], &Trace::default()).unwrap();
    }
}
