//! # sleepy-net
//!
//! A synchronous CONGEST simulator for the **sleeping model** of
//! Chatterjee, Gmyr, Pandurangan (PODC 2020).
//!
//! In the sleeping model a node is, at every round, either *awake* (the
//! default CONGEST behavior: it may send one message per incident edge,
//! receives messages, and computes) or *asleep* (it sends nothing, receives
//! nothing — messages addressed to it are **dropped** — computes nothing,
//! and incurs no cost). A node chooses when to sleep and the absolute round
//! at which to wake, matching the paper's model where a node "sets an alarm"
//! before sleeping.
//!
//! The engine is **event driven**: rounds in which no node is awake are
//! skipped in O(log n) time, which is what makes Algorithm 1's padded
//! Θ(n³)-round schedule simulatable (only O(n) rounds are expected to have
//! any node awake).
//!
//! ## Complexity measures
//!
//! [`RunMetrics::summary`] computes the four measures of the paper:
//! node-averaged awake complexity, worst-case awake complexity, worst-case
//! round complexity, and node-averaged round complexity, plus message/bit
//! totals and (via [`EnergyModel`]) energy figures.
//!
//! ## Writing a protocol
//!
//! Implement [`Protocol`] per node; each awake round the engine calls
//! [`Protocol::send`] (emit messages through an [`Outbox`]) and then
//! [`Protocol::receive`] (consume the inbox and return an [`Action`]:
//! continue awake, sleep until a given round, or terminate with an output).
//!
//! ```
//! use sleepy_graph::generators;
//! use sleepy_net::{Action, EngineConfig, Incoming, NodeCtx, Outbox, Protocol, run_protocol};
//!
//! /// Every node broadcasts its id once and terminates with the minimum
//! /// id it has heard (including its own).
//! struct MinId { best: u32, sent: bool }
//!
//! impl Protocol for MinId {
//!     type Msg = u32;
//!     type Output = u32;
//!     fn send(&mut self, _ctx: &NodeCtx, out: &mut Outbox<u32>) {
//!         if !self.sent { out.broadcast(self.best); self.sent = true; }
//!     }
//!     fn receive(&mut self, _ctx: &NodeCtx, inbox: &[Incoming<u32>]) -> Action {
//!         for m in inbox { self.best = self.best.min(m.msg); }
//!         Action::Terminate
//!     }
//!     fn output(&self) -> Option<u32> { Some(self.best) }
//! }
//!
//! let g = generators::cycle(5).unwrap();
//! let run = run_protocol(&g, &EngineConfig::default(), |id, _ctx| {
//!     MinId { best: id, sent: false }
//! }).unwrap();
//! assert_eq!(run.outputs[1], Some(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alarm;
mod energy;
mod engine;
mod error;
mod fault;
mod message;
mod metrics;
mod protocol;
mod sink;
mod statemachine;
mod tape;
mod trace;
mod validate;

pub use alarm::{AlarmKind, AlarmQueue, HeapAlarms, TimerWheel, WHEEL_SLOTS};
pub use energy::{EnergyModel, EnergyReport};
pub use engine::{
    run_protocol, run_protocol_taped, run_protocol_with_alarms, run_protocol_with_sink,
    run_protocol_with_sink_legacy, EngineConfig, RunOutcome,
};
pub use error::EngineError;
pub use fault::{CrashWindow, FaultModel, FaultPlan, LinkWindow};
pub use message::{congest_bits_budget, Incoming, MessageSize, Outbox};
pub use metrics::{ComplexitySummary, NodeMetrics, RunMetrics};
pub use protocol::{Action, NodeCtx, Protocol};
pub use sink::{NullSink, RoundRow, RoundSeries, Tee, TraceBuffer, TraceSink};
pub use statemachine::{EngineInput, EngineOutput, OutMsg, SleepyEngine};
pub use tape::{replay_tape, ReplayOutcome, Tape, TapeError, TapeHeader, TAPE_VERSION};
pub use trace::{Trace, TraceEvent};
pub use validate::{
    validate_series_against_metrics, validate_series_against_trace, validate_trace_against_metrics,
};

/// Round number (0-based).
pub type Round = u64;

pub use sleepy_graph::{NodeId, Port};
