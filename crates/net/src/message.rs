//! Message plumbing: size accounting, outboxes and inboxes.

use sleepy_graph::Port;

/// Size of a message in bits, used for CONGEST accounting.
///
/// The CONGEST(log n) model allows O(log n)-bit messages per edge per round;
/// implement this trait on protocol message types so the engine can track
/// total communication volume and (optionally) enforce a per-message budget
/// via [`EngineConfig::congest_bits`](crate::EngineConfig::congest_bits).
pub trait MessageSize {
    /// The number of bits this message occupies on the wire.
    fn bits(&self) -> usize;
}

impl MessageSize for () {
    fn bits(&self) -> usize {
        0
    }
}

impl MessageSize for bool {
    fn bits(&self) -> usize {
        1
    }
}

macro_rules! int_message_size {
    ($($t:ty),*) => {
        $(impl MessageSize for $t {
            fn bits(&self) -> usize {
                <$t>::BITS as usize
            }
        })*
    };
}

int_message_size!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128);

/// The per-message bit budget of the CONGEST(log n) model for an `n`-node
/// network: `c · ⌈log₂ n⌉` bits with the customary constant c = 32 (room
/// for a constant number of node ids plus flags).
pub fn congest_bits_budget(n: usize) -> usize {
    let log = if n <= 2 { 1 } else { (n - 1).ilog2() as usize + 1 };
    32 * log
}

/// A message delivered to a node, tagged with the local port it arrived on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incoming<M> {
    /// The receiver's local port the message arrived through.
    pub port: Port,
    /// The payload.
    pub msg: M,
}

/// Buffer a protocol writes its outgoing messages into during
/// [`Protocol::send`](crate::Protocol::send).
///
/// The engine owns and reuses the buffer; protocols only call
/// [`send`](Outbox::send) / [`broadcast`](Outbox::broadcast).
#[derive(Debug)]
pub struct Outbox<M> {
    degree: usize,
    items: Vec<(Port, M)>,
}

impl<M: Clone> Outbox<M> {
    /// Creates an empty outbox (engine use).
    pub(crate) fn new() -> Self {
        Outbox { degree: 0, items: Vec::new() }
    }

    /// Prepares the outbox for a node of the given degree (engine use).
    pub(crate) fn reset(&mut self, degree: usize) {
        self.degree = degree;
        self.items.clear();
    }

    /// Drains the accumulated messages (engine use).
    pub(crate) fn items(&mut self) -> &mut Vec<(Port, M)> {
        &mut self.items
    }

    /// Queues `msg` on local port `port`.
    ///
    /// Port validity is checked by the engine after the send phase; an
    /// out-of-range port aborts the run with
    /// [`EngineError::InvalidPort`](crate::EngineError::InvalidPort).
    pub fn send(&mut self, port: Port, msg: M) {
        self.items.push((port, msg));
    }

    /// Queues `msg` on every port (a local broadcast to all neighbors).
    pub fn broadcast(&mut self, msg: M) {
        for p in 0..self.degree {
            self.items.push((p, msg.clone()));
        }
    }

    /// The degree of the node currently sending.
    pub fn degree(&self) -> usize {
        self.degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().bits(), 0);
        assert_eq!(true.bits(), 1);
        assert_eq!(7u32.bits(), 32);
        assert_eq!(7u128.bits(), 128);
    }

    #[test]
    fn congest_budget_grows_logarithmically() {
        assert_eq!(congest_bits_budget(2), 32);
        assert_eq!(congest_bits_budget(1024), 32 * 10);
        assert!(congest_bits_budget(1 << 20) > congest_bits_budget(1 << 10));
    }

    #[test]
    fn outbox_broadcast_hits_every_port() {
        let mut ob: Outbox<u32> = Outbox::new();
        ob.reset(3);
        ob.broadcast(9);
        ob.send(1, 5);
        assert_eq!(ob.items(), &mut vec![(0, 9), (1, 9), (2, 9), (1, 5)]);
        ob.reset(1);
        assert!(ob.items().is_empty());
        assert_eq!(ob.degree(), 1);
    }
}
