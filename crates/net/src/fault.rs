//! Deterministic message-fault plans: the engine's loss process,
//! generalized.
//!
//! A [`FaultPlan`] describes *which messages are lost in transit*, fully
//! deterministically: every plan is a pure function of its seed (and the
//! engine's canonical message order), so a faulted run replays
//! byte-for-byte from its tape like any other run. The plan lives in
//! [`EngineConfig`](crate::EngineConfig) and is serialized into tape
//! headers; the state machine consults the built [`FaultModel`] exactly
//! once per message, in emission order, which is what pins the decision
//! sequence.
//!
//! Four fault processes are modeled:
//!
//! * [`FaultPlan::Iid`] — independent per-message loss, the original
//!   `loss_probability` process, byte-identical to it for the same
//!   probability and seed;
//! * [`FaultPlan::Burst`] — a two-state Gilbert–Elliott channel: a
//!   hidden good/bad state flips with `p_enter`/`p_exit` per message and
//!   each state has its own loss probability, producing correlated loss
//!   bursts;
//! * [`FaultPlan::Partition`] — per-edge link cuts over half-open round
//!   windows: while a window is active, every message on that link (both
//!   directions) is lost;
//! * [`FaultPlan::Crash`] — node crash/recover schedules as omission
//!   faults: while a node is crashed, every message to or from it is
//!   lost. The node's local computation state is untouched (the sleeping
//!   model keeps scheduling it), which keeps the input stream — and thus
//!   the tape format — identical in shape to a fault-free run.
//!
//! Lost messages are counted in
//! [`NodeMetrics::messages_lost`](crate::NodeMetrics::messages_lost) and
//! emit [`TraceEvent::MessageLost`](crate::TraceEvent::MessageLost) when
//! message-level tracing is on, exactly like the original loss process.

use crate::Round;
use serde::Value;
use sleepy_graph::NodeId;

/// A round window `[start, end)` during which the undirected link
/// `a`–`b` loses every message in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkWindow {
    /// One endpoint of the link.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First round of the cut (inclusive).
    pub start: Round,
    /// First round after the cut (exclusive).
    pub end: Round,
}

/// A round window `[start, end)` during which `node` is crashed: every
/// message to or from it is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashWindow {
    /// The crashed node.
    pub node: NodeId,
    /// First crashed round (inclusive).
    pub start: Round,
    /// First recovered round (exclusive).
    pub end: Round,
}

/// A seeded, deterministic description of the fault process — see the
/// module docs of `fault.rs` for the taxonomy.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FaultPlan {
    /// No injected faults (the paper's reliable model).
    #[default]
    None,
    /// Independent per-message loss. Byte-identical to the legacy
    /// `loss_probability`/`loss_seed` fields for the same values.
    Iid {
        /// Per-message loss probability in `[0, 1]`.
        probability: f64,
        /// Seed of the loss RNG.
        seed: u64,
    },
    /// Gilbert–Elliott burst loss: a hidden good/bad channel state.
    Burst {
        /// Per-message probability of flipping good → bad.
        p_enter: f64,
        /// Per-message probability of flipping bad → good.
        p_exit: f64,
        /// Loss probability while the channel is good.
        loss_good: f64,
        /// Loss probability while the channel is bad.
        loss_bad: f64,
        /// Seed of the channel RNG.
        seed: u64,
    },
    /// Per-edge link cuts over round windows (no randomness).
    Partition {
        /// The cut windows; a message is lost if any window covers it.
        windows: Vec<LinkWindow>,
    },
    /// Node crash/recover schedules as omission faults (no randomness).
    Crash {
        /// The crash windows; a message is lost if any window covers
        /// either endpoint.
        windows: Vec<CrashWindow>,
    },
}

/// The built, stateful fault process. The engine calls
/// [`message_lost`](FaultModel::message_lost) exactly once per message,
/// in the canonical send order (sender-major, emission order within a
/// sender), so stateful models advance deterministically.
pub trait FaultModel: std::fmt::Debug {
    /// Whether the message `from → to` sent in `round` is lost in
    /// transit.
    fn message_lost(&mut self, round: Round, from: NodeId, to: NodeId) -> bool;
}

#[derive(Debug)]
struct IidLoss {
    probability: f64,
    rng: rand::rngs::SmallRng,
}

impl FaultModel for IidLoss {
    fn message_lost(&mut self, _round: Round, _from: NodeId, _to: NodeId) -> bool {
        use rand::Rng as _;
        self.rng.gen_bool(self.probability)
    }
}

#[derive(Debug)]
struct BurstLoss {
    p_enter: f64,
    p_exit: f64,
    loss_good: f64,
    loss_bad: f64,
    bad: bool,
    rng: rand::rngs::SmallRng,
}

impl FaultModel for BurstLoss {
    fn message_lost(&mut self, _round: Round, _from: NodeId, _to: NodeId) -> bool {
        use rand::Rng as _;
        // Exactly two draws per message — one state transition, one loss
        // decision — regardless of the probabilities, so the decision
        // sequence is a pure function of the seed and the message index.
        let flip = self.rng.gen_bool(if self.bad { self.p_exit } else { self.p_enter });
        if flip {
            self.bad = !self.bad;
        }
        let p = if self.bad { self.loss_bad } else { self.loss_good };
        self.rng.gen_bool(p)
    }
}

#[derive(Debug)]
struct PartitionFaults {
    windows: Vec<LinkWindow>,
}

impl FaultModel for PartitionFaults {
    fn message_lost(&mut self, round: Round, from: NodeId, to: NodeId) -> bool {
        self.windows.iter().any(|w| {
            round >= w.start
                && round < w.end
                && ((w.a == from && w.b == to) || (w.a == to && w.b == from))
        })
    }
}

#[derive(Debug)]
struct CrashFaults {
    windows: Vec<CrashWindow>,
}

impl FaultModel for CrashFaults {
    fn message_lost(&mut self, round: Round, from: NodeId, to: NodeId) -> bool {
        self.windows
            .iter()
            .any(|w| round >= w.start && round < w.end && (w.node == from || w.node == to))
    }
}

impl FaultPlan {
    /// Whether this is [`FaultPlan::None`].
    pub fn is_none(&self) -> bool {
        matches!(self, FaultPlan::None)
    }

    /// Checks that every probability is a finite value in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field. Plans
    /// from untrusted text (tape headers, CLI flags) are validated before
    /// [`build`](FaultPlan::build), whose models would panic on an
    /// out-of-range probability.
    pub fn validate(&self) -> Result<(), String> {
        let check = |name: &str, p: f64| {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("fault {name} must be in [0, 1], got {p}"))
            }
        };
        match self {
            FaultPlan::None | FaultPlan::Partition { .. } | FaultPlan::Crash { .. } => Ok(()),
            FaultPlan::Iid { probability, .. } => check("probability", *probability),
            FaultPlan::Burst { p_enter, p_exit, loss_good, loss_bad, .. } => {
                check("p_enter", *p_enter)?;
                check("p_exit", *p_exit)?;
                check("loss_good", *loss_good)?;
                check("loss_bad", *loss_bad)
            }
        }
    }

    /// Builds the stateful fault model, or `None` for
    /// [`FaultPlan::None`] (no per-message overhead in fault-free runs).
    pub fn build(&self) -> Option<Box<dyn FaultModel>> {
        use rand::SeedableRng as _;
        match self {
            FaultPlan::None => None,
            FaultPlan::Iid { probability, seed } => Some(Box::new(IidLoss {
                probability: *probability,
                rng: rand::rngs::SmallRng::seed_from_u64(*seed),
            })),
            FaultPlan::Burst { p_enter, p_exit, loss_good, loss_bad, seed } => {
                Some(Box::new(BurstLoss {
                    p_enter: *p_enter,
                    p_exit: *p_exit,
                    loss_good: *loss_good,
                    loss_bad: *loss_bad,
                    bad: false,
                    rng: rand::rngs::SmallRng::seed_from_u64(*seed),
                }))
            }
            FaultPlan::Partition { windows } => {
                Some(Box::new(PartitionFaults { windows: windows.clone() }))
            }
            FaultPlan::Crash { windows } => {
                Some(Box::new(CrashFaults { windows: windows.clone() }))
            }
        }
    }

    /// The canonical JSON rendering ([`Value::Null`] for
    /// [`FaultPlan::None`]); floats round-trip their exact bit pattern,
    /// like every number in a tape header.
    pub fn to_value(&self) -> Value {
        let obj = |kind: &str, rest: Vec<(String, Value)>| {
            let mut entries = vec![("kind".to_string(), Value::String(kind.to_string()))];
            entries.extend(rest);
            Value::Object(entries)
        };
        match self {
            FaultPlan::None => Value::Null,
            FaultPlan::Iid { probability, seed } => obj(
                "iid",
                vec![
                    ("probability".to_string(), Value::Float(*probability)),
                    ("seed".to_string(), Value::UInt(*seed)),
                ],
            ),
            FaultPlan::Burst { p_enter, p_exit, loss_good, loss_bad, seed } => obj(
                "burst",
                vec![
                    ("p_enter".to_string(), Value::Float(*p_enter)),
                    ("p_exit".to_string(), Value::Float(*p_exit)),
                    ("loss_good".to_string(), Value::Float(*loss_good)),
                    ("loss_bad".to_string(), Value::Float(*loss_bad)),
                    ("seed".to_string(), Value::UInt(*seed)),
                ],
            ),
            FaultPlan::Partition { windows } => obj(
                "partition",
                vec![(
                    "windows".to_string(),
                    Value::Array(
                        windows
                            .iter()
                            .map(|w| {
                                Value::Array(vec![
                                    Value::UInt(u64::from(w.a)),
                                    Value::UInt(u64::from(w.b)),
                                    Value::UInt(w.start),
                                    Value::UInt(w.end),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
            FaultPlan::Crash { windows } => obj(
                "crash",
                vec![(
                    "windows".to_string(),
                    Value::Array(
                        windows
                            .iter()
                            .map(|w| {
                                Value::Array(vec![
                                    Value::UInt(u64::from(w.node)),
                                    Value::UInt(w.start),
                                    Value::UInt(w.end),
                                ])
                            })
                            .collect(),
                    ),
                )],
            ),
        }
    }

    /// Parses the rendering produced by [`to_value`](FaultPlan::to_value)
    /// and [`validate`](FaultPlan::validate)s the result.
    ///
    /// # Errors
    ///
    /// A human-readable reason on any malformed or out-of-range field.
    pub fn from_value(v: &Value) -> Result<FaultPlan, String> {
        if matches!(v, Value::Null) {
            return Ok(FaultPlan::None);
        }
        let float = |key: &str| {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("fault field `{key}` is not a number"))
        };
        let uint = |key: &str| {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("fault field `{key}` is not an unsigned integer"))
        };
        let node = |x: &Value| {
            x.as_u64()
                .and_then(|u| NodeId::try_from(u).ok())
                .ok_or_else(|| "fault window entry is not a node id".to_string())
        };
        let round = |x: &Value| {
            x.as_u64().ok_or_else(|| "fault window entry is not a round number".to_string())
        };
        let windows = |arity: usize| -> Result<Vec<&Vec<Value>>, String> {
            v.get("windows")
                .and_then(Value::as_array)
                .ok_or_else(|| "fault field `windows` is not an array".to_string())?
                .iter()
                .map(|w| {
                    w.as_array()
                        .filter(|a| a.len() == arity)
                        .ok_or_else(|| format!("fault window is not a {arity}-element array"))
                })
                .collect()
        };
        let plan = match v.get("kind").and_then(Value::as_str) {
            Some("iid") => {
                FaultPlan::Iid { probability: float("probability")?, seed: uint("seed")? }
            }
            Some("burst") => FaultPlan::Burst {
                p_enter: float("p_enter")?,
                p_exit: float("p_exit")?,
                loss_good: float("loss_good")?,
                loss_bad: float("loss_bad")?,
                seed: uint("seed")?,
            },
            Some("partition") => FaultPlan::Partition {
                windows: windows(4)?
                    .into_iter()
                    .map(|w| {
                        Ok(LinkWindow {
                            a: node(&w[0])?,
                            b: node(&w[1])?,
                            start: round(&w[2])?,
                            end: round(&w[3])?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
            Some("crash") => FaultPlan::Crash {
                windows: windows(3)?
                    .into_iter()
                    .map(|w| {
                        Ok(CrashWindow {
                            node: node(&w[0])?,
                            start: round(&w[1])?,
                            end: round(&w[2])?,
                        })
                    })
                    .collect::<Result<_, String>>()?,
            },
            Some(other) => return Err(format!("unknown fault kind `{other}`")),
            None => return Err("fault field `kind` is not a string".to_string()),
        };
        plan.validate()?;
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decisions(model: &mut dyn FaultModel, rounds: Round, msgs_per_round: u32) -> Vec<bool> {
        let mut out = Vec::new();
        for r in 0..rounds {
            for m in 0..msgs_per_round {
                out.push(model.message_lost(r, m % 3, (m + 1) % 3));
            }
        }
        out
    }

    #[test]
    fn iid_matches_the_legacy_loss_sequence() {
        use rand::{Rng as _, SeedableRng as _};
        let plan = FaultPlan::Iid { probability: 0.3, seed: 42 };
        let mut model = plan.build().unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for i in 0..500 {
            assert_eq!(model.message_lost(i, 0, 1), rng.gen_bool(0.3), "draw {i}");
        }
    }

    #[test]
    fn burst_is_deterministic_and_actually_bursty() {
        let plan = FaultPlan::Burst {
            p_enter: 0.05,
            p_exit: 0.3,
            loss_good: 0.01,
            loss_bad: 0.9,
            seed: 7,
        };
        let a = decisions(plan.build().unwrap().as_mut(), 100, 10);
        let b = decisions(plan.build().unwrap().as_mut(), 100, 10);
        assert_eq!(a, b, "same seed, same decisions");
        // A burst channel produces runs of consecutive losses far more
        // often than an i.i.d. channel at the same average rate would.
        let pairs = a.windows(2).filter(|w| w[0] && w[1]).count();
        assert!(pairs > 0, "no loss bursts in 1000 draws");
        // Degenerate parameters pin the state machine: always enter bad,
        // never leave, lose everything.
        let all =
            FaultPlan::Burst { p_enter: 1.0, p_exit: 0.0, loss_good: 0.0, loss_bad: 1.0, seed: 1 };
        assert!(decisions(all.build().unwrap().as_mut(), 10, 4).iter().all(|&l| l));
    }

    #[test]
    fn partition_cuts_both_directions_in_window_only() {
        let plan =
            FaultPlan::Partition { windows: vec![LinkWindow { a: 1, b: 2, start: 5, end: 8 }] };
        let mut m = plan.build().unwrap();
        assert!(!m.message_lost(4, 1, 2), "before the window");
        assert!(m.message_lost(5, 1, 2), "start is inclusive");
        assert!(m.message_lost(7, 2, 1), "both directions");
        assert!(!m.message_lost(8, 1, 2), "end is exclusive");
        assert!(!m.message_lost(6, 0, 1), "other links unaffected");
    }

    #[test]
    fn crash_loses_all_traffic_of_the_node() {
        let plan = FaultPlan::Crash { windows: vec![CrashWindow { node: 3, start: 2, end: 4 }] };
        let mut m = plan.build().unwrap();
        assert!(m.message_lost(2, 3, 0), "outgoing");
        assert!(m.message_lost(3, 0, 3), "incoming");
        assert!(!m.message_lost(4, 3, 0), "recovered");
        assert!(!m.message_lost(2, 0, 1), "others unaffected");
    }

    #[test]
    fn json_round_trips_every_variant_exactly() {
        let plans = [
            FaultPlan::None,
            FaultPlan::Iid { probability: f64::from_bits(0.1f64.to_bits() + 1), seed: 9 },
            FaultPlan::Burst {
                p_enter: 0.05,
                p_exit: 0.33,
                loss_good: 0.0,
                loss_bad: 0.97,
                seed: 0xDEAD,
            },
            FaultPlan::Partition {
                windows: vec![
                    LinkWindow { a: 0, b: 1, start: 0, end: 10 },
                    LinkWindow { a: 4, b: 2, start: 3, end: 3 },
                ],
            },
            FaultPlan::Crash { windows: vec![CrashWindow { node: 7, start: 1, end: 100 }] },
        ];
        for plan in plans {
            let text = serde::value::to_compact_string(&plan.to_value());
            let reparsed = serde_json::from_str(&text).unwrap();
            let back = FaultPlan::from_value(&reparsed).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, plan, "{text}");
            if let (FaultPlan::Iid { probability: a, .. }, FaultPlan::Iid { probability: b, .. }) =
                (&plan, &back)
            {
                assert_eq!(a.to_bits(), b.to_bits(), "float bit pattern must survive");
            }
        }
    }

    #[test]
    fn parse_rejects_bad_plans() {
        for text in [
            r#"{"kind":"iid","probability":1.5,"seed":0}"#,
            r#"{"kind":"burst","p_enter":-0.1,"p_exit":0.1,"loss_good":0.1,"loss_bad":0.1,"seed":0}"#,
            r#"{"kind":"teleport"}"#,
            r#"{"kind":"partition","windows":[[1,2,3]]}"#,
            r#"{"probability":0.1}"#,
        ] {
            let v = serde_json::from_str(text).unwrap();
            assert!(FaultPlan::from_value(&v).is_err(), "{text} should be rejected");
        }
        let valid = serde_json::from_str(r#"{"kind":"crash","windows":[]}"#).unwrap();
        assert_eq!(FaultPlan::from_value(&valid).unwrap(), FaultPlan::Crash { windows: vec![] });
    }

    #[test]
    fn none_builds_no_model() {
        assert!(FaultPlan::None.build().is_none());
        assert!(FaultPlan::None.is_none());
        assert!(!FaultPlan::Iid { probability: 0.0, seed: 0 }.is_none());
    }
}
