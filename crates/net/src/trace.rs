//! Optional execution traces for debugging and recursion-tree extraction.

use crate::Round;
use serde::{Deserialize, Serialize};
use sleepy_graph::NodeId;

/// One engine event. Message-level events are only recorded when
/// [`EngineConfig::trace_messages`](crate::EngineConfig::trace_messages)
/// is set, since they dominate trace volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A node returned to the awake state at this round.
    Wake {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A node went to sleep at the end of this round, to wake at `until`.
    Sleep {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
        /// Absolute wake round.
        until: Round,
    },
    /// A node terminated at this round.
    Terminate {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was routed (only with message tracing enabled).
    Message {
        /// Round of the event.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Addressee.
        to: NodeId,
        /// Whether the addressee was asleep and the message dropped.
        dropped: bool,
    },
}

impl TraceEvent {
    /// The round the event occurred in.
    pub fn round(&self) -> Round {
        match *self {
            TraceEvent::Wake { round, .. }
            | TraceEvent::Sleep { round, .. }
            | TraceEvent::Terminate { round, .. }
            | TraceEvent::Message { round, .. } => round,
        }
    }
}

/// An ordered log of [`TraceEvent`]s from one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in chronological order (ties in engine processing order).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events concerning a particular node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| match **e {
            TraceEvent::Wake { node: n, .. }
            | TraceEvent::Sleep { node: n, .. }
            | TraceEvent::Terminate { node: n, .. } => n == node,
            TraceEvent::Message { from, to, .. } => from == node || to == node,
        })
    }

    /// Events in a particular round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| e.round() == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters() {
        let t = Trace {
            events: vec![
                TraceEvent::Wake { round: 0, node: 1 },
                TraceEvent::Sleep { round: 0, node: 2, until: 5 },
                TraceEvent::Message { round: 1, from: 1, to: 2, dropped: true },
                TraceEvent::Terminate { round: 2, node: 1 },
            ],
        };
        assert_eq!(t.for_node(1).count(), 3);
        assert_eq!(t.for_node(2).count(), 2);
        assert_eq!(t.in_round(0).count(), 2);
        assert_eq!(t.events[2].round(), 1);
    }
}
