//! Optional execution traces for debugging and recursion-tree extraction.

use crate::Round;
use serde::{Deserialize, Serialize};
use sleepy_graph::NodeId;

/// One engine event. Message-level events are only recorded when
/// [`EngineConfig::trace_messages`](crate::EngineConfig::trace_messages)
/// is set, since they dominate trace volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum TraceEvent {
    /// A node returned to the awake state at this round.
    Wake {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A node went to sleep at the end of this round, to wake at `until`.
    Sleep {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
        /// Absolute wake round.
        until: Round,
    },
    /// A node terminated at this round.
    Terminate {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A node's [`Protocol::output`](crate::Protocol::output) first became
    /// `Some` at this round (the node committed its output).
    Decide {
        /// Round of the event.
        round: Round,
        /// The node.
        node: NodeId,
    },
    /// A message was routed (only with message tracing enabled).
    Message {
        /// Round of the event.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Addressee.
        to: NodeId,
        /// Whether the addressee was asleep and the message dropped.
        dropped: bool,
    },
    /// A message was lost to injected transit failure before reaching the
    /// addressee (only with message tracing enabled; see
    /// [`EngineConfig::loss_probability`](crate::EngineConfig)).
    MessageLost {
        /// Round of the event.
        round: Round,
        /// Sender.
        from: NodeId,
        /// Addressee.
        to: NodeId,
    },
}

impl TraceEvent {
    /// The round the event occurred in.
    pub fn round(&self) -> Round {
        match *self {
            TraceEvent::Wake { round, .. }
            | TraceEvent::Sleep { round, .. }
            | TraceEvent::Terminate { round, .. }
            | TraceEvent::Decide { round, .. }
            | TraceEvent::Message { round, .. }
            | TraceEvent::MessageLost { round, .. } => round,
        }
    }
}

/// An ordered log of [`TraceEvent`]s from one run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    /// Events in chronological order (ties in engine processing order).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Events concerning a particular node.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.events.iter().filter(move |e| match **e {
            TraceEvent::Wake { node: n, .. }
            | TraceEvent::Sleep { node: n, .. }
            | TraceEvent::Terminate { node: n, .. }
            | TraceEvent::Decide { node: n, .. } => n == node,
            TraceEvent::Message { from, to, .. } | TraceEvent::MessageLost { from, to, .. } => {
                from == node || to == node
            }
        })
    }

    /// The contiguous slice of events in a particular round, found by
    /// binary search over the round-sorted log (the engine appends events
    /// in non-decreasing round order, so no scan of the whole log is
    /// needed).
    pub fn round_range(&self, round: Round) -> &[TraceEvent] {
        let start = self.events.partition_point(|e| e.round() < round);
        let len = self.events[start..].partition_point(|e| e.round() <= round);
        &self.events[start..start + len]
    }

    /// Events in a particular round.
    pub fn in_round(&self, round: Round) -> impl Iterator<Item = &TraceEvent> + '_ {
        self.round_range(round).iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters() {
        let t = Trace {
            events: vec![
                TraceEvent::Wake { round: 0, node: 1 },
                TraceEvent::Sleep { round: 0, node: 2, until: 5 },
                TraceEvent::Message { round: 1, from: 1, to: 2, dropped: true },
                TraceEvent::Terminate { round: 2, node: 1 },
            ],
        };
        assert_eq!(t.for_node(1).count(), 3);
        assert_eq!(t.for_node(2).count(), 2);
        assert_eq!(t.in_round(0).count(), 2);
        assert_eq!(t.events[2].round(), 1);
    }

    #[test]
    fn round_range_matches_linear_scan() {
        let t = Trace {
            events: vec![
                TraceEvent::Wake { round: 0, node: 1 },
                TraceEvent::Sleep { round: 0, node: 2, until: 5 },
                TraceEvent::Decide { round: 2, node: 1 },
                TraceEvent::Terminate { round: 2, node: 1 },
                TraceEvent::MessageLost { round: 5, from: 2, to: 1 },
                TraceEvent::Terminate { round: 5, node: 2 },
            ],
        };
        for round in 0..=6 {
            let linear: Vec<&TraceEvent> = t.events.iter().filter(|e| e.round() == round).collect();
            let ranged: Vec<&TraceEvent> = t.round_range(round).iter().collect();
            assert_eq!(linear, ranged, "round {round}");
            assert_eq!(t.in_round(round).count(), linear.len());
        }
        assert!(t.round_range(1).is_empty());
        assert!(t.round_range(99).is_empty());
    }

    #[test]
    fn new_event_kinds_carry_node_and_round() {
        let d = TraceEvent::Decide { round: 7, node: 3 };
        let l = TraceEvent::MessageLost { round: 8, from: 3, to: 4 };
        assert_eq!(d.round(), 7);
        assert_eq!(l.round(), 8);
        let t = Trace { events: vec![d, l] };
        assert_eq!(t.for_node(3).count(), 2);
        assert_eq!(t.for_node(4).count(), 1);
        assert_eq!(t.for_node(9).count(), 0);
    }
}
