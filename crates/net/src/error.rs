//! Engine error types.

use crate::Round;
use sleepy_graph::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised by the simulation engine.
///
/// Apart from [`EngineError::MaxRoundsExceeded`], every variant indicates a
/// protocol bug (e.g. sleeping into the past) rather than an environmental
/// condition; they are surfaced as errors instead of panics so harnesses can
/// report which configuration failed.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The round counter passed the configured safety cap.
    MaxRoundsExceeded {
        /// The configured cap.
        max_rounds: Round,
        /// Nodes that had not terminated when the cap was hit.
        unfinished: usize,
    },
    /// Every non-terminated node is asleep with no scheduled wake-up.
    Deadlock {
        /// Round at which the deadlock was detected.
        round: Round,
        /// Number of non-terminated nodes.
        unfinished: usize,
    },
    /// A protocol sent on a port `>= degree`.
    InvalidPort {
        /// The sending node.
        node: NodeId,
        /// The invalid port.
        port: usize,
        /// The node's degree.
        degree: usize,
    },
    /// A protocol asked to sleep until a round that is not in the future.
    SleepIntoPast {
        /// The offending node.
        node: NodeId,
        /// The current round.
        round: Round,
        /// The requested wake round.
        wake_at: Round,
    },
    /// A protocol terminated without producing an output.
    TerminatedWithoutOutput {
        /// The offending node.
        node: NodeId,
        /// The round of the offending `Terminate`.
        round: Round,
    },
    /// A message exceeded the configured CONGEST bit budget.
    MessageTooLarge {
        /// The sending node.
        node: NodeId,
        /// Size of the message in bits.
        bits: usize,
        /// The configured per-message budget.
        budget: usize,
    },
    /// The sans-io state machine was fed an input that does not answer
    /// its pending poll prompt — a driver bug or a corrupted tape, never
    /// a protocol bug (see [`SleepyEngine`](crate::SleepyEngine)).
    UnexpectedInput {
        /// The round being processed when the input arrived.
        round: Round,
        /// What was fed versus what was expected.
        detail: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::MaxRoundsExceeded { max_rounds, unfinished } => {
                write!(f, "round cap {max_rounds} exceeded with {unfinished} unfinished nodes")
            }
            EngineError::Deadlock { round, unfinished } => {
                write!(f, "deadlock at round {round}: {unfinished} nodes asleep forever")
            }
            EngineError::InvalidPort { node, port, degree } => {
                write!(f, "node {node} sent on port {port} but has degree {degree}")
            }
            EngineError::SleepIntoPast { node, round, wake_at } => write!(
                f,
                "node {node} at round {round} asked to wake at non-future round {wake_at}"
            ),
            EngineError::TerminatedWithoutOutput { node, round } => {
                write!(f, "node {node} terminated at round {round} without an output")
            }
            EngineError::MessageTooLarge { node, bits, budget } => write!(
                f,
                "node {node} sent a {bits}-bit message exceeding the {budget}-bit CONGEST budget"
            ),
            EngineError::UnexpectedInput { round, detail } => {
                write!(f, "unexpected engine input at round {round}: {detail}")
            }
        }
    }
}

impl Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            EngineError::MaxRoundsExceeded { max_rounds: 5, unfinished: 2 },
            EngineError::Deadlock { round: 3, unfinished: 1 },
            EngineError::InvalidPort { node: 0, port: 9, degree: 2 },
            EngineError::SleepIntoPast { node: 1, round: 4, wake_at: 4 },
            EngineError::TerminatedWithoutOutput { node: 2, round: 0 },
            EngineError::MessageTooLarge { node: 3, bits: 4096, budget: 64 },
            EngineError::UnexpectedInput { round: 1, detail: "Sends out of phase".to_string() },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<EngineError>();
    }
}
